//! Two-priority task scheduling.
//!
//! The paper: Condor "schedules the increasing replication tasks and
//! erasure decoding tasks immediately, while run\[ning\] the decreasing
//! replication tasks and erasure encoding tasks when the HDFS cluster is
//! idle." The scheduler therefore keeps two FIFO queues:
//!
//! * [`Priority::Immediate`] — dispatched on every tick,
//! * [`Priority::WhenIdle`] — dispatched only when the caller reports the
//!   cluster idle.
//!
//! Execution is cooperative: [`Scheduler::dispatch`] hands out up to
//! `max_concurrent` runnable payloads; the caller performs them against
//! the HDFS simulator and calls [`Scheduler::report`]. Failures retry up
//! to `max_attempts`, after which the job is journalled for rollback and
//! surfaced via [`Scheduler::take_rollbacks`].

use crate::journal::{Journal, JournalEvent};
use simcore::telemetry::{Event as TelemetryEvent, TelemetrySink};
use simcore::{trace, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

pub use crate::journal::JobId;

/// Exponential retry backoff with deterministic, seeded jitter.
///
/// After attempt *k* fails (1-based), the job may not be re-dispatched
/// before `now + min(cap, base·2^(k-1)) · jitter`, where `jitter` is a
/// per-(job, attempt) multiplier drawn uniformly from
/// `[1 − jitter_frac, 1 + jitter_frac]` by hashing `(seed, job, attempt)`
/// — fully reproducible, no shared RNG state. [`Scheduler::new`] keeps
/// the historical zero-delay behaviour; opt in with
/// [`Scheduler::with_retry_policy`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Delay after the first failure.
    pub base: SimDuration,
    /// Upper bound on the (pre-jitter) delay.
    pub cap: SimDuration,
    /// Jitter half-width as a fraction of the delay, in `[0, 1]`.
    pub jitter_frac: f64,
    /// Seed for the per-(job, attempt) jitter hash.
    pub seed: u64,
}

impl RetryPolicy {
    pub fn new(base: SimDuration, cap: SimDuration, jitter_frac: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&jitter_frac),
            "jitter_frac {jitter_frac} outside [0, 1]"
        );
        assert!(cap >= base, "cap below base delay");
        RetryPolicy {
            base,
            cap,
            jitter_frac,
            seed,
        }
    }

    /// The delay imposed after `attempt` (1-based) of `job` failed.
    pub fn delay_after(&self, job: JobId, attempt: u32) -> SimDuration {
        let doublings = attempt.saturating_sub(1).min(62);
        let raw = self.base.as_secs_f64() * (1u64 << doublings) as f64;
        let capped = raw.min(self.cap.as_secs_f64());
        // splitmix64 over (seed, job, attempt) → uniform in [0, 1)
        let mut z = self
            .seed
            .wrapping_add(job.0.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(u64::from(attempt).wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        let mult = 1.0 + self.jitter_frac * (2.0 * unit - 1.0);
        SimDuration::from_secs_f64(capped * mult)
    }
}

/// Scheduling class of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Replica increases, erasure decodes: run now.
    Immediate,
    /// Replica decreases, erasure encodes: run when the cluster is idle.
    WhenIdle,
}

/// Result the executor reports for a dispatched job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    Success,
    Failure(String),
}

/// Live job state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Completed,
    /// Permanently failed; rollback pending or done.
    Failed,
}

#[derive(Debug, Clone)]
struct Job<P> {
    payload: P,
    priority: Priority,
    state: JobState,
    attempts: u32,
    /// Submission instant, kept so the terminal report can observe the
    /// queue-to-outcome latency across every retry.
    submitted: SimTime,
}

/// The Condor-like scheduler.
pub struct Scheduler<P> {
    jobs: BTreeMap<JobId, Job<P>>,
    immediate: VecDeque<JobId>,
    idle: VecDeque<JobId>,
    running: BTreeSet<JobId>,
    journal: Journal<P>,
    rollbacks: Vec<(JobId, P)>,
    next_id: u64,
    max_concurrent: usize,
    max_attempts: u32,
    retry_policy: Option<RetryPolicy>,
    /// Earliest re-dispatch time for jobs in backoff.
    not_before: BTreeMap<JobId, SimTime>,
    telemetry: TelemetrySink,
}

impl<P: Clone> Scheduler<P> {
    pub fn new(max_concurrent: usize, max_attempts: u32) -> Self {
        assert!(max_concurrent >= 1 && max_attempts >= 1);
        Scheduler {
            jobs: BTreeMap::new(),
            immediate: VecDeque::new(),
            idle: VecDeque::new(),
            running: BTreeSet::new(),
            journal: Journal::new(),
            rollbacks: Vec::new(),
            next_id: 0,
            max_concurrent,
            max_attempts,
            retry_policy: None,
            not_before: BTreeMap::new(),
            telemetry: TelemetrySink::disabled(),
        }
    }

    /// Install a telemetry sink; queue/dispatch/retry/outcome events are
    /// then traced alongside queue-depth metrics.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    /// A scheduler whose retries back off per `policy` instead of
    /// requeueing instantly.
    pub fn with_retry_policy(
        max_concurrent: usize,
        max_attempts: u32,
        policy: RetryPolicy,
    ) -> Self {
        let mut s = Self::new(max_concurrent, max_attempts);
        s.retry_policy = Some(policy);
        s
    }

    /// Enqueue a job.
    pub fn submit(&mut self, now: SimTime, payload: P, priority: Priority) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.journal.record(
            now,
            id,
            JournalEvent::Submitted {
                payload: payload.clone(),
                priority,
            },
        );
        self.jobs.insert(
            id,
            Job {
                payload,
                priority,
                state: JobState::Queued,
                attempts: 0,
                submitted: now,
            },
        );
        match priority {
            Priority::Immediate => self.immediate.push_back(id),
            Priority::WhenIdle => self.idle.push_back(id),
        }
        trace!(
            self.telemetry,
            now,
            TelemetryEvent::TaskQueued {
                job: id.0,
                priority: match priority {
                    Priority::Immediate => "immediate".to_string(),
                    Priority::WhenIdle => "when_idle".to_string(),
                },
            }
        );
        self.telemetry.counter_add("condor.submitted", 1);
        id
    }

    /// Pop the first queued job whose backoff (if any) has elapsed,
    /// preserving FIFO order among the ready.
    fn pop_ready(
        queue: &mut VecDeque<JobId>,
        not_before: &BTreeMap<JobId, SimTime>,
        now: SimTime,
    ) -> Option<JobId> {
        let idx = queue
            .iter()
            .position(|id| not_before.get(id).is_none_or(|&at| at <= now))?;
        queue.remove(idx)
    }

    /// Hand out runnable jobs: immediate jobs always, idle-class jobs
    /// only when `cluster_idle`. Respects the concurrency cap; jobs
    /// still in retry backoff are passed over until their time comes.
    pub fn dispatch(&mut self, now: SimTime, cluster_idle: bool) -> Vec<(JobId, P)> {
        simcore::prof_scope!("condor/dispatch");
        let mut out = Vec::new();
        while self.running.len() < self.max_concurrent {
            let id = match Self::pop_ready(&mut self.immediate, &self.not_before, now) {
                Some(id) => id,
                None if cluster_idle => {
                    match Self::pop_ready(&mut self.idle, &self.not_before, now) {
                        Some(id) => id,
                        None => break,
                    }
                }
                None => break,
            };
            self.not_before.remove(&id);
            let job = self.jobs.get_mut(&id).expect("queued job exists");
            debug_assert_eq!(job.state, JobState::Queued);
            job.state = JobState::Running;
            job.attempts += 1;
            self.journal.record(
                now,
                id,
                JournalEvent::Started {
                    attempt: job.attempts,
                },
            );
            self.running.insert(id);
            trace!(
                self.telemetry,
                now,
                TelemetryEvent::TaskDispatched {
                    job: id.0,
                    attempt: job.attempts,
                }
            );
            out.push((id, job.payload.clone()));
        }
        if !out.is_empty() {
            self.telemetry
                .counter_add("condor.dispatched", out.len() as u64);
            self.telemetry
                .gauge_set("condor.running", self.running.len() as f64);
        }
        out
    }

    /// Report the outcome of a dispatched job.
    ///
    /// # Panics
    /// If `id` was not running (double-report or bogus id) — that is
    /// always a driver bug.
    pub fn report(&mut self, now: SimTime, id: JobId, outcome: Outcome) {
        assert!(self.running.remove(&id), "{id} was not running");
        let job = self.jobs.get_mut(&id).expect("running job exists");
        match outcome {
            Outcome::Success => {
                job.state = JobState::Completed;
                self.journal.record(now, id, JournalEvent::Completed);
                self.telemetry
                    .observe("condor.task_secs", now.since(job.submitted).as_secs_f64());
                trace!(
                    self.telemetry,
                    now,
                    TelemetryEvent::TaskFinished {
                        job: id.0,
                        ok: true
                    }
                );
                self.telemetry.counter_add("condor.completed", 1);
            }
            Outcome::Failure(reason) => {
                self.journal.record(
                    now,
                    id,
                    JournalEvent::Failed {
                        reason,
                        attempt: job.attempts,
                    },
                );
                if job.attempts < self.max_attempts {
                    job.state = JobState::Queued;
                    let mut delay = SimDuration::ZERO;
                    if let Some(policy) = &self.retry_policy {
                        delay = policy.delay_after(id, job.attempts);
                        self.not_before.insert(id, now + delay);
                    }
                    match job.priority {
                        Priority::Immediate => self.immediate.push_back(id),
                        Priority::WhenIdle => self.idle.push_back(id),
                    }
                    trace!(
                        self.telemetry,
                        now,
                        TelemetryEvent::TaskRetry {
                            job: id.0,
                            attempt: job.attempts,
                            delay_ns: delay.as_nanos(),
                        }
                    );
                    self.telemetry.counter_add("condor.retries", 1);
                } else {
                    job.state = JobState::Failed;
                    self.journal
                        .record(now, id, JournalEvent::RollbackRequested);
                    self.rollbacks.push((id, job.payload.clone()));
                    self.telemetry
                        .observe("condor.task_secs", now.since(job.submitted).as_secs_f64());
                    trace!(
                        self.telemetry,
                        now,
                        TelemetryEvent::TaskFinished {
                            job: id.0,
                            ok: false,
                        }
                    );
                    self.telemetry.counter_add("condor.failed", 1);
                }
            }
        }
    }

    /// Drain permanently-failed jobs whose effects the caller must undo;
    /// draining journals them as rolled back.
    pub fn take_rollbacks(&mut self, now: SimTime) -> Vec<(JobId, P)> {
        let out = std::mem::take(&mut self.rollbacks);
        for (id, _) in &out {
            self.journal.record(now, *id, JournalEvent::RolledBack);
        }
        out
    }

    pub fn state(&self, id: JobId) -> Option<JobState> {
        self.jobs.get(&id).map(|j| j.state)
    }

    /// When `id` becomes dispatchable again, if it is in retry backoff.
    pub fn next_retry_at(&self, id: JobId) -> Option<SimTime> {
        self.not_before.get(&id).copied()
    }

    pub fn journal(&self) -> &Journal<P> {
        &self.journal
    }

    /// Jobs currently dispatched and awaiting a report. After a
    /// crash-restart these are dead (no executor will ever report them);
    /// the restoring manager fails each one so the normal retry/rollback
    /// machinery takes over.
    pub fn running_jobs(&self) -> Vec<JobId> {
        self.running.iter().copied().collect()
    }

    /// (queued_immediate, queued_idle, running) sizes.
    pub fn queue_depths(&self) -> (usize, usize, usize) {
        (self.immediate.len(), self.idle.len(), self.running.len())
    }

    pub fn pending(&self) -> usize {
        self.immediate.len() + self.idle.len() + self.running.len()
    }

    /// Snapshot all dynamic state, encoding payloads through `enc`.
    /// Construction-time config (`max_concurrent`, `max_attempts`, the
    /// retry policy) and the telemetry sink are rebuilt by the caller,
    /// not serialized.
    pub fn save_state_with(&self, enc: impl Fn(&P) -> checkpoint::Value) -> checkpoint::Value {
        use checkpoint::codec::{seq_of, MapBuilder};
        use checkpoint::Value;
        let priority_str = |p: Priority| match p {
            Priority::Immediate => "immediate",
            Priority::WhenIdle => "when_idle",
        };
        MapBuilder::new()
            .u64("next_id", self.next_id)
            .seq(
                "jobs",
                self.jobs
                    .iter()
                    .map(|(id, j)| {
                        MapBuilder::new()
                            .u64("id", id.0)
                            .put("payload", enc(&j.payload))
                            .str("priority", priority_str(j.priority))
                            .str(
                                "state",
                                match j.state {
                                    JobState::Queued => "queued",
                                    JobState::Running => "running",
                                    JobState::Completed => "completed",
                                    JobState::Failed => "failed",
                                },
                            )
                            .u64("attempts", u64::from(j.attempts))
                            .time("submitted", j.submitted)
                            .build()
                    })
                    .collect(),
            )
            .put(
                "immediate",
                seq_of(self.immediate.iter(), |id| Value::U64(id.0)),
            )
            .put("idle", seq_of(self.idle.iter(), |id| Value::U64(id.0)))
            .put(
                "running",
                seq_of(self.running.iter(), |id| Value::U64(id.0)),
            )
            .put("journal", self.journal.save_state_with(&enc))
            .seq(
                "rollbacks",
                self.rollbacks
                    .iter()
                    .map(|(id, p)| Value::Seq(vec![Value::U64(id.0), enc(p)]))
                    .collect(),
            )
            .seq(
                "not_before",
                self.not_before
                    .iter()
                    .map(|(id, at)| Value::Seq(vec![Value::U64(id.0), Value::U64(at.as_nanos())]))
                    .collect(),
            )
            .build()
    }

    /// Restore dynamic state from
    /// [`Self::save_state_with`], decoding payloads through `dec`.
    pub fn load_state_with(
        &mut self,
        state: &checkpoint::Value,
        dec: impl Fn(&checkpoint::Value) -> Result<P, checkpoint::CheckpointError>,
    ) -> Result<(), checkpoint::CheckpointError> {
        use checkpoint::codec as c;
        use checkpoint::CheckpointError;
        let ids = |key: &str| -> Result<Vec<JobId>, CheckpointError> {
            c::get_seq(state, key)?
                .iter()
                .map(|v| c::as_u64(v, key).map(JobId))
                .collect()
        };
        self.jobs.clear();
        for jv in c::get_seq(state, "jobs")? {
            let id = JobId(c::get_u64(jv, "id")?);
            let job = Job {
                payload: dec(c::get(jv, "payload")?)?,
                priority: match c::get_str(jv, "priority")? {
                    "immediate" => Priority::Immediate,
                    "when_idle" => Priority::WhenIdle,
                    other => {
                        return Err(CheckpointError::Corrupt(format!(
                            "unknown priority `{other}`"
                        )))
                    }
                },
                state: match c::get_str(jv, "state")? {
                    "queued" => JobState::Queued,
                    "running" => JobState::Running,
                    "completed" => JobState::Completed,
                    "failed" => JobState::Failed,
                    other => {
                        return Err(CheckpointError::Corrupt(format!(
                            "unknown job state `{other}`"
                        )))
                    }
                },
                attempts: c::get_u32(jv, "attempts")?,
                submitted: c::get_time(jv, "submitted")?,
            };
            self.jobs.insert(id, job);
        }
        self.immediate = ids("immediate")?.into();
        self.idle = ids("idle")?.into();
        self.running = ids("running")?.into_iter().collect();
        self.journal
            .load_state_with(c::get(state, "journal")?, &dec)?;
        self.rollbacks = c::get_seq(state, "rollbacks")?
            .iter()
            .map(|v| {
                let pair = c::as_seq(v, "rollbacks[]")?;
                if pair.len() != 2 {
                    return Err(CheckpointError::Corrupt(
                        "rollback entry is not [id, payload]".into(),
                    ));
                }
                Ok((JobId(c::as_u64(&pair[0], "rollback id")?), dec(&pair[1])?))
            })
            .collect::<Result<_, _>>()?;
        self.not_before = c::get_seq(state, "not_before")?
            .iter()
            .map(|v| {
                let pair = c::as_seq(v, "not_before[]")?;
                if pair.len() != 2 {
                    return Err(CheckpointError::Corrupt(
                        "backoff entry is not [id, time]".into(),
                    ));
                }
                Ok((
                    JobId(c::as_u64(&pair[0], "backoff id")?),
                    SimTime::from_nanos(c::as_u64(&pair[1], "backoff at")?),
                ))
            })
            .collect::<Result<_, _>>()?;
        self.next_id = c::get_u64(state, "next_id")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::ReplayState;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn immediate_runs_even_when_busy() {
        let mut s: Scheduler<&str> = Scheduler::new(4, 2);
        s.submit(t(0), "inc_replica", Priority::Immediate);
        s.submit(t(0), "encode_cold", Priority::WhenIdle);
        let d = s.dispatch(t(1), false);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1, "inc_replica");
        let (qi, ql, run) = s.queue_depths();
        assert_eq!((qi, ql, run), (0, 1, 1));
    }

    #[test]
    fn idle_work_waits_for_idleness() {
        let mut s: Scheduler<&str> = Scheduler::new(4, 2);
        s.submit(t(0), "decrease", Priority::WhenIdle);
        assert!(s.dispatch(t(1), false).is_empty());
        let d = s.dispatch(t(2), true);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn immediate_preempts_idle_in_dispatch_order() {
        let mut s: Scheduler<&str> = Scheduler::new(1, 2);
        s.submit(t(0), "idle1", Priority::WhenIdle);
        s.submit(t(0), "imm1", Priority::Immediate);
        let d = s.dispatch(t(1), true);
        assert_eq!(d.len(), 1, "capacity 1");
        assert_eq!(d[0].1, "imm1", "immediate first even if submitted later");
    }

    #[test]
    fn concurrency_cap_respected() {
        let mut s: Scheduler<u32> = Scheduler::new(2, 1);
        for i in 0..5 {
            s.submit(t(0), i, Priority::Immediate);
        }
        let d1 = s.dispatch(t(1), false);
        assert_eq!(d1.len(), 2);
        assert!(s.dispatch(t(1), false).is_empty(), "cap reached");
        s.report(t(2), d1[0].0, Outcome::Success);
        let d2 = s.dispatch(t(2), false);
        assert_eq!(d2.len(), 1, "slot freed");
    }

    #[test]
    fn retry_then_success() {
        let mut s: Scheduler<&str> = Scheduler::new(1, 3);
        let id = s.submit(t(0), "flaky", Priority::Immediate);
        let d = s.dispatch(t(1), false);
        s.report(t(2), d[0].0, Outcome::Failure("net".into()));
        assert_eq!(s.state(id), Some(JobState::Queued), "requeued");
        let d = s.dispatch(t(3), false);
        s.report(t(4), d[0].0, Outcome::Success);
        assert_eq!(s.state(id), Some(JobState::Completed));
        assert!(s.take_rollbacks(t(5)).is_empty());
    }

    #[test]
    fn permanent_failure_triggers_rollback() {
        let mut s: Scheduler<&str> = Scheduler::new(1, 2);
        let id = s.submit(t(0), "doomed", Priority::Immediate);
        for attempt in 0..2 {
            let d = s.dispatch(t(attempt), false);
            assert_eq!(d.len(), 1, "attempt {attempt}");
            s.report(t(attempt + 1), d[0].0, Outcome::Failure("disk".into()));
        }
        assert_eq!(s.state(id), Some(JobState::Failed));
        let rb = s.take_rollbacks(t(10));
        assert_eq!(rb, vec![(id, "doomed")]);
        assert!(s.take_rollbacks(t(11)).is_empty(), "rollbacks drain once");
        assert_eq!(s.journal().replay()[&id], ReplayState::RolledBack);
    }

    #[test]
    #[should_panic(expected = "was not running")]
    fn double_report_panics() {
        let mut s: Scheduler<&str> = Scheduler::new(1, 1);
        s.submit(t(0), "x", Priority::Immediate);
        let d = s.dispatch(t(0), false);
        s.report(t(1), d[0].0, Outcome::Success);
        s.report(t(2), d[0].0, Outcome::Success);
    }

    #[test]
    fn journal_replay_matches_live_state() {
        let mut s: Scheduler<u32> = Scheduler::new(3, 2);
        let mut ids = Vec::new();
        for i in 0..6 {
            let pri = if i % 2 == 0 {
                Priority::Immediate
            } else {
                Priority::WhenIdle
            };
            ids.push(s.submit(t(0), i, pri));
        }
        let d = s.dispatch(t(1), true);
        for (n, (id, _)) in d.iter().enumerate() {
            let outcome = if n == 0 {
                Outcome::Failure("x".into())
            } else {
                Outcome::Success
            };
            s.report(t(2), *id, outcome);
        }
        let replayed = s.journal().replay();
        for id in &ids {
            let live = s.state(*id).unwrap();
            let rep = replayed.get(&crate::journal::JobId(id.0)).copied();
            let expected = match live {
                JobState::Queued => ReplayState::Queued,
                JobState::Running => ReplayState::Running,
                JobState::Completed => ReplayState::Completed,
                JobState::Failed => ReplayState::FailedAwaitingRollback,
            };
            assert_eq!(rep, Some(expected), "{id}");
        }
    }

    mod properties {
        use super::*;
        use crate::journal::ReplayState;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Submit { idle_class: bool },
            Dispatch { idle: bool },
            ReportNext { ok: bool },
            TakeRollbacks,
        }

        fn op() -> impl Strategy<Value = Op> {
            prop_oneof![
                any::<bool>().prop_map(|idle_class| Op::Submit { idle_class }),
                any::<bool>().prop_map(|idle| Op::Dispatch { idle }),
                any::<bool>().prop_map(|ok| Op::ReportNext { ok }),
                Just(Op::TakeRollbacks),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn journal_replay_always_matches_live_state(
                ops in prop::collection::vec(op(), 1..60),
                cap in 1usize..4,
                attempts in 1u32..4,
            ) {
                let mut s: Scheduler<u32> = Scheduler::new(cap, attempts);
                let mut running: Vec<JobId> = Vec::new();
                let mut clock = 0u64;
                let mut submitted: Vec<JobId> = Vec::new();
                for o in ops {
                    clock += 1;
                    let now = t(clock);
                    match o {
                        Op::Submit { idle_class } => {
                            let pri = if idle_class {
                                Priority::WhenIdle
                            } else {
                                Priority::Immediate
                            };
                            submitted.push(s.submit(now, clock as u32, pri));
                        }
                        Op::Dispatch { idle } => {
                            for (id, _) in s.dispatch(now, idle) {
                                running.push(id);
                            }
                        }
                        Op::ReportNext { ok } => {
                            if let Some(id) = running.pop() {
                                let outcome = if ok {
                                    Outcome::Success
                                } else {
                                    Outcome::Failure("x".into())
                                };
                                s.report(now, id, outcome);
                            }
                        }
                        Op::TakeRollbacks => {
                            s.take_rollbacks(now);
                        }
                    }
                }
                // invariant: replaying the journal reconstructs exactly
                // the live state of every job ever submitted
                let replayed = s.journal().replay();
                for id in submitted {
                    let live = s.state(id).expect("submitted job tracked");
                    let rep = replayed
                        .get(&crate::journal::JobId(id.0))
                        .copied()
                        .expect("journalled");
                    let matches = match live {
                        JobState::Queued => rep == ReplayState::Queued,
                        JobState::Running => rep == ReplayState::Running,
                        JobState::Completed => rep == ReplayState::Completed,
                        JobState::Failed => {
                            rep == ReplayState::FailedAwaitingRollback
                                || rep == ReplayState::RolledBack
                        }
                    };
                    prop_assert!(matches, "{id}: live {live:?} vs replay {rep:?}");
                }
                // invariant: queue depths never exceed what was submitted
                let (qi, ql, run) = s.queue_depths();
                prop_assert!(run <= cap);
                prop_assert!(qi + ql + run <= s.journal().replay().len());
            }
        }
    }

    fn backoff_policy() -> RetryPolicy {
        RetryPolicy::new(
            SimDuration::from_secs(10),
            SimDuration::from_secs(60),
            0.2,
            99,
        )
    }

    #[test]
    fn backoff_delays_retry_until_due() {
        let mut s: Scheduler<&str> = Scheduler::with_retry_policy(1, 5, backoff_policy());
        let id = s.submit(t(0), "flaky", Priority::Immediate);
        let d = s.dispatch(t(0), false);
        s.report(t(1), d[0].0, Outcome::Failure("net".into()));
        let due = s.next_retry_at(id).expect("in backoff");
        // base 10s ± 20 % jitter, measured from the failure report
        assert!(due >= t(1) + SimDuration::from_secs(8));
        assert!(due <= t(1) + SimDuration::from_secs(13));
        assert!(s.dispatch(t(2), false).is_empty(), "still backing off");
        let d = s.dispatch(due, false);
        assert_eq!(d.len(), 1, "due at {due}");
        assert!(s.next_retry_at(id).is_none(), "cleared on dispatch");
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = backoff_policy();
        let id = JobId(3);
        let mut prev = SimDuration::ZERO;
        for attempt in 1..=3 {
            let d = p.delay_after(id, attempt);
            assert!(d > prev, "attempt {attempt} should back off further");
            prev = d;
        }
        // attempt 10 would be 10·2⁹ = 5120 s raw; the cap (60 s ± 20 %)
        // bounds it
        let capped = p.delay_after(id, 10);
        assert!(capped <= SimDuration::from_secs(72), "{capped} exceeds cap");
        assert!(capped >= SimDuration::from_secs(48));
    }

    #[test]
    fn backoff_jitter_is_deterministic_per_seed() {
        let a = backoff_policy();
        let b = backoff_policy();
        let mut c = backoff_policy();
        c.seed = 100;
        let mut saw_difference = false;
        for attempt in 1..=4 {
            for job in 0..8 {
                let id = JobId(job);
                assert_eq!(a.delay_after(id, attempt), b.delay_after(id, attempt));
                if a.delay_after(id, attempt) != c.delay_after(id, attempt) {
                    saw_difference = true;
                }
            }
        }
        assert!(saw_difference, "different seeds must jitter differently");
    }

    #[test]
    fn backoff_does_not_block_other_ready_jobs() {
        let mut s: Scheduler<&str> = Scheduler::with_retry_policy(1, 5, backoff_policy());
        s.submit(t(0), "flaky", Priority::Immediate);
        let d = s.dispatch(t(0), false);
        s.report(t(1), d[0].0, Outcome::Failure("net".into()));
        // a fresh job behind the backing-off head of the queue still runs
        s.submit(t(1), "fresh", Priority::Immediate);
        let d = s.dispatch(t(2), false);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1, "fresh", "ready job overtakes one in backoff");
    }

    #[test]
    fn backoff_exhausts_into_rollback() {
        let mut s: Scheduler<&str> = Scheduler::with_retry_policy(1, 2, backoff_policy());
        let id = s.submit(t(0), "doomed", Priority::Immediate);
        let d = s.dispatch(t(0), false);
        s.report(t(1), d[0].0, Outcome::Failure("x".into()));
        let due = s.next_retry_at(id).unwrap();
        let d = s.dispatch(due, false);
        s.report(
            due + SimDuration::from_secs(1),
            d[0].0,
            Outcome::Failure("x".into()),
        );
        // max_attempts reached: permanent failure, no further backoff
        assert_eq!(s.state(id), Some(JobState::Failed));
        assert!(s.next_retry_at(id).is_none());
        let rb = s.take_rollbacks(due + SimDuration::from_secs(2));
        assert_eq!(rb, vec![(id, "doomed")]);
        assert_eq!(s.journal().replay()[&id], ReplayState::RolledBack);
    }

    #[test]
    fn backoff_jitter_always_stays_inside_the_window() {
        // exhaustive sweep: for every (job, attempt) pair the jittered
        // delay must land in [(1−f)·d, (1+f)·d] where d = min(cap, base·2^k)
        let p = backoff_policy();
        let base = 10.0;
        let cap = 60.0;
        for job in 0..256u64 {
            for attempt in 1..=16u32 {
                let doublings = attempt.saturating_sub(1).min(62);
                let pre = (base * (1u64 << doublings) as f64).min(cap);
                let d = p.delay_after(JobId(job), attempt).as_secs_f64();
                assert!(
                    d >= pre * 0.8 - 1e-9 && d <= pre * 1.2 + 1e-9,
                    "job {job} attempt {attempt}: {d} outside [{}, {}]",
                    pre * 0.8,
                    pre * 1.2
                );
            }
        }
    }

    #[test]
    fn retries_are_capped_at_max_attempts_dispatches() {
        // a permanently failing job is dispatched exactly max_attempts
        // times, never more, no matter how long we keep asking
        let max_attempts = 4;
        let mut s: Scheduler<&str> =
            Scheduler::with_retry_policy(1, max_attempts, backoff_policy());
        let id = s.submit(t(0), "doomed", Priority::Immediate);
        let mut dispatches = 0u32;
        let mut now = t(0);
        for _ in 0..max_attempts * 8 {
            for (job, _) in s.dispatch(now, false) {
                dispatches += 1;
                now += SimDuration::from_secs(1);
                s.report(now, job, Outcome::Failure("x".into()));
            }
            now = s
                .next_retry_at(id)
                .unwrap_or(now + SimDuration::from_secs(1));
        }
        assert_eq!(dispatches, max_attempts, "attempt cap honoured");
        assert_eq!(s.state(id), Some(JobState::Failed));
    }

    #[test]
    fn default_scheduler_keeps_zero_delay_retries() {
        let mut s: Scheduler<&str> = Scheduler::new(1, 3);
        let id = s.submit(t(0), "flaky", Priority::Immediate);
        let d = s.dispatch(t(0), false);
        s.report(t(1), d[0].0, Outcome::Failure("net".into()));
        assert!(s.next_retry_at(id).is_none());
        assert_eq!(s.dispatch(t(1), false).len(), 1, "instant requeue");
    }

    #[test]
    fn checkpoint_round_trip_resumes_identically() {
        let enc = |p: &u32| checkpoint::Value::U64(u64::from(*p));
        let dec = |v: &checkpoint::Value| checkpoint::codec::as_u64(v, "payload").map(|n| n as u32);

        let mut live: Scheduler<u32> = Scheduler::with_retry_policy(2, 2, backoff_policy());
        for i in 0..6u32 {
            let pri = if i % 2 == 0 {
                Priority::Immediate
            } else {
                Priority::WhenIdle
            };
            live.submit(t(0), i, pri);
        }
        let d = live.dispatch(t(1), false);
        live.report(t(2), d[0].0, Outcome::Failure("net".into()));
        live.report(t(3), d[1].0, Outcome::Success);
        live.dispatch(t(3), true); // leaves jobs running across the snapshot

        let json = serde_json::to_string(&live.save_state_with(enc)).unwrap();
        let mut restored: Scheduler<u32> = Scheduler::with_retry_policy(2, 2, backoff_policy());
        restored
            .load_state_with(&serde_json::parse_value(&json).unwrap(), dec)
            .unwrap();

        assert_eq!(restored.queue_depths(), live.queue_depths());
        assert_eq!(restored.running_jobs(), live.running_jobs());
        assert_eq!(restored.journal().entries(), live.journal().entries());
        for id in 0..6 {
            let id = JobId(id);
            assert_eq!(restored.state(id), live.state(id), "{id}");
            assert_eq!(restored.next_retry_at(id), live.next_retry_at(id), "{id}");
        }

        // Both continue identically: finish the running jobs, then drain.
        for s in [&mut live, &mut restored] {
            for id in s.running_jobs() {
                s.report(t(4), id, Outcome::Success);
            }
        }
        let a = live.dispatch(t(100), true);
        let b = restored.dispatch(t(100), true);
        assert_eq!(a, b, "post-restore dispatch order matches");
        // A job submitted after restore gets the same fresh id.
        assert_eq!(
            live.submit(t(101), 99, Priority::Immediate),
            restored.submit(t(101), 99, Priority::Immediate)
        );
    }

    #[test]
    fn pending_counts() {
        let mut s: Scheduler<u32> = Scheduler::new(2, 1);
        s.submit(t(0), 1, Priority::Immediate);
        s.submit(t(0), 2, Priority::WhenIdle);
        assert_eq!(s.pending(), 2);
        let d = s.dispatch(t(1), false);
        assert_eq!(s.pending(), 2, "running still pending");
        s.report(t(2), d[0].0, Outcome::Success);
        assert_eq!(s.pending(), 1);
    }
}
