//! Text syntax for ClassAd expressions.
//!
//! Recursive-descent parser with the usual precedence ladder:
//!
//! ```text
//! or    := and ( '||' and )*
//! and   := cmp ( '&&' cmp )*
//! cmp   := add ( ('=='|'!='|'<'|'<='|'>'|'>=') add )?
//! add   := mul ( ('+'|'-') mul )*
//! mul   := unary ( ('*'|'/') unary )*
//! unary := '!' unary | primary
//! primary := number | string | true | false | undefined
//!          | ('my.'|'target.')? ident | '(' or ')'
//! ```
//!
//! ERMS writes its node/replica requirements as strings, e.g.
//! `target.Standby == true && target.FreeDisk > 64 && target.Rack == my.Rack`.

use crate::classad::{BinOp, CVal, Expr, Scope};
use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub struct ExprParseError {
    pub message: String,
    pub position: usize,
}

impl fmt::Display for ExprParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "classad parse error at {}: {}",
            self.position, self.message
        )
    }
}
impl std::error::Error for ExprParseError {}

struct P<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, message: impl Into<String>) -> ExprParseError {
        ExprParseError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.text[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            None
        } else {
            Some(self.text[start..self.pos].to_string())
        }
    }

    fn or(&mut self) -> Result<Expr, ExprParseError> {
        let mut lhs = self.and()?;
        while self.eat("||") {
            let rhs = self.and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Expr, ExprParseError> {
        let mut lhs = self.cmp()?;
        while self.eat("&&") {
            let rhs = self.cmp()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp(&mut self) -> Result<Expr, ExprParseError> {
        let lhs = self.add()?;
        // longest-match first
        let ops: &[(&str, BinOp)] = &[
            ("==", BinOp::Eq),
            ("!=", BinOp::Ne),
            ("<=", BinOp::Le),
            (">=", BinOp::Ge),
            ("<", BinOp::Lt),
            (">", BinOp::Gt),
        ];
        for (tok, op) in ops {
            if self.eat(tok) {
                let rhs = self.add()?;
                return Ok(Expr::bin(*op, lhs, rhs));
            }
        }
        Ok(lhs)
    }

    fn add(&mut self) -> Result<Expr, ExprParseError> {
        let mut lhs = self.mul()?;
        loop {
            if self.eat("+") {
                let rhs = self.mul()?;
                lhs = Expr::bin(BinOp::Add, lhs, rhs);
            } else if self.peek() == Some(b'-')
                && !self.text[self.pos + 1..].starts_with(|c: char| c.is_ascii_digit())
            {
                self.pos += 1;
                let rhs = self.mul()?;
                lhs = Expr::bin(BinOp::Sub, lhs, rhs);
            } else if self.peek() == Some(b'-') {
                // could still be subtraction of a literal: `a - 3`
                self.pos += 1;
                let rhs = self.mul()?;
                lhs = Expr::bin(BinOp::Sub, lhs, rhs);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn mul(&mut self) -> Result<Expr, ExprParseError> {
        let mut lhs = self.unary()?;
        loop {
            if self.eat("*") {
                let rhs = self.unary()?;
                lhs = Expr::bin(BinOp::Mul, lhs, rhs);
            } else if self.eat("/") {
                let rhs = self.unary()?;
                lhs = Expr::bin(BinOp::Div, lhs, rhs);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ExprParseError> {
        if self.peek() == Some(b'!') && !self.text[self.pos + 1..].starts_with('=') {
            self.pos += 1;
            let inner = self.unary()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ExprParseError> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let e = self.or()?;
                if !self.eat(")") {
                    return Err(self.err("expected ')'"));
                }
                Ok(e)
            }
            Some(b'"') => {
                self.pos += 1;
                let start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos] != b'"' {
                    self.pos += 1;
                }
                if self.pos >= self.src.len() {
                    return Err(self.err("unterminated string"));
                }
                let s = self.text[start..self.pos].to_string();
                self.pos += 1;
                Ok(Expr::Lit(CVal::Str(s)))
            }
            Some(c) if c.is_ascii_digit() || c == b'-' => {
                let start = self.pos;
                if c == b'-' {
                    self.pos += 1;
                }
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_digit() || self.src[self.pos] == b'.')
                {
                    self.pos += 1;
                }
                let text = &self.text[start..self.pos];
                if text.contains('.') {
                    let f: f64 = text.parse().map_err(|_| self.err("bad float"))?;
                    Ok(Expr::Lit(CVal::Float(f)))
                } else {
                    let i: i64 = text.parse().map_err(|_| self.err("bad integer"))?;
                    Ok(Expr::Lit(CVal::Int(i)))
                }
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let name = self
                    .ident()
                    .ok_or_else(|| self.err("expected identifier"))?;
                match name.as_str() {
                    "true" => return Ok(Expr::Lit(CVal::Bool(true))),
                    "false" => return Ok(Expr::Lit(CVal::Bool(false))),
                    "undefined" => return Ok(Expr::Lit(CVal::Undefined)),
                    _ => {}
                }
                let scope = match name.as_str() {
                    "my" | "MY" => Some(Scope::My),
                    "target" | "TARGET" => Some(Scope::Target),
                    _ => None,
                };
                if let Some(scope) = scope {
                    if self.eat(".") {
                        let attr = self
                            .ident()
                            .ok_or_else(|| self.err("expected attribute after scope"))?;
                        return Ok(Expr::Attr(scope, attr));
                    }
                }
                Ok(Expr::Attr(Scope::Auto, name))
            }
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of expression")),
        }
    }
}

/// Parse a ClassAd expression string.
pub fn parse_expr(src: &str) -> Result<Expr, ExprParseError> {
    let mut p = P {
        src: src.as_bytes(),
        text: src,
        pos: 0,
    };
    let e = p.or()?;
    p.skip_ws();
    if p.pos != src.len() {
        return Err(p.err("trailing input"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classad::ClassAd;

    fn eval(src: &str, my: &ClassAd, target: Option<&ClassAd>) -> CVal {
        parse_expr(src).unwrap().eval(my, target)
    }

    #[test]
    fn literals() {
        let ad = ClassAd::new();
        assert_eq!(eval("42", &ad, None), CVal::Int(42));
        assert_eq!(eval("-7", &ad, None), CVal::Int(-7));
        assert_eq!(eval("2.5", &ad, None), CVal::Float(2.5));
        assert_eq!(eval("\"hello\"", &ad, None), CVal::Str("hello".into()));
        assert_eq!(eval("true", &ad, None), CVal::Bool(true));
        assert_eq!(eval("undefined", &ad, None), CVal::Undefined);
    }

    #[test]
    fn precedence() {
        let ad = ClassAd::new();
        assert_eq!(eval("1 + 2 * 3", &ad, None), CVal::Int(7));
        assert_eq!(eval("(1 + 2) * 3", &ad, None), CVal::Int(9));
        assert_eq!(eval("10 - 4 - 3", &ad, None), CVal::Int(3), "left assoc");
        assert_eq!(eval("1 + 1 == 2 && 3 > 2", &ad, None), CVal::Bool(true));
        assert_eq!(eval("false || true && false", &ad, None), CVal::Bool(false));
    }

    #[test]
    fn scoped_attributes() {
        let my = ClassAd::new().with("Rack", "r1").with("Need", 3i64);
        let target = ClassAd::new()
            .with("Rack", "r1")
            .with("FreeDisk", 120i64)
            .with("Standby", true);
        let req =
            "target.Standby == true && target.FreeDisk > my.Need * 10 && target.Rack == my.Rack";
        assert_eq!(eval(req, &my, Some(&target)), CVal::Bool(true));
        let other = ClassAd::new()
            .with("Rack", "r2")
            .with("FreeDisk", 120i64)
            .with("Standby", true);
        assert_eq!(eval(req, &my, Some(&other)), CVal::Bool(false));
    }

    #[test]
    fn negation_and_not_equals() {
        let ad = ClassAd::new().with("Busy", false);
        assert_eq!(eval("!Busy", &ad, None), CVal::Bool(true));
        assert_eq!(eval("1 != 2", &ad, None), CVal::Bool(true));
        assert_eq!(eval("!(1 != 2)", &ad, None), CVal::Bool(false));
    }

    #[test]
    fn undefined_attribute_fails_requirement() {
        let ad = ClassAd::new();
        let v = eval("Memory >= 1024", &ad, None);
        assert_eq!(v, CVal::Undefined);
        assert_ne!(v.as_bool(), Some(true), "must not match");
    }

    #[test]
    fn errors() {
        assert!(parse_expr("").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("(1 + 2").is_err());
        assert!(parse_expr("\"open").is_err());
        assert!(parse_expr("1 2").is_err());
        assert!(parse_expr("my.").is_err());
    }

    #[test]
    fn subtraction_of_literals() {
        let ad = ClassAd::new().with("x", 10i64);
        assert_eq!(eval("x - 3", &ad, None), CVal::Int(7));
        assert_eq!(eval("x - 3 > 5", &ad, None), CVal::Bool(true));
    }
}
