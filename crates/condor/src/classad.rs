//! ClassAds: attribute sets plus a small expression language.
//!
//! A ClassAd is a map from attribute names to expressions. Matchmaking
//! evaluates each side's `Requirements` expression in a context where
//! `my.x` refers to the owning ad and `target.x` to the candidate ad,
//! following the original Condor semantics. Missing attributes evaluate
//! to `Undefined`, which propagates through operators and fails boolean
//! tests — so a requirement on an absent attribute never matches, rather
//! than erroring.

use std::collections::BTreeMap;
use std::fmt;

/// A ClassAd value.
#[derive(Debug, Clone, PartialEq)]
pub enum CVal {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    /// Result of referencing a missing attribute.
    Undefined,
}

impl CVal {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            CVal::Int(i) => Some(*i as f64),
            CVal::Float(f) => Some(*f),
            _ => None,
        }
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            CVal::Bool(b) => Some(*b),
            _ => None,
        }
    }
    pub fn is_undefined(&self) -> bool {
        matches!(self, CVal::Undefined)
    }
}

impl fmt::Display for CVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CVal::Int(i) => write!(f, "{i}"),
            CVal::Float(x) => write!(f, "{x}"),
            CVal::Str(s) => write!(f, "\"{s}\""),
            CVal::Bool(b) => write!(f, "{b}"),
            CVal::Undefined => write!(f, "undefined"),
        }
    }
}

impl From<i64> for CVal {
    fn from(v: i64) -> Self {
        CVal::Int(v)
    }
}
impl From<f64> for CVal {
    fn from(v: f64) -> Self {
        CVal::Float(v)
    }
}
impl From<&str> for CVal {
    fn from(v: &str) -> Self {
        CVal::Str(v.to_string())
    }
}
impl From<bool> for CVal {
    fn from(v: bool) -> Self {
        CVal::Bool(v)
    }
}

/// Binary operators of the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// Which ad an attribute reference resolves against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// `my.attr` — the ad being evaluated.
    My,
    /// `target.attr` — the candidate on the other side of the match.
    Target,
    /// Bare `attr` — resolves against `my`, then `target` (Condor's
    /// lookup order for unscoped names).
    Auto,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Lit(CVal),
    Attr(Scope, String),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
}

impl Expr {
    pub fn lit(v: impl Into<CVal>) -> Expr {
        Expr::Lit(v.into())
    }
    pub fn attr(name: impl Into<String>) -> Expr {
        Expr::Attr(Scope::Auto, name.into())
    }
    pub fn my(name: impl Into<String>) -> Expr {
        Expr::Attr(Scope::My, name.into())
    }
    pub fn target(name: impl Into<String>) -> Expr {
        Expr::Attr(Scope::Target, name.into())
    }
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Evaluate against (my, target). `target` may be `None` when an ad
    /// is evaluated standalone.
    pub fn eval(&self, my: &ClassAd, target: Option<&ClassAd>) -> CVal {
        match self {
            Expr::Lit(v) => v.clone(),
            Expr::Attr(scope, name) => match scope {
                Scope::My => my.get(name).cloned().unwrap_or(CVal::Undefined),
                Scope::Target => target
                    .and_then(|t| t.get(name))
                    .cloned()
                    .unwrap_or(CVal::Undefined),
                Scope::Auto => my
                    .get(name)
                    .or_else(|| target.and_then(|t| t.get(name)))
                    .cloned()
                    .unwrap_or(CVal::Undefined),
            },
            Expr::Not(e) => match e.eval(my, target).as_bool() {
                Some(b) => CVal::Bool(!b),
                None => CVal::Undefined,
            },
            Expr::Bin(op, l, r) => {
                let lv = l.eval(my, target);
                // short-circuit boolean ops
                match op {
                    BinOp::And if lv.as_bool() == Some(false) => {
                        return CVal::Bool(false);
                    }
                    BinOp::Or if lv.as_bool() == Some(true) => {
                        return CVal::Bool(true);
                    }
                    _ => {}
                }
                let rv = r.eval(my, target);
                eval_bin(*op, &lv, &rv)
            }
        }
    }
}

fn eval_bin(op: BinOp, l: &CVal, r: &CVal) -> CVal {
    use BinOp::*;
    match op {
        And => match (l.as_bool(), r.as_bool()) {
            (Some(a), Some(b)) => CVal::Bool(a && b),
            _ => CVal::Undefined,
        },
        Or => match (l.as_bool(), r.as_bool()) {
            (Some(a), Some(b)) => CVal::Bool(a || b),
            _ => CVal::Undefined,
        },
        Eq | Ne => {
            let equal = match (l, r) {
                (CVal::Str(a), CVal::Str(b)) => Some(a == b),
                (CVal::Bool(a), CVal::Bool(b)) => Some(a == b),
                _ => match (l.as_f64(), r.as_f64()) {
                    (Some(a), Some(b)) => Some(a == b),
                    _ => None,
                },
            };
            match equal {
                Some(e) => CVal::Bool(if op == Eq { e } else { !e }),
                None => CVal::Undefined,
            }
        }
        Lt | Le | Gt | Ge => {
            let ord = match (l, r) {
                (CVal::Str(a), CVal::Str(b)) => Some(a.cmp(b)),
                _ => match (l.as_f64(), r.as_f64()) {
                    (Some(a), Some(b)) => a.partial_cmp(&b),
                    _ => None,
                },
            };
            match ord {
                Some(o) => CVal::Bool(match op {
                    Lt => o.is_lt(),
                    Le => o.is_le(),
                    Gt => o.is_gt(),
                    Ge => o.is_ge(),
                    _ => unreachable!(),
                }),
                None => CVal::Undefined,
            }
        }
        Add | Sub | Mul | Div => match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => {
                let v = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => {
                        if b == 0.0 {
                            return CVal::Undefined;
                        }
                        a / b
                    }
                    _ => unreachable!(),
                };
                // preserve integerness where both sides were ints
                if matches!((l, r), (CVal::Int(_), CVal::Int(_))) && v.fract() == 0.0 {
                    CVal::Int(v as i64)
                } else {
                    CVal::Float(v)
                }
            }
            _ => CVal::Undefined,
        },
    }
}

/// An attribute set. Attribute names are case-sensitive (unlike real
/// Condor) — everything in this workspace generates them from code, so
/// case-folding would only mask typos.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassAd {
    attrs: BTreeMap<String, CVal>,
}

impl ClassAd {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with(mut self, name: impl Into<String>, value: impl Into<CVal>) -> Self {
        self.set(name, value);
        self
    }

    pub fn set(&mut self, name: impl Into<String>, value: impl Into<CVal>) {
        self.attrs.insert(name.into(), value.into());
    }

    pub fn get(&self, name: &str) -> Option<&CVal> {
        self.attrs.get(name)
    }

    pub fn remove(&mut self, name: &str) -> Option<CVal> {
        self.attrs.remove(name)
    }

    pub fn len(&self) -> usize {
        self.attrs.len()
    }
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &CVal)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Evaluate an expression with this ad as `my`.
    pub fn eval(&self, expr: &Expr, target: Option<&ClassAd>) -> CVal {
        expr.eval(self, target)
    }
}

impl fmt::Display for ClassAd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[")?;
        for (k, v) in &self.attrs {
            writeln!(f, "  {k} = {v};")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> ClassAd {
        ClassAd::new()
            .with("Memory", 8192i64)
            .with("Disk", 250.0)
            .with("Rack", "rack1")
            .with("Standby", true)
    }

    #[test]
    fn literal_and_attr_eval() {
        let ad = machine();
        assert_eq!(ad.eval(&Expr::lit(5i64), None), CVal::Int(5));
        assert_eq!(ad.eval(&Expr::my("Memory"), None), CVal::Int(8192));
        assert_eq!(ad.eval(&Expr::my("Missing"), None), CVal::Undefined);
    }

    #[test]
    fn scoped_resolution() {
        let my = ClassAd::new().with("x", 1i64);
        let target = ClassAd::new().with("x", 2i64).with("y", 3i64);
        assert_eq!(Expr::my("x").eval(&my, Some(&target)), CVal::Int(1));
        assert_eq!(Expr::target("x").eval(&my, Some(&target)), CVal::Int(2));
        // Auto: my first, then target
        assert_eq!(Expr::attr("x").eval(&my, Some(&target)), CVal::Int(1));
        assert_eq!(Expr::attr("y").eval(&my, Some(&target)), CVal::Int(3));
        assert_eq!(Expr::target("x").eval(&my, None), CVal::Undefined);
    }

    #[test]
    fn arithmetic_preserves_int() {
        let ad = ClassAd::new();
        let e = Expr::bin(BinOp::Add, Expr::lit(2i64), Expr::lit(3i64));
        assert_eq!(ad.eval(&e, None), CVal::Int(5));
        let e = Expr::bin(BinOp::Div, Expr::lit(7i64), Expr::lit(2i64));
        assert_eq!(ad.eval(&e, None), CVal::Float(3.5));
        let e = Expr::bin(BinOp::Div, Expr::lit(1i64), Expr::lit(0i64));
        assert_eq!(ad.eval(&e, None), CVal::Undefined);
    }

    #[test]
    fn comparisons() {
        let ad = machine();
        let e = Expr::bin(BinOp::Ge, Expr::my("Memory"), Expr::lit(4096i64));
        assert_eq!(ad.eval(&e, None), CVal::Bool(true));
        let e = Expr::bin(BinOp::Eq, Expr::my("Rack"), Expr::lit("rack1"));
        assert_eq!(ad.eval(&e, None), CVal::Bool(true));
        let e = Expr::bin(BinOp::Lt, Expr::my("Rack"), Expr::lit("rack2"));
        assert_eq!(
            ad.eval(&e, None),
            CVal::Bool(true),
            "strings order lexically"
        );
        // comparing across kinds is Undefined, not an error or false
        let e = Expr::bin(BinOp::Eq, Expr::my("Rack"), Expr::lit(1i64));
        assert_eq!(ad.eval(&e, None), CVal::Undefined);
    }

    #[test]
    fn boolean_logic_and_undefined_propagation() {
        let ad = machine();
        let t = Expr::lit(true);
        let f = Expr::lit(false);
        let u = Expr::my("Missing");
        assert_eq!(
            ad.eval(&Expr::bin(BinOp::And, t.clone(), f.clone()), None),
            CVal::Bool(false)
        );
        assert_eq!(
            ad.eval(&Expr::bin(BinOp::Or, f.clone(), t.clone()), None),
            CVal::Bool(true)
        );
        assert_eq!(
            ad.eval(&Expr::Not(Box::new(t.clone())), None),
            CVal::Bool(false)
        );
        // undefined && true → undefined; but false && undefined short-circuits
        assert_eq!(
            ad.eval(&Expr::bin(BinOp::And, u.clone(), t.clone()), None),
            CVal::Undefined
        );
        assert_eq!(
            ad.eval(&Expr::bin(BinOp::And, f, u.clone()), None),
            CVal::Bool(false)
        );
        assert_eq!(
            ad.eval(&Expr::bin(BinOp::Or, t, u.clone()), None),
            CVal::Bool(true)
        );
        assert_eq!(ad.eval(&Expr::Not(Box::new(u)), None), CVal::Undefined);
    }

    #[test]
    fn ad_mutation() {
        let mut ad = machine();
        assert_eq!(ad.len(), 4);
        ad.set("Memory", 16384i64);
        assert_eq!(ad.get("Memory"), Some(&CVal::Int(16384)));
        assert_eq!(ad.remove("Disk"), Some(CVal::Float(250.0)));
        assert_eq!(ad.len(), 3);
        assert!(!ad.is_empty());
    }

    #[test]
    fn display_is_condor_shaped() {
        let s = ClassAd::new().with("A", 1i64).with("B", "x").to_string();
        assert!(s.contains("A = 1;"));
        assert!(s.contains("B = \"x\";"));
    }
}
