//! Symmetric ClassAd matchmaking.
//!
//! ERMS registers one machine ad per datanode (updated on heartbeat) and
//! builds a request ad per replication task. A match requires **both**
//! sides' `Requirements` to evaluate true against the other; candidates
//! are ordered by the request's `Rank` expression (higher is better) with
//! the ad name as a deterministic tiebreak. Commission/decommission
//! detection falls out of the ad registry: a node that stops advertising
//! is decommissioned.

use crate::classad::{CVal, ClassAd, Expr};
use std::collections::BTreeMap;

/// Attribute holding each side's match constraint.
pub const REQUIREMENTS: &str = "Requirements";
/// Attribute holding the requester's preference expression.
pub const RANK: &str = "Rank";

/// A registry of named machine ads plus matching logic.
#[derive(Default)]
pub struct Matchmaker {
    machines: BTreeMap<String, (ClassAd, Option<Expr>)>,
}

impl Matchmaker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Advertise (or refresh) a machine ad. `requirements` is the
    /// machine-side constraint, if any.
    pub fn advertise(&mut self, name: impl Into<String>, ad: ClassAd, requirements: Option<Expr>) {
        self.machines.insert(name.into(), (ad, requirements));
    }

    /// Withdraw an ad (node decommissioned / died).
    pub fn withdraw(&mut self, name: &str) -> bool {
        self.machines.remove(name).is_some()
    }

    pub fn is_advertised(&self, name: &str) -> bool {
        self.machines.contains_key(name)
    }

    pub fn machine_names(&self) -> impl Iterator<Item = &str> {
        self.machines.keys().map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.machines.len()
    }
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    pub fn get(&self, name: &str) -> Option<&ClassAd> {
        self.machines.get(name).map(|(ad, _)| ad)
    }

    /// All machines matching the request, best-ranked first.
    ///
    /// `request` carries its constraint in `Requirements` (an [`Expr`]
    /// passed separately since ads store values, not expressions) and its
    /// preference in `rank`.
    pub fn matches(
        &self,
        request: &ClassAd,
        requirements: &Expr,
        rank: Option<&Expr>,
    ) -> Vec<(&str, f64)> {
        let mut out: Vec<(&str, f64)> = Vec::new();
        for (name, (machine, machine_req)) in &self.machines {
            // request side: my = request, target = machine
            if requirements.eval(request, Some(machine)).as_bool() != Some(true) {
                continue;
            }
            // machine side (if present): my = machine, target = request
            if let Some(mreq) = machine_req {
                if mreq.eval(machine, Some(request)).as_bool() != Some(true) {
                    continue;
                }
            }
            let r = rank
                .map(|r| match r.eval(request, Some(machine)) {
                    CVal::Int(i) => i as f64,
                    CVal::Float(f) => f,
                    CVal::Bool(true) => 1.0,
                    _ => 0.0,
                })
                .unwrap_or(0.0);
            out.push((name.as_str(), r));
        }
        // higher rank first; name ascending as deterministic tiebreak
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(b.0))
        });
        out
    }

    /// Best single match, if any.
    pub fn best_match(
        &self,
        request: &ClassAd,
        requirements: &Expr,
        rank: Option<&Expr>,
    ) -> Option<&str> {
        self.matches(request, requirements, rank)
            .first()
            .map(|&(n, _)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn node(rack: &str, free_gb: i64, standby: bool, blocks: i64) -> ClassAd {
        ClassAd::new()
            .with("Rack", rack)
            .with("FreeDisk", free_gb)
            .with("Standby", standby)
            .with("Blocks", blocks)
    }

    fn mm() -> Matchmaker {
        let mut m = Matchmaker::new();
        m.advertise("dn1", node("r1", 100, false, 50), None);
        m.advertise("dn2", node("r1", 10, true, 5), None);
        m.advertise("dn3", node("r2", 200, true, 20), None);
        m.advertise("dn4", node("r2", 80, false, 90), None);
        m
    }

    #[test]
    fn requirements_filter() {
        let m = mm();
        let req = parse_expr("target.Standby == true && target.FreeDisk >= 50").unwrap();
        let request = ClassAd::new();
        let names: Vec<&str> = m
            .matches(&request, &req, None)
            .iter()
            .map(|&(n, _)| n)
            .collect();
        assert_eq!(names, vec!["dn3"]);
    }

    #[test]
    fn rank_orders_candidates() {
        let m = mm();
        let req = parse_expr("target.FreeDisk > 0").unwrap();
        let rank = parse_expr("target.FreeDisk").unwrap();
        let got = m.matches(&ClassAd::new(), &req, Some(&rank));
        let names: Vec<&str> = got.iter().map(|&(n, _)| n).collect();
        assert_eq!(names, vec!["dn3", "dn1", "dn4", "dn2"]);
        assert_eq!(got[0].1, 200.0);
    }

    #[test]
    fn rank_ties_break_by_name() {
        let mut m = Matchmaker::new();
        m.advertise("b", node("r1", 50, false, 0), None);
        m.advertise("a", node("r1", 50, false, 0), None);
        let req = parse_expr("true").unwrap();
        let rank = parse_expr("target.FreeDisk").unwrap();
        let names: Vec<&str> = m
            .matches(&ClassAd::new(), &req, Some(&rank))
            .iter()
            .map(|&(n, _)| n)
            .collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn request_attributes_visible_via_my() {
        let m = mm();
        // ask for a node in the same rack as the request
        let req = parse_expr("target.Rack == my.Rack").unwrap();
        let request = ClassAd::new().with("Rack", "r2");
        let names: Vec<&str> = m
            .matches(&request, &req, None)
            .iter()
            .map(|&(n, _)| n)
            .collect();
        assert_eq!(names, vec!["dn3", "dn4"]);
    }

    #[test]
    fn machine_side_requirements_are_enforced() {
        let mut m = Matchmaker::new();
        // machine only accepts small jobs
        let machine_req = parse_expr("target.NeedDisk <= 10").unwrap();
        m.advertise("picky", node("r1", 500, true, 0), Some(machine_req));
        let req = parse_expr("target.FreeDisk > 100").unwrap();
        let small = ClassAd::new().with("NeedDisk", 5i64);
        let big = ClassAd::new().with("NeedDisk", 50i64);
        assert_eq!(m.best_match(&small, &req, None), Some("picky"));
        assert_eq!(m.best_match(&big, &req, None), None);
    }

    #[test]
    fn withdraw_models_decommission() {
        let mut m = mm();
        assert!(m.is_advertised("dn2"));
        assert!(m.withdraw("dn2"));
        assert!(!m.is_advertised("dn2"));
        assert!(!m.withdraw("dn2"), "second withdraw is a no-op");
        assert_eq!(m.len(), 3);
        let req = parse_expr("target.Standby == true").unwrap();
        let names: Vec<&str> = m
            .matches(&ClassAd::new(), &req, None)
            .iter()
            .map(|&(n, _)| n)
            .collect();
        assert_eq!(names, vec!["dn3"]);
    }

    #[test]
    fn undefined_requirement_never_matches() {
        let m = mm();
        let req = parse_expr("target.NoSuchAttr > 5").unwrap();
        assert!(m.matches(&ClassAd::new(), &req, None).is_empty());
    }
}
