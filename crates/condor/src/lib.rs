//! `condor` — the task-execution substrate ERMS schedules through.
//!
//! The paper uses Condor for three things (Section III.A/B):
//!
//! 1. **ClassAds** represent "the characteristics and constraints of nodes
//!    and replicas" and detect datanode commission/decommission — module
//!    [`classad`] (attribute sets + a boolean/arithmetic expression
//!    language with `my.`/`target.` scoping) and [`matchmaker`]
//!    (symmetric requirements matching with rank ordering).
//! 2. **Scheduling**: replica-increase and erasure-*decode* tasks run
//!    immediately, replica-decrease and erasure-*encode* tasks run "when
//!    the HDFS cluster is idle" — module [`scheduler`].
//! 3. **The user log** records every replication/coding task so failed
//!    tasks "could rollback automatically" and operators "can replay all
//!    operations" — module [`journal`].
//!
//! The crate is generic over the task payload: ERMS supplies its own
//! replication/erasure commands (`erms::manager`), tests use plain enums.
//!
//! ```
//! use condor::{Outcome, Priority, Scheduler};
//! use simcore::SimTime;
//!
//! let mut sched: Scheduler<&str> = Scheduler::new(4, 3);
//! sched.submit(SimTime::ZERO, "increase /hot to r=8", Priority::Immediate);
//! sched.submit(SimTime::ZERO, "encode /cold", Priority::WhenIdle);
//!
//! // a busy cluster only runs the immediate class
//! let dispatched = sched.dispatch(SimTime::from_secs(1), false);
//! assert_eq!(dispatched.len(), 1);
//! let (job, payload) = (&dispatched[0].0, dispatched[0].1);
//! assert_eq!(payload, "increase /hot to r=8");
//! sched.report(SimTime::from_secs(2), *job, Outcome::Success);
//!
//! // everything is journalled for rollback and replay
//! assert_eq!(sched.journal().len(), 4);
//! ```

pub mod classad;
pub mod journal;
pub mod matchmaker;
pub mod parser;
pub mod scheduler;

pub use classad::{CVal, ClassAd, Expr};
pub use journal::{Journal, JournalEntry, JournalEvent};
pub use matchmaker::Matchmaker;
pub use scheduler::{JobId, JobState, Outcome, Priority, Scheduler};
