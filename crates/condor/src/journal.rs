//! The task journal (Condor's "user log").
//!
//! Every replication-manager and erasure-coding task is recorded here so
//! that, per the paper, "if these tasks failed, they could rollback
//! automatically. We can replay all operations and analyze them." The
//! journal is an append-only event list; [`Journal::replay`] folds it
//! back into per-job final states and is property-tested (in the
//! scheduler) to agree with live state.

use simcore::SimTime;
use std::fmt;

/// Job identifier shared with the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent<P> {
    Submitted {
        payload: P,
        priority: crate::scheduler::Priority,
    },
    Started {
        attempt: u32,
    },
    Completed,
    Failed {
        reason: String,
        attempt: u32,
    },
    /// Permanent failure: the job's effects must be undone.
    RollbackRequested,
    RolledBack,
}

/// A timestamped journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry<P> {
    pub time: SimTime,
    pub job: JobId,
    pub event: JournalEvent<P>,
}

/// Final state of a job as reconstructed by replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayState {
    Queued,
    Running,
    Completed,
    FailedAwaitingRollback,
    RolledBack,
}

/// Append-only task log.
#[derive(Debug, Clone, Default)]
pub struct Journal<P> {
    entries: Vec<JournalEntry<P>>,
}

impl<P: Clone> Journal<P> {
    pub fn new() -> Self {
        Journal {
            entries: Vec::new(),
        }
    }

    pub fn record(&mut self, time: SimTime, job: JobId, event: JournalEvent<P>) {
        self.entries.push(JournalEntry { time, job, event });
    }

    pub fn entries(&self) -> &[JournalEntry<P>] {
        &self.entries
    }
    pub fn len(&self) -> usize {
        self.entries.len()
    }
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries for one job, in order.
    pub fn for_job(&self, job: JobId) -> Vec<&JournalEntry<P>> {
        self.entries.iter().filter(|e| e.job == job).collect()
    }

    /// Fold the log into each job's final state.
    pub fn replay(&self) -> std::collections::BTreeMap<JobId, ReplayState> {
        let mut states = std::collections::BTreeMap::new();
        for entry in &self.entries {
            let state = match &entry.event {
                JournalEvent::Submitted { .. } => ReplayState::Queued,
                JournalEvent::Started { .. } => ReplayState::Running,
                JournalEvent::Completed => ReplayState::Completed,
                // a failure before exhausting retries re-queues
                JournalEvent::Failed { .. } => ReplayState::Queued,
                JournalEvent::RollbackRequested => ReplayState::FailedAwaitingRollback,
                JournalEvent::RolledBack => ReplayState::RolledBack,
            };
            states.insert(entry.job, state);
        }
        states
    }

    /// Payloads of jobs that permanently failed and still need undoing
    /// (RollbackRequested without a later RolledBack).
    pub fn pending_rollbacks(&self) -> Vec<(JobId, P)> {
        let states = self.replay();
        let mut out = Vec::new();
        for (job, state) in states {
            if state == ReplayState::FailedAwaitingRollback {
                if let Some(payload) = self.payload_of(job) {
                    out.push((job, payload));
                }
            }
        }
        out
    }

    /// The submitted payload of a job.
    pub fn payload_of(&self, job: JobId) -> Option<P> {
        self.entries.iter().find_map(|e| {
            if e.job == job {
                if let JournalEvent::Submitted { payload, .. } = &e.event {
                    return Some(payload.clone());
                }
            }
            None
        })
    }

    /// Compensating actions for jobs the log shows as *Running* — tasks
    /// that were in flight when the journal was captured and died with
    /// the crashed manager. A restarting manager cannot wait for their
    /// reports (no executor holds them any more), so each payload must be
    /// either undone or re-driven to a safe state. Jobs that permanently
    /// failed before the crash are covered by
    /// [`Self::pending_rollbacks`], not repeated here.
    pub fn rollback_plan(&self) -> Vec<(JobId, P)> {
        self.replay()
            .into_iter()
            .filter(|(_, state)| *state == ReplayState::Running)
            .filter_map(|(job, _)| self.payload_of(job).map(|p| (job, p)))
            .collect()
    }

    /// Snapshot the log, encoding payloads through `enc`. The journal is
    /// generic over its payload, so (de)serialization is parameterised
    /// rather than bound to a trait the payload may not implement.
    pub fn save_state_with(&self, enc: impl Fn(&P) -> checkpoint::Value) -> checkpoint::Value {
        use checkpoint::codec::MapBuilder;
        use checkpoint::Value;
        Value::Seq(
            self.entries
                .iter()
                .map(|e| {
                    let b = MapBuilder::new()
                        .u64("t", e.time.as_nanos())
                        .u64("job", e.job.0);
                    match &e.event {
                        JournalEvent::Submitted { payload, priority } => {
                            b.str("ev", "submitted").put("payload", enc(payload)).str(
                                "priority",
                                match priority {
                                    crate::scheduler::Priority::Immediate => "immediate",
                                    crate::scheduler::Priority::WhenIdle => "when_idle",
                                },
                            )
                        }
                        JournalEvent::Started { attempt } => {
                            b.str("ev", "started").u64("attempt", u64::from(*attempt))
                        }
                        JournalEvent::Completed => b.str("ev", "completed"),
                        JournalEvent::Failed { reason, attempt } => b
                            .str("ev", "failed")
                            .str("reason", reason)
                            .u64("attempt", u64::from(*attempt)),
                        JournalEvent::RollbackRequested => b.str("ev", "rollback_requested"),
                        JournalEvent::RolledBack => b.str("ev", "rolled_back"),
                    }
                    .build()
                })
                .collect(),
        )
    }

    /// Replace the log with a snapshot taken by
    /// [`Self::save_state_with`], decoding payloads through `dec`.
    pub fn load_state_with(
        &mut self,
        state: &checkpoint::Value,
        dec: impl Fn(&checkpoint::Value) -> Result<P, checkpoint::CheckpointError>,
    ) -> Result<(), checkpoint::CheckpointError> {
        use checkpoint::codec as c;
        let entries = c::as_seq(state, "journal")?;
        let mut out = Vec::with_capacity(entries.len());
        for e in entries {
            let event = match c::get_str(e, "ev")? {
                "submitted" => JournalEvent::Submitted {
                    payload: dec(c::get(e, "payload")?)?,
                    priority: match c::get_str(e, "priority")? {
                        "immediate" => crate::scheduler::Priority::Immediate,
                        "when_idle" => crate::scheduler::Priority::WhenIdle,
                        other => {
                            return Err(checkpoint::CheckpointError::Corrupt(format!(
                                "unknown priority `{other}`"
                            )))
                        }
                    },
                },
                "started" => JournalEvent::Started {
                    attempt: c::get_u32(e, "attempt")?,
                },
                "completed" => JournalEvent::Completed,
                "failed" => JournalEvent::Failed {
                    reason: c::get_str(e, "reason")?.to_string(),
                    attempt: c::get_u32(e, "attempt")?,
                },
                "rollback_requested" => JournalEvent::RollbackRequested,
                "rolled_back" => JournalEvent::RolledBack,
                other => {
                    return Err(checkpoint::CheckpointError::Corrupt(format!(
                        "unknown journal event `{other}`"
                    )))
                }
            };
            out.push(JournalEntry {
                time: SimTime::from_nanos(c::get_u64(e, "t")?),
                job: JobId(c::get_u64(e, "job")?),
                event,
            });
        }
        self.entries = out;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Priority;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn replay_reconstructs_lifecycle() {
        let mut j: Journal<&str> = Journal::new();
        let a = JobId(1);
        let b = JobId(2);
        j.record(
            t(0),
            a,
            JournalEvent::Submitted {
                payload: "inc",
                priority: Priority::Immediate,
            },
        );
        j.record(
            t(0),
            b,
            JournalEvent::Submitted {
                payload: "enc",
                priority: Priority::WhenIdle,
            },
        );
        j.record(t(1), a, JournalEvent::Started { attempt: 1 });
        j.record(t(2), a, JournalEvent::Completed);
        j.record(t(3), b, JournalEvent::Started { attempt: 1 });
        let states = j.replay();
        assert_eq!(states[&a], ReplayState::Completed);
        assert_eq!(states[&b], ReplayState::Running);
    }

    #[test]
    fn failure_then_retry_then_rollback() {
        let mut j: Journal<&str> = Journal::new();
        let a = JobId(7);
        j.record(
            t(0),
            a,
            JournalEvent::Submitted {
                payload: "inc",
                priority: Priority::Immediate,
            },
        );
        j.record(t(1), a, JournalEvent::Started { attempt: 1 });
        j.record(
            t(2),
            a,
            JournalEvent::Failed {
                reason: "dn died".into(),
                attempt: 1,
            },
        );
        assert_eq!(j.replay()[&a], ReplayState::Queued, "failure requeues");
        j.record(t(3), a, JournalEvent::Started { attempt: 2 });
        j.record(
            t(4),
            a,
            JournalEvent::Failed {
                reason: "dn died".into(),
                attempt: 2,
            },
        );
        j.record(t(4), a, JournalEvent::RollbackRequested);
        assert_eq!(j.replay()[&a], ReplayState::FailedAwaitingRollback);
        assert_eq!(j.pending_rollbacks(), vec![(a, "inc")]);
        j.record(t(5), a, JournalEvent::RolledBack);
        assert_eq!(j.replay()[&a], ReplayState::RolledBack);
        assert!(j.pending_rollbacks().is_empty());
    }

    #[test]
    fn rollback_plan_names_only_inflight_jobs() {
        let mut j: Journal<&str> = Journal::new();
        let done = JobId(1);
        let inflight = JobId(2);
        let queued = JobId(3);
        for (id, p) in [(done, "a"), (inflight, "b"), (queued, "c")] {
            j.record(
                t(0),
                id,
                JournalEvent::Submitted {
                    payload: p,
                    priority: Priority::Immediate,
                },
            );
        }
        j.record(t(1), done, JournalEvent::Started { attempt: 1 });
        j.record(t(2), done, JournalEvent::Completed);
        j.record(t(3), inflight, JournalEvent::Started { attempt: 1 });
        assert_eq!(j.rollback_plan(), vec![(inflight, "b")]);
    }

    #[test]
    fn save_load_round_trips_every_event_kind() {
        let mut j: Journal<String> = Journal::new();
        let a = JobId(4);
        j.record(
            t(0),
            a,
            JournalEvent::Submitted {
                payload: "p".to_string(),
                priority: Priority::WhenIdle,
            },
        );
        j.record(t(1), a, JournalEvent::Started { attempt: 1 });
        j.record(
            t(2),
            a,
            JournalEvent::Failed {
                reason: "dn died".into(),
                attempt: 1,
            },
        );
        j.record(t(3), a, JournalEvent::Started { attempt: 2 });
        j.record(t(4), a, JournalEvent::Completed);
        j.record(t(5), a, JournalEvent::RollbackRequested);
        j.record(t(6), a, JournalEvent::RolledBack);

        let saved = j.save_state_with(|p| checkpoint::Value::Str(p.clone()));
        let json = serde_json::to_string(&saved).unwrap();
        let mut back: Journal<String> = Journal::new();
        back.load_state_with(&serde_json::parse_value(&json).unwrap(), |v| {
            checkpoint::codec::as_str(v, "payload").map(str::to_string)
        })
        .unwrap();
        assert_eq!(back.entries(), j.entries());
    }

    #[test]
    fn for_job_and_payload() {
        let mut j: Journal<u32> = Journal::new();
        j.record(
            t(0),
            JobId(1),
            JournalEvent::Submitted {
                payload: 10,
                priority: Priority::Immediate,
            },
        );
        j.record(
            t(0),
            JobId(2),
            JournalEvent::Submitted {
                payload: 20,
                priority: Priority::Immediate,
            },
        );
        j.record(t(1), JobId(1), JournalEvent::Completed);
        assert_eq!(j.for_job(JobId(1)).len(), 2);
        assert_eq!(j.payload_of(JobId(2)), Some(20));
        assert_eq!(j.payload_of(JobId(9)), None);
        assert_eq!(j.len(), 3);
    }
}
