//! `policy` — pluggable judge backends for the ERMS control loop.
//!
//! The paper's Data Judge is a fixed threshold machine (Formulas
//! (1)–(6)). This crate extracts the *decision* out of the CEP feature
//! plumbing into a [`JudgePolicy`] trait so alternative judges — learned
//! ones — can be dropped into the manager's sharded judge pass without
//! touching the audit→CEP pipeline, the FileId-ordered merge, or the
//! checkpoint discipline:
//!
//! * the rule-based judge (in `erms`) implements the trait by running
//!   Formulas (1)–(6) against the windowed counts it reads through a
//!   [`CepProbe`];
//! * [`qlearn::QLearningJudge`] is a seeded tabular Q-learning /
//!   contextual-bandit judge over a small discretized feature space
//!   (windowed `N_d`, `N_b_max`, fresh-spike flag, replication,
//!   time-since-access bucket) with actions {boost, hold, shed, encode}
//!   and a reward fed each tick from the storage/energy meters;
//! * [`hmm::HmmJudge`] is a three-state hidden-Markov hot/cold
//!   classifier decoding each file's access stream by forward
//!   filtering (no Baum–Welch: the matrices are fixed, only the
//!   per-file posterior is state).
//!
//! Every backend is **deterministic per seed** and
//! [`Checkpointable`](checkpoint::Checkpointable): its learner state is
//! a snapshot section, so the byte-identical resume-equivalence guard
//! holds for learned judges exactly as it does for the rules. Learned
//! backends must also be *visit-order independent* within a judge pass
//! (the manager shards the pass by `FileId % shards`): decisions read a
//! table frozen at the start of the pass, exploration randomness is
//! derived per `(pass, file)` rather than drawn from a sequential
//! stream, and updates are batched and applied in `FileId` order at
//! [`JudgePolicy::end_pass`].

pub mod features;
pub mod hmm;
pub mod qlearn;

pub use features::{Discretizer, Features};
pub use hmm::{HmmConfig, HmmJudge};
pub use qlearn::{QConfig, QLearningJudge};

use simcore::SimTime;

/// The four data classes of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataClass {
    Hot,
    Cooled,
    Normal,
    Cold,
}

/// Which judge implementation produced a verdict (and which the config
/// selects). `Rules` is the paper's threshold machine; the others are
/// the learned backends of this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JudgeBackend {
    /// Formulas (1)–(6) with fixed thresholds (the paper).
    #[default]
    Rules,
    /// Seeded tabular Q-learning over discretized CEP features.
    QLearning,
    /// Hidden-Markov hot/cold classifier over the access stream.
    Hmm,
}

impl JudgeBackend {
    /// Stable lowercase label used in CLI arguments, JSON reports and
    /// scenario names.
    pub fn as_str(self) -> &'static str {
        match self {
            JudgeBackend::Rules => "rules",
            JudgeBackend::QLearning => "qlearning",
            JudgeBackend::Hmm => "hmm",
        }
    }

    /// Parse the [`as_str`](Self::as_str) label back (CLI round trip).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "rules" => Some(JudgeBackend::Rules),
            "qlearning" | "q" => Some(JudgeBackend::QLearning),
            "hmm" => Some(JudgeBackend::Hmm),
            _ => None,
        }
    }
}

impl std::fmt::Display for JudgeBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a verdict came out the way it did.
///
/// Replaces the former `rule: u8` magic numbers (0–6). The numeric
/// codes are preserved through [`code`](Self::code) so anything that
/// serialized the old byte keeps its wire encoding; `#[non_exhaustive]`
/// because future backends (or future formulas) will add variants.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JudgeRule {
    /// No formula fired (code 0).
    Normal,
    /// Formula (1): per-replica file pressure `N_d / r > τ_M` (code 1).
    FilePressure,
    /// Formula (2): a single block bursting past `M_M` (code 2).
    BlockBurst,
    /// Formula (3): warm-block fraction above ε (code 3).
    WarmFraction,
    /// Formula (4): promoted as an overloaded datanode's top file
    /// (code 4).
    NodeOverload,
    /// Formula (5): boosted file whose demand fell away (code 5).
    Cooled,
    /// Formula (6): quiet past the cold age (code 6).
    ColdAge,
    /// A learned backend produced the verdict; carries which one
    /// (codes 7+, one per backend).
    Learned(JudgeBackend),
}

impl JudgeRule {
    /// The stable numeric code (the pre-enum `rule: u8` values 0–6;
    /// learned verdicts take 7 and up, one code per backend).
    pub fn code(self) -> u8 {
        match self {
            JudgeRule::Normal => 0,
            JudgeRule::FilePressure => 1,
            JudgeRule::BlockBurst => 2,
            JudgeRule::WarmFraction => 3,
            JudgeRule::NodeOverload => 4,
            JudgeRule::Cooled => 5,
            JudgeRule::ColdAge => 6,
            JudgeRule::Learned(JudgeBackend::Rules) => 0,
            JudgeRule::Learned(JudgeBackend::QLearning) => 7,
            JudgeRule::Learned(JudgeBackend::Hmm) => 8,
        }
    }

    /// Which backend this verdict is attributed to. Formula variants
    /// are the rules backend; `Learned` carries its producer.
    pub fn backend(self) -> JudgeBackend {
        match self {
            JudgeRule::Learned(b) => b,
            _ => JudgeBackend::Rules,
        }
    }
}

/// What the judge needs to know about a file to classify it.
#[derive(Debug, Clone)]
pub struct FileSnapshot {
    /// Dense namespace id — the key the sharded control loop partitions
    /// and merges by (`id % shards`), and the sort key that keeps the
    /// judge pass in namespace-walk order.
    pub id: hdfs_sim::FileId,
    pub path: String,
    /// Current replication factor `r` of the file's data blocks.
    pub replication: usize,
    /// Data block ids; rendered to their client-trace names (`blk_N`)
    /// only at query time, so snapshotting a file allocates no strings.
    pub blocks: Vec<hdfs_sim::BlockId>,
    pub last_access: SimTime,
    /// Whether ERMS has boosted this file above the default factor.
    pub boosted: bool,
    /// Whether the file is already erasure-encoded.
    pub encoded: bool,
}

/// A classification result.
#[derive(Debug, Clone)]
pub struct Judgment {
    pub path: String,
    pub class: DataClass,
    /// Windowed access count `N_d`.
    pub n_d: f64,
    /// Largest windowed per-block count `N_b` seen while classifying
    /// (0 when Formula (1) short-circuited before the block scan).
    pub n_b_max: f64,
    /// Which formula (or learned backend) produced the verdict.
    pub rule: JudgeRule,
}

/// Lazy access to the windowed CEP aggregates a backend classifies
/// from.
///
/// The probe is *lazy* on purpose: the rules backend's Formula (1)
/// short-circuit — returning Hot before ever touching a block query —
/// is part of its trace contract (each `value_for` emits a `WindowEmit`
/// telemetry row), so the features cannot be computed eagerly on the
/// backends' behalf. Learned backends simply read everything.
pub trait CepProbe {
    /// Raw windowed open count for the file path (`N_d` *before* the
    /// per-block normalisation; divide by the block count to get
    /// whole-file accesses).
    fn file_accesses(&mut self, now: SimTime, path: &str) -> f64;

    /// Windowed access count for one block.
    fn block_accesses(&mut self, now: SimTime, block: hdfs_sim::BlockId) -> f64;
}

/// Per-tick meter readings the manager feeds reward-driven backends —
/// the storage/energy accounting the system already keeps, not new
/// instrumentation.
#[derive(Debug, Clone, Copy, Default)]
pub struct RewardMeters {
    /// Physical bytes on disk over `logical × default_r` (1.0 = no
    /// elastic overhead; boosts push it above 1).
    pub storage_overhead: f64,
    /// Powered-on fraction of the standby pool (0 when there is no
    /// pool) — the energy price of the boosts currently held.
    pub standby_on_frac: f64,
}

/// A judge backend the manager can drive through dyn dispatch.
///
/// Implementations must be deterministic per seed and must make their
/// decisions independent of visit order *within* a judge pass (the
/// manager classifies shard by shard but merges in `FileId` order; see
/// the crate docs). All learner state is part of
/// [`save_state`](checkpoint::Checkpointable::save_state) so resumes
/// are byte-identical.
pub trait JudgePolicy: checkpoint::Checkpointable {
    /// Which backend this is (verdict attribution and reporting).
    fn backend(&self) -> JudgeBackend;

    /// Classify one file. `fresh` is the manager's freshness-pattern
    /// flag for the path (the `create → open` correlation); `probe`
    /// reaches the windowed CEP aggregates.
    fn classify(
        &mut self,
        now: SimTime,
        file: &FileSnapshot,
        fresh: bool,
        probe: &mut dyn CepProbe,
    ) -> Judgment;

    /// Whether the manager should compute [`RewardMeters`] for this
    /// backend each tick. Defaults to `false` so the rules backend
    /// costs nothing extra.
    fn wants_reward(&self) -> bool {
        false
    }

    /// Start of a judge pass: the meters summarise the tick that just
    /// ended. Called once per tick, before any `classify`.
    fn begin_pass(&mut self, now: SimTime, meters: &RewardMeters) {
        let _ = (now, meters);
    }

    /// End of a judge pass, after the last `classify` of the tick.
    /// Learned backends apply their batched table updates here, in
    /// `FileId` order, so the table evolution is shard-count
    /// independent.
    fn end_pass(&mut self) {}

    /// Drop per-path learner state for a deleted file.
    fn forget_path(&mut self, path: &str) {
        let _ = path;
    }
}

/// SplitMix64 — the same mixer `simcore`'s RNG seeds with; used here to
/// derive per-`(pass, file)` exploration streams that are independent
/// of visit order.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_codes_are_wire_stable() {
        // the pre-enum u8 values, byte for byte
        assert_eq!(JudgeRule::Normal.code(), 0);
        assert_eq!(JudgeRule::FilePressure.code(), 1);
        assert_eq!(JudgeRule::BlockBurst.code(), 2);
        assert_eq!(JudgeRule::WarmFraction.code(), 3);
        assert_eq!(JudgeRule::NodeOverload.code(), 4);
        assert_eq!(JudgeRule::Cooled.code(), 5);
        assert_eq!(JudgeRule::ColdAge.code(), 6);
        assert_eq!(JudgeRule::Learned(JudgeBackend::QLearning).code(), 7);
        assert_eq!(JudgeRule::Learned(JudgeBackend::Hmm).code(), 8);
    }

    #[test]
    fn rules_attribute_to_their_backend() {
        assert_eq!(JudgeRule::FilePressure.backend(), JudgeBackend::Rules);
        assert_eq!(JudgeRule::Normal.backend(), JudgeBackend::Rules);
        assert_eq!(
            JudgeRule::Learned(JudgeBackend::Hmm).backend(),
            JudgeBackend::Hmm
        );
    }

    #[test]
    fn backend_labels_round_trip() {
        for b in [
            JudgeBackend::Rules,
            JudgeBackend::QLearning,
            JudgeBackend::Hmm,
        ] {
            assert_eq!(JudgeBackend::parse(b.as_str()), Some(b));
            assert_eq!(b.to_string(), b.as_str());
        }
        assert_eq!(JudgeBackend::parse("q"), Some(JudgeBackend::QLearning));
        assert_eq!(JudgeBackend::parse("oracle"), None);
    }
}
