//! Seeded tabular Q-learning judge.
//!
//! A contextual-bandit-with-bootstrapping judge over the discretized
//! feature space of [`crate::features`]: one row per state, four
//! actions — boost, hold, shed, encode — mapped onto the paper's
//! `DataClass` verdicts (the manager's gating still applies, so a
//! spurious boost of an idle file is a no-op task-wise).
//!
//! # Determinism and shard independence
//!
//! * Decisions during a judge pass read a table **frozen** at
//!   `begin_pass`; the `(s, a, r, s')` updates observed during the pass
//!   are queued and applied sorted by `FileId` in `end_pass`, so the
//!   table's evolution does not depend on the shard count or the shard
//!   visit order.
//! * Exploration randomness is not a sequential stream: each draw is
//!   derived by SplitMix64-mixing `(stream salt, pass index, file id)`,
//!   where the salt itself comes from a forked `DetRng` stream at
//!   construction. Same seed → same exploration, regardless of how
//!   many files exist or in which order shards run.
//! * Reward needs the *consequence* of an action, which is only
//!   observable at the file's next visit: `classify` settles the
//!   pending `(state, action)` recorded last time using the features it
//!   just read plus the per-tick [`RewardMeters`], then records a new
//!   pending pair.
//!
//! All learner state — table, visit counts, pending attributions, pass
//! counter — is checkpointed, so resume-equivalence holds byte-for-byte.

use crate::features::{Discretizer, Features, NUM_STATES};
use crate::{
    splitmix64, CepProbe, DataClass, FileSnapshot, JudgeBackend, JudgePolicy, JudgeRule, Judgment,
    RewardMeters,
};
use checkpoint::codec as c;
use checkpoint::{CheckpointError, Checkpointable, Value};
use simcore::rng::DetRng;
use simcore::SimTime;
use std::collections::BTreeMap;

/// The judge's action set. Order is the tie-break order for argmax and
/// the wire order of the Q-table, so it is append-only.
pub const NUM_ACTIONS: usize = 4;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Boost = 0,
    Hold = 1,
    Shed = 2,
    Encode = 3,
}

impl Action {
    fn from_index(i: usize) -> Action {
        match i {
            0 => Action::Boost,
            1 => Action::Hold,
            2 => Action::Shed,
            _ => Action::Encode,
        }
    }

    fn class(self) -> DataClass {
        match self {
            Action::Boost => DataClass::Hot,
            Action::Hold => DataClass::Normal,
            Action::Shed => DataClass::Cooled,
            Action::Encode => DataClass::Cold,
        }
    }
}

/// Hyper-parameters and feature fences for [`QLearningJudge`].
#[derive(Debug, Clone, Copy)]
pub struct QConfig {
    /// Bucket fences shared with the HMM judge.
    pub disc: Discretizer,
    /// Learning rate α.
    pub alpha: f64,
    /// Discount γ for the bootstrapped next-state value.
    pub gamma: f64,
    /// Initial exploration rate ε₀.
    pub epsilon: f64,
    /// Visit-count scale of the ε decay: ε(s) = ε₀ / (1 + visits(s)/k).
    pub epsilon_decay: f64,
    /// Reward weight on per-replica read pressure above the hot
    /// boundary (the latency-hit proxy).
    pub w_hit: f64,
    /// Reward weight on extra replicas held, scaled by the cluster's
    /// storage-overhead meter.
    pub w_storage: f64,
    /// Reward weight on extra replicas held while standby nodes are
    /// powered on (the energy price).
    pub w_energy: f64,
}

impl QConfig {
    /// Defaults tuned on the `prod-*` matrix: mild exploration with a
    /// fast per-state decay, storage/energy priced well below a real
    /// latency hit so the judge still boosts under pressure.
    pub fn new(disc: Discretizer) -> QConfig {
        QConfig {
            disc,
            alpha: 0.20,
            gamma: 0.60,
            epsilon: 0.08,
            epsilon_decay: 8.0,
            w_hit: 1.0,
            w_storage: 0.05,
            w_energy: 0.02,
        }
    }
}

/// A `(state, action)` awaiting its reward at the file's next visit.
#[derive(Debug, Clone, Copy)]
struct Pending {
    file: u64,
    state: usize,
    action: Action,
}

/// One settled transition, queued during a pass and applied in
/// `FileId` order at `end_pass`.
#[derive(Debug, Clone, Copy)]
struct Update {
    file: u64,
    state: usize,
    action: Action,
    reward: f64,
    next_state: usize,
}

/// Tabular Q-learning judge. See the module docs for the determinism
/// discipline.
pub struct QLearningJudge {
    cfg: QConfig,
    /// Row-major `NUM_STATES × NUM_ACTIONS` table.
    q: Vec<f64>,
    /// Per-state visit counts driving the ε decay.
    visits: Vec<u64>,
    /// Last `(state, action)` per path, settled at the next visit.
    pending: BTreeMap<String, Pending>,
    /// Judge passes seen (increments in `begin_pass`).
    passes: u64,
    /// Salt of the exploration stream, drawn from a forked `DetRng`.
    salt: u64,
    meters: RewardMeters,
    /// Transitions observed this pass; drained by `end_pass`.
    queue: Vec<Update>,
    /// States visited this pass (visit counts are frozen mid-pass).
    visit_queue: Vec<usize>,
}

impl QLearningJudge {
    /// Build with a warm-started table: in every state the action the
    /// paper's rules would take gets an optimistic prior, so before any
    /// learning the greedy policy is rules-shaped and exploration only
    /// has to *justify* deviations.
    pub fn new(cfg: QConfig, seed: u64) -> QLearningJudge {
        let mut root = DetRng::new(seed);
        let salt = root.fork(0x9_1ea7).gen_u64();
        let mut q = vec![0.0f64; NUM_STATES * NUM_ACTIONS];
        for s in 0..NUM_STATES {
            let prior = Self::rules_action(&cfg.disc, s);
            q[s * NUM_ACTIONS + prior as usize] = 1.0;
        }
        QLearningJudge {
            cfg,
            q,
            visits: vec![0; NUM_STATES],
            pending: BTreeMap::new(),
            passes: 0,
            salt,
            meters: RewardMeters::default(),
            queue: Vec::new(),
            visit_queue: Vec::new(),
        }
    }

    /// The action Formulas (1)–(6) would take in a given discrete
    /// state (the warm-start prior).
    fn rules_action(_disc: &Discretizer, state: usize) -> Action {
        use crate::features::{AGE_BUCKETS, BLOCK_BUCKETS, FRESH_BUCKETS, REPL_BUCKETS};
        let age = state % AGE_BUCKETS;
        let repl = (state / AGE_BUCKETS) % REPL_BUCKETS;
        let _fresh = (state / (AGE_BUCKETS * REPL_BUCKETS)) % FRESH_BUCKETS;
        let block = (state / (AGE_BUCKETS * REPL_BUCKETS * FRESH_BUCKETS)) % BLOCK_BUCKETS;
        let pressure = state / (AGE_BUCKETS * REPL_BUCKETS * FRESH_BUCKETS * BLOCK_BUCKETS);
        if pressure >= 4 || block == 3 {
            Action::Boost
        } else if repl >= 1 && pressure <= 2 {
            Action::Shed
        } else if pressure <= 1 && age >= 2 {
            Action::Encode
        } else {
            Action::Hold
        }
    }

    /// A uniform `[0, 1)` draw derived from `(salt, pass, file, lane)`
    /// — stateless, so independent of visit order.
    fn draw(&self, file: u64, lane: u64) -> f64 {
        let z = splitmix64(
            self.salt
                ^ splitmix64(self.passes.wrapping_mul(0xA076_1D64_78BD_642F))
                ^ splitmix64(file.wrapping_add(lane.wrapping_mul(0xE703_7ED1_A0B4_28DB))),
        );
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn greedy(&self, state: usize) -> Action {
        let row = &self.q[state * NUM_ACTIONS..(state + 1) * NUM_ACTIONS];
        let mut best = 0usize;
        for (i, v) in row.iter().enumerate().skip(1) {
            if *v > row[best] {
                best = i;
            }
        }
        Action::from_index(best)
    }

    /// Reward for the previously chosen action, observed through the
    /// file's *next-visit* features plus the cluster meters: read
    /// pressure above the hot boundary is the latency hit; replicas
    /// held above the default are priced in storage (scaled by how
    /// much overhead the cluster already carries) and in energy (scaled
    /// by the powered-on standby fraction).
    fn reward(&self, f: &Features) -> f64 {
        let overload = (f.pressure - 1.0).clamp(0.0, 4.0);
        let extra = f
            .replication
            .saturating_sub(self.cfg.disc.default_replication) as f64
            / self.cfg.disc.default_replication.max(1) as f64;
        -self.cfg.w_hit * overload
            - self.cfg.w_storage * extra * self.meters.storage_overhead.max(1.0)
            - self.cfg.w_energy * extra * self.meters.standby_on_frac
    }

    #[cfg(test)]
    fn q_at(&self, state: usize, action: usize) -> f64 {
        self.q[state * NUM_ACTIONS + action]
    }
}

impl JudgePolicy for QLearningJudge {
    fn backend(&self) -> JudgeBackend {
        JudgeBackend::QLearning
    }

    fn wants_reward(&self) -> bool {
        true
    }

    fn begin_pass(&mut self, _now: SimTime, meters: &RewardMeters) {
        self.passes += 1;
        self.meters = *meters;
    }

    fn classify(
        &mut self,
        now: SimTime,
        file: &FileSnapshot,
        fresh: bool,
        probe: &mut dyn CepProbe,
    ) -> Judgment {
        let d = &self.cfg.disc;
        let feats = Features::observe(probe, now, file, fresh, d.tau_hot, d.block_burst);
        let state = d.state(&feats);

        // Settle the previous visit's action with what we can see now.
        if let Some(prev) = self.pending.get(&file.path).copied() {
            self.queue.push(Update {
                file: file.id.0,
                state: prev.state,
                action: prev.action,
                reward: self.reward(&feats),
                next_state: state,
            });
        }

        // ε-greedy on the frozen table.
        let eps = self.cfg.epsilon / (1.0 + self.visits[state] as f64 / self.cfg.epsilon_decay);
        let action = if self.draw(file.id.0, 0) < eps {
            Action::from_index(
                (self.draw(file.id.0, 1) * NUM_ACTIONS as f64) as usize % NUM_ACTIONS,
            )
        } else {
            self.greedy(state)
        };

        self.pending.insert(
            file.path.clone(),
            Pending {
                file: file.id.0,
                state,
                action,
            },
        );
        self.visit_queue.push(state);

        Judgment {
            path: file.path.clone(),
            class: action.class(),
            n_d: feats.n_d,
            n_b_max: feats.n_b_max,
            rule: JudgeRule::Learned(JudgeBackend::QLearning),
        }
    }

    fn end_pass(&mut self) {
        // FileId order, not visit order: the Q-update sequence (which
        // matters — updates compose) is pinned to the namespace, so it
        // cannot depend on the shard count.
        self.queue.sort_by_key(|u| u.file);
        for u in self.queue.drain(..) {
            let next_best = {
                let row = &self.q[u.next_state * NUM_ACTIONS..(u.next_state + 1) * NUM_ACTIONS];
                row.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            };
            let cell = &mut self.q[u.state * NUM_ACTIONS + u.action as usize];
            *cell += self.cfg.alpha * (u.reward + self.cfg.gamma * next_best - *cell);
        }
        for s in self.visit_queue.drain(..) {
            self.visits[s] += 1;
        }
    }

    fn forget_path(&mut self, path: &str) {
        self.pending.remove(path);
    }
}

impl Checkpointable for QLearningJudge {
    fn save_state(&self) -> Value {
        // The table is stored sparsely as diffs against the warm-start
        // prior: most of the 768×4 cells never leave their init value,
        // so snapshots stay small.
        let mut q_diff = Vec::new();
        for (i, &v) in self.q.iter().enumerate() {
            let s = i / NUM_ACTIONS;
            let init: f64 = if Self::rules_action(&self.cfg.disc, s) as usize == i % NUM_ACTIONS {
                1.0
            } else {
                0.0
            };
            if v.to_bits() != init.to_bits() {
                q_diff.push(Value::Seq(vec![Value::U64(i as u64), c::f64_bits(v)]));
            }
        }
        let visits = self
            .visits
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| Value::Seq(vec![Value::U64(i as u64), Value::U64(n)]))
            .collect();
        let pending = self
            .pending
            .iter()
            .map(|(path, p)| {
                c::MapBuilder::new()
                    .str("path", path)
                    .u64("file", p.file)
                    .u64("state", p.state as u64)
                    .u64("action", p.action as u64)
                    .build()
            })
            .collect();
        c::MapBuilder::new()
            .u64("passes", self.passes)
            .u64("salt", self.salt)
            .f64b("m_storage", self.meters.storage_overhead)
            .f64b("m_energy", self.meters.standby_on_frac)
            .put("q", Value::Seq(q_diff))
            .seq("visits", visits)
            .seq("pending", pending)
            .build()
    }

    fn load_state(&mut self, state: &Value) -> Result<(), CheckpointError> {
        let passes = c::get_u64(state, "passes")?;
        let salt = c::get_u64(state, "salt")?;
        let m_storage = c::get_f64b(state, "m_storage")?;
        let m_energy = c::get_f64b(state, "m_energy")?;
        let mut q = vec![0.0f64; NUM_STATES * NUM_ACTIONS];
        for s in 0..NUM_STATES {
            q[s * NUM_ACTIONS + Self::rules_action(&self.cfg.disc, s) as usize] = 1.0;
        }
        for entry in c::get_seq(state, "q")? {
            let pair = c::as_seq(entry, "q[]")?;
            if pair.len() != 2 {
                return Err(CheckpointError::TypeMismatch {
                    field: "q[]".to_string(),
                    expected: "[index, bits] pair",
                });
            }
            let i = c::as_u64(&pair[0], "q[].index")? as usize;
            if i >= q.len() {
                return Err(CheckpointError::TypeMismatch {
                    field: "q[].index".to_string(),
                    expected: "index within table",
                });
            }
            q[i] = c::as_f64_bits(&pair[1], "q[].bits")?;
        }
        let mut visits = vec![0u64; NUM_STATES];
        for entry in c::get_seq(state, "visits")? {
            let pair = c::as_seq(entry, "visits[]")?;
            if pair.len() != 2 {
                return Err(CheckpointError::TypeMismatch {
                    field: "visits[]".to_string(),
                    expected: "[state, count] pair",
                });
            }
            let i = c::as_u64(&pair[0], "visits[].state")? as usize;
            if i >= visits.len() {
                return Err(CheckpointError::TypeMismatch {
                    field: "visits[].state".to_string(),
                    expected: "state within table",
                });
            }
            visits[i] = c::as_u64(&pair[1], "visits[].count")?;
        }
        let mut pending = BTreeMap::new();
        for entry in c::get_seq(state, "pending")? {
            let action = c::get_u64(entry, "action")? as usize;
            if action >= NUM_ACTIONS {
                return Err(CheckpointError::TypeMismatch {
                    field: "pending[].action".to_string(),
                    expected: "action index",
                });
            }
            let st = c::get_u64(entry, "state")? as usize;
            if st >= NUM_STATES {
                return Err(CheckpointError::TypeMismatch {
                    field: "pending[].state".to_string(),
                    expected: "state within table",
                });
            }
            pending.insert(
                c::get_str(entry, "path")?.to_string(),
                Pending {
                    file: c::get_u64(entry, "file")?,
                    state: st,
                    action: Action::from_index(action),
                },
            );
        }
        self.passes = passes;
        self.salt = salt;
        self.meters = RewardMeters {
            storage_overhead: m_storage,
            standby_on_frac: m_energy,
        };
        self.q = q;
        self.visits = visits;
        self.pending = pending;
        self.queue.clear();
        self.visit_queue.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdfs_sim::{BlockId, FileId};
    use simcore::SimDuration;

    struct FakeProbe {
        opens: f64,
        per_block: f64,
    }

    impl CepProbe for FakeProbe {
        fn file_accesses(&mut self, _now: SimTime, _path: &str) -> f64 {
            self.opens
        }
        fn block_accesses(&mut self, _now: SimTime, _block: BlockId) -> f64 {
            self.per_block
        }
    }

    fn disc() -> Discretizer {
        Discretizer {
            tau_hot: 4.0,
            block_burst: 6.0,
            block_warm: 3.0,
            tau_cooled: 2.0,
            tau_cold: 0.5,
            window_secs: 600.0,
            cold_age_secs: 1800.0,
            default_replication: 3,
        }
    }

    fn snap(id: u64, path: &str, repl: usize, last: SimTime) -> FileSnapshot {
        FileSnapshot {
            id: FileId(id),
            path: path.to_string(),
            replication: repl,
            blocks: vec![BlockId(id * 10)],
            last_access: last,
            boosted: repl > 3,
            encoded: false,
        }
    }

    fn judge() -> QLearningJudge {
        QLearningJudge::new(QConfig::new(disc()), 42)
    }

    #[test]
    fn warm_start_matches_the_rules_shape() {
        // greedy-only so the test sees the prior, not an exploration draw
        let mut cfg = QConfig::new(disc());
        cfg.epsilon = 0.0;
        let mut j = QLearningJudge::new(cfg, 42);
        let now = SimTime::from_secs(1000);
        j.begin_pass(now, &RewardMeters::default());
        let hot = snap(1, "/hot", 3, now);
        let mut p = FakeProbe {
            opens: 100.0,
            per_block: 0.0,
        };
        let v = j.classify(now, &hot, false, &mut p);
        assert_eq!(v.class, DataClass::Hot);
        assert_eq!(v.rule, JudgeRule::Learned(JudgeBackend::QLearning));
        // a long-idle unboosted file encodes
        let cold = snap(2, "/cold", 3, SimTime::from_secs(0));
        let now2 = SimTime::from_secs(5000);
        let mut p0 = FakeProbe {
            opens: 0.0,
            per_block: 0.0,
        };
        let v = j.classify(now2, &cold, false, &mut p0);
        assert_eq!(v.class, DataClass::Cold);
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = || {
            let mut j = judge();
            let mut out = Vec::new();
            let mut t = SimTime::from_secs(0);
            for pass in 0..30u64 {
                t += SimDuration::from_secs(60);
                j.begin_pass(
                    t,
                    &RewardMeters {
                        storage_overhead: 1.1,
                        standby_on_frac: 0.5,
                    },
                );
                for id in 0..8u64 {
                    let f = snap(id, &format!("/f{id}"), 3, t);
                    let mut p = FakeProbe {
                        opens: ((id + pass) % 5) as f64 * 10.0,
                        per_block: 0.0,
                    };
                    let v = j.classify(t, &f, id % 3 == 0, &mut p);
                    out.push(format!("{}:{:?}", v.path, v.class));
                }
                j.end_pass();
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn decisions_do_not_depend_on_visit_order_within_a_pass() {
        let run = |rev: bool| {
            let mut j = judge();
            let mut out = Vec::new();
            let mut t = SimTime::from_secs(0);
            for pass in 0..10u64 {
                t += SimDuration::from_secs(60);
                j.begin_pass(t, &RewardMeters::default());
                let mut ids: Vec<u64> = (0..6).collect();
                if rev {
                    ids.reverse();
                }
                let mut vs = Vec::new();
                for id in ids {
                    let f = snap(id, &format!("/f{id}"), 3, t);
                    let mut p = FakeProbe {
                        opens: ((id * 7 + pass) % 6) as f64 * 8.0,
                        per_block: 0.0,
                    };
                    let v = j.classify(t, &f, false, &mut p);
                    vs.push((id, format!("{:?}", v.class)));
                }
                vs.sort();
                out.push(vs);
                j.end_pass();
            }
            out
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn overload_penalty_drives_the_boosted_cell_up_relative_to_hold() {
        let mut j = judge();
        let d = disc();
        let mut t = SimTime::from_secs(0);
        // hammer one file hard; its state is the over-pressure bucket
        let hot_state = {
            let f = Features {
                n_d: 120.0,
                n_b_max: 0.0,
                pressure: 120.0 / (3.0 * 4.0),
                fresh: false,
                replication: 3,
                age_secs: 0.0,
            };
            d.state(&f)
        };
        let before_hold = j.q_at(hot_state, Action::Hold as usize);
        for _ in 0..40 {
            t += SimDuration::from_secs(60);
            j.begin_pass(t, &RewardMeters::default());
            let f = snap(1, "/hammer", 3, t);
            let mut p = FakeProbe {
                opens: 120.0,
                per_block: 0.0,
            };
            j.classify(t, &f, false, &mut p);
            j.end_pass();
        }
        // staying at pressure is penalised: whatever was learned, the
        // hold cell in the hot state must have gone down from its init.
        assert!(j.q_at(hot_state, Action::Hold as usize) <= before_hold);
    }

    #[test]
    fn checkpoint_round_trip_is_exact() {
        let mut j = judge();
        let mut t = SimTime::from_secs(0);
        for pass in 0..15u64 {
            t += SimDuration::from_secs(60);
            j.begin_pass(
                t,
                &RewardMeters {
                    storage_overhead: 1.2,
                    standby_on_frac: 0.25,
                },
            );
            for id in 0..5u64 {
                let f = snap(id, &format!("/f{id}"), 3, t);
                let mut p = FakeProbe {
                    opens: ((id + pass) % 4) as f64 * 12.0,
                    per_block: 2.0,
                };
                j.classify(t, &f, false, &mut p);
            }
            j.end_pass();
        }
        let saved = j.save_state();
        let mut fresh = judge();
        fresh.load_state(&saved).unwrap();
        assert_eq!(j.passes, fresh.passes);
        assert_eq!(j.salt, fresh.salt);
        for i in 0..j.q.len() {
            assert_eq!(j.q[i].to_bits(), fresh.q[i].to_bits(), "q[{i}]");
        }
        assert_eq!(j.visits, fresh.visits);
        assert_eq!(j.pending.len(), fresh.pending.len());
        // and the hydrated judge keeps making the same decisions
        t += SimDuration::from_secs(60);
        j.begin_pass(t, &RewardMeters::default());
        fresh.begin_pass(t, &RewardMeters::default());
        for id in 0..5u64 {
            let f = snap(id, &format!("/f{id}"), 3, t);
            let mut p1 = FakeProbe {
                opens: 30.0,
                per_block: 0.0,
            };
            let mut p2 = FakeProbe {
                opens: 30.0,
                per_block: 0.0,
            };
            let a = j.classify(t, &f, false, &mut p1);
            let b = fresh.classify(t, &f, false, &mut p2);
            assert_eq!(a.class, b.class);
        }
    }

    #[test]
    fn forgetting_a_path_drops_its_pending_attribution() {
        let mut j = judge();
        let t = SimTime::from_secs(60);
        j.begin_pass(t, &RewardMeters::default());
        let f = snap(1, "/gone", 3, t);
        let mut p = FakeProbe {
            opens: 5.0,
            per_block: 0.0,
        };
        j.classify(t, &f, false, &mut p);
        assert!(j.pending.contains_key("/gone"));
        j.forget_path("/gone");
        assert!(!j.pending.contains_key("/gone"));
    }

    #[test]
    fn load_rejects_out_of_range_indices() {
        let mut j = judge();
        let mut saved = j.save_state();
        // corrupt: a q index beyond the table
        if let Value::Map(entries) = &mut saved {
            for (k, v) in entries.iter_mut() {
                if k == "q" {
                    *v = Value::Seq(vec![Value::Seq(vec![
                        Value::U64(10_000_000),
                        c::f64_bits(1.0),
                    ])]);
                }
            }
        }
        assert!(j.load_state(&saved).is_err());
    }
}
