//! Hidden-Markov hot/cold judge.
//!
//! Three hidden states — Cold, Warm, Hot — with fixed, hand-set
//! transition and emission matrices (no Baum–Welch re-estimation: the
//! matrices are part of the model, only the per-file posterior is
//! learner state). Each judge pass contributes one observation per
//! file: its per-replica demand pressure, bucketed on the same
//! cold/cooled/hot fences the rules use. The posterior is advanced by
//! forward filtering,
//!
//! ```text
//! b' ∝ E[:, o] ⊙ (Tᵀ b)
//! ```
//!
//! and the verdict follows the decoded (argmax) state: decoded Hot →
//! boost; a boosted file whose demand fell below the cooled bound →
//! shed; decoded Cold past the cold age → encode; otherwise Normal.
//!
//! The sticky transitions are the point of using an HMM at all: a
//! single bursty window is enough evidence to enter Hot (the Hot column
//! of the emission matrix is lopsided), but a single quiet window is
//! *not* enough to leave it — demand has to stay low for a few passes
//! before the posterior drains back through Warm, which debounces
//! boost/shed flapping that threshold rules are prone to.
//!
//! Each file's belief depends only on that file's own observation
//! stream, so the backend is trivially visit-order independent and
//! needs no RNG; determinism is plain IEEE-754 arithmetic.

use crate::features::{Discretizer, Features};
use crate::{
    CepProbe, DataClass, FileSnapshot, JudgeBackend, JudgePolicy, JudgeRule, Judgment, RewardMeters,
};
use checkpoint::codec as c;
use checkpoint::{CheckpointError, Checkpointable, Value};
use simcore::SimTime;
use std::collections::BTreeMap;

const NUM_HIDDEN: usize = 3;
const NUM_OBS: usize = 4;

const COLD: usize = 0;
const WARM: usize = 1;
const HOT: usize = 2;

/// Row-stochastic transition matrix `T[from][to]`. Diagonal-heavy so
/// state changes need sustained evidence.
const TRANSITION: [[f64; NUM_HIDDEN]; NUM_HIDDEN] = [
    [0.90, 0.09, 0.01], // Cold
    [0.10, 0.80, 0.10], // Warm
    [0.02, 0.18, 0.80], // Hot
];

/// Emission matrix `E[state][obs]` over the four demand buckets
/// (idle, low, medium, burst). Hot is lopsided toward burst so one
/// bursty window flips the decode; Warm owns the medium bucket so
/// moderate demand does not boost.
const EMISSION: [[f64; NUM_OBS]; NUM_HIDDEN] = [
    [0.850, 0.120, 0.025, 0.005], // Cold
    [0.250, 0.350, 0.350, 0.050], // Warm
    [0.200, 0.150, 0.150, 0.500], // Hot
];

/// Prior belief for a file never seen before (mostly cold, as fresh
/// namespaces are).
const PRIOR: [f64; NUM_HIDDEN] = [0.60, 0.30, 0.10];

/// Configuration for [`HmmJudge`] — just the shared feature fences;
/// the matrices are part of the model.
#[derive(Debug, Clone, Copy)]
pub struct HmmConfig {
    pub disc: Discretizer,
}

impl HmmConfig {
    pub fn new(disc: Discretizer) -> HmmConfig {
        HmmConfig { disc }
    }
}

/// Forward-filtering hot/cold classifier. See the module docs.
pub struct HmmJudge {
    cfg: HmmConfig,
    /// Per-file posterior over {Cold, Warm, Hot}.
    beliefs: BTreeMap<String, [f64; NUM_HIDDEN]>,
}

impl HmmJudge {
    pub fn new(cfg: HmmConfig) -> HmmJudge {
        HmmJudge {
            cfg,
            beliefs: BTreeMap::new(),
        }
    }

    /// Demand observation: per-replica pressure bucketed on the rules'
    /// cold/cooled/hot fences (`1.0` = the hot boundary).
    fn observation(&self, pressure: f64) -> usize {
        let d = &self.cfg.disc;
        let cold = d.tau_cold / d.tau_hot;
        let cooled = d.tau_cooled / d.tau_hot;
        if pressure < cold {
            0
        } else if pressure < cooled {
            1
        } else if pressure <= 1.0 {
            2
        } else {
            3
        }
    }

    /// One forward-filter step: predict through `T`, reweigh by the
    /// observation likelihood, renormalise.
    fn advance(belief: &[f64; NUM_HIDDEN], obs: usize) -> [f64; NUM_HIDDEN] {
        let mut next = [0.0f64; NUM_HIDDEN];
        for (to, slot) in next.iter_mut().enumerate() {
            let mut pred = 0.0;
            for from in 0..NUM_HIDDEN {
                pred += TRANSITION[from][to] * belief[from];
            }
            *slot = EMISSION[to][obs] * pred;
        }
        let norm: f64 = next.iter().sum();
        if norm > 0.0 {
            for slot in &mut next {
                *slot /= norm;
            }
        } else {
            next = PRIOR;
        }
        next
    }

    fn decode(belief: &[f64; NUM_HIDDEN]) -> usize {
        let mut best = 0;
        for s in 1..NUM_HIDDEN {
            if belief[s] > belief[best] {
                best = s;
            }
        }
        best
    }

    #[cfg(test)]
    fn belief(&self, path: &str) -> Option<[f64; NUM_HIDDEN]> {
        self.beliefs.get(path).copied()
    }
}

impl JudgePolicy for HmmJudge {
    fn backend(&self) -> JudgeBackend {
        JudgeBackend::Hmm
    }

    fn classify(
        &mut self,
        now: SimTime,
        file: &FileSnapshot,
        fresh: bool,
        probe: &mut dyn CepProbe,
    ) -> Judgment {
        let d = &self.cfg.disc;
        let feats = Features::observe(probe, now, file, fresh, d.tau_hot, d.block_burst);
        // A fresh-spike pattern counts as at least medium demand even
        // before the window fills — the create→open correlation is the
        // paper's early-boost signal.
        let obs = self
            .observation(feats.pressure)
            .max(if feats.fresh { 2 } else { 0 });

        let prev = self.beliefs.get(&file.path).copied().unwrap_or(PRIOR);
        let belief = Self::advance(&prev, obs);
        self.beliefs.insert(file.path.clone(), belief);

        let r = file.replication.max(1) as f64;
        let per_replica = feats.n_d / r;
        let decoded = Self::decode(&belief);
        let class = if decoded == HOT {
            DataClass::Hot
        } else if file.boosted && per_replica < d.tau_cooled {
            DataClass::Cooled
        } else if decoded == COLD
            && !file.encoded
            && per_replica < d.tau_cold
            && feats.age_secs > d.cold_age_secs
        {
            DataClass::Cold
        } else {
            DataClass::Normal
        };

        Judgment {
            path: file.path.clone(),
            class,
            n_d: feats.n_d,
            n_b_max: feats.n_b_max,
            rule: JudgeRule::Learned(JudgeBackend::Hmm),
        }
    }

    fn begin_pass(&mut self, _now: SimTime, _meters: &RewardMeters) {}

    fn forget_path(&mut self, path: &str) {
        self.beliefs.remove(path);
    }
}

impl Checkpointable for HmmJudge {
    fn save_state(&self) -> Value {
        let beliefs = self
            .beliefs
            .iter()
            .map(|(path, b)| {
                c::MapBuilder::new()
                    .str("path", path)
                    .f64b("cold", b[COLD])
                    .f64b("warm", b[WARM])
                    .f64b("hot", b[HOT])
                    .build()
            })
            .collect();
        c::MapBuilder::new().seq("beliefs", beliefs).build()
    }

    fn load_state(&mut self, state: &Value) -> Result<(), CheckpointError> {
        let mut beliefs = BTreeMap::new();
        for entry in c::get_seq(state, "beliefs")? {
            beliefs.insert(
                c::get_str(entry, "path")?.to_string(),
                [
                    c::get_f64b(entry, "cold")?,
                    c::get_f64b(entry, "warm")?,
                    c::get_f64b(entry, "hot")?,
                ],
            );
        }
        self.beliefs = beliefs;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdfs_sim::{BlockId, FileId};
    use simcore::SimDuration;

    struct FakeProbe {
        opens: f64,
        per_block: f64,
    }

    impl CepProbe for FakeProbe {
        fn file_accesses(&mut self, _now: SimTime, _path: &str) -> f64 {
            self.opens
        }
        fn block_accesses(&mut self, _now: SimTime, _block: BlockId) -> f64 {
            self.per_block
        }
    }

    fn disc() -> Discretizer {
        Discretizer {
            tau_hot: 4.0,
            block_burst: 6.0,
            block_warm: 3.0,
            tau_cooled: 2.0,
            tau_cold: 0.5,
            window_secs: 600.0,
            cold_age_secs: 1800.0,
            default_replication: 3,
        }
    }

    fn judge() -> HmmJudge {
        HmmJudge::new(HmmConfig::new(disc()))
    }

    fn snap(id: u64, path: &str, repl: usize, last: SimTime) -> FileSnapshot {
        FileSnapshot {
            id: FileId(id),
            path: path.to_string(),
            replication: repl,
            blocks: vec![BlockId(id * 10)],
            last_access: last,
            boosted: repl > 3,
            encoded: false,
        }
    }

    #[test]
    fn matrices_are_row_stochastic() {
        for row in TRANSITION {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        for row in EMISSION {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        assert!((PRIOR.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn a_single_burst_decodes_hot() {
        let mut j = judge();
        let now = SimTime::from_secs(600);
        let f = snap(1, "/burst", 3, now);
        let mut p = FakeProbe {
            opens: 100.0, // pressure 100/12 ≫ 1
            per_block: 0.0,
        };
        let v = j.classify(now, &f, false, &mut p);
        assert_eq!(v.class, DataClass::Hot);
        assert_eq!(v.rule, JudgeRule::Learned(JudgeBackend::Hmm));
    }

    #[test]
    fn medium_demand_stays_normal() {
        let mut j = judge();
        let now = SimTime::from_secs(600);
        let f = snap(1, "/warm", 3, now);
        // pressure 9/12 = 0.75: above cooled, below hot
        let mut p = FakeProbe {
            opens: 9.0,
            per_block: 0.0,
        };
        let v = j.classify(now, &f, false, &mut p);
        assert_eq!(v.class, DataClass::Normal);
    }

    #[test]
    fn leaving_hot_takes_sustained_quiet() {
        let mut j = judge();
        let mut t = SimTime::from_secs(600);
        let mut p = FakeProbe {
            opens: 100.0,
            per_block: 0.0,
        };
        let f = snap(1, "/f", 3, t);
        assert_eq!(j.classify(t, &f, false, &mut p).class, DataClass::Hot);
        // demand disappears; the first quiet window must NOT drop the
        // decode out of Hot (that is the debounce)
        let mut quiet = FakeProbe {
            opens: 0.0,
            per_block: 0.0,
        };
        t += SimDuration::from_secs(60);
        let f = snap(1, "/f", 3, t);
        let first = j.classify(t, &f, false, &mut quiet).class;
        assert_eq!(first, DataClass::Hot, "one quiet window should not unboost");
        // but several quiet windows drain the posterior
        let mut last = first;
        for _ in 0..6 {
            t += SimDuration::from_secs(60);
            let f = snap(1, "/f", 3, t);
            last = j.classify(t, &f, false, &mut quiet).class;
        }
        assert_ne!(last, DataClass::Hot);
    }

    #[test]
    fn boosted_file_with_fallen_demand_sheds() {
        let mut j = judge();
        let mut t = SimTime::from_secs(600);
        let mut p = FakeProbe {
            opens: 100.0,
            per_block: 0.0,
        };
        let f = snap(1, "/f", 9, t);
        j.classify(t, &f, false, &mut p);
        let mut quiet = FakeProbe {
            opens: 0.0,
            per_block: 0.0,
        };
        let mut classes = Vec::new();
        for _ in 0..8 {
            t += SimDuration::from_secs(60);
            let f = snap(1, "/f", 9, t);
            classes.push(j.classify(t, &f, false, &mut quiet).class);
        }
        assert!(
            classes.contains(&DataClass::Cooled),
            "a boosted, quiet file must eventually judge Cooled: {classes:?}"
        );
    }

    #[test]
    fn long_idle_decodes_cold_for_encoding() {
        let mut j = judge();
        let mut t = SimTime::from_secs(600);
        let created = SimTime::from_secs(0);
        let mut quiet = FakeProbe {
            opens: 0.0,
            per_block: 0.0,
        };
        let mut last = DataClass::Normal;
        for _ in 0..10 {
            t += SimDuration::from_secs(600);
            let f = snap(1, "/idle", 3, created);
            last = j.classify(t, &f, false, &mut quiet).class;
        }
        assert_eq!(last, DataClass::Cold);
    }

    #[test]
    fn fresh_spike_counts_as_demand_evidence() {
        let mut a = judge();
        let mut b = judge();
        let now = SimTime::from_secs(600);
        let f = snap(1, "/new", 3, now);
        let mut p1 = FakeProbe {
            opens: 0.0,
            per_block: 0.0,
        };
        let mut p2 = FakeProbe {
            opens: 0.0,
            per_block: 0.0,
        };
        a.classify(now, &f, true, &mut p1);
        b.classify(now, &f, false, &mut p2);
        let ba = a.belief("/new").unwrap();
        let bb = b.belief("/new").unwrap();
        assert!(ba[HOT] > bb[HOT], "freshness must raise the hot belief");
    }

    #[test]
    fn checkpoint_round_trip_is_bit_exact() {
        let mut j = judge();
        let mut t = SimTime::from_secs(600);
        for i in 0..20u64 {
            t += SimDuration::from_secs(60);
            let f = snap(i % 4, &format!("/f{}", i % 4), 3, t);
            let mut p = FakeProbe {
                opens: (i % 7) as f64 * 15.0,
                per_block: 1.0,
            };
            j.classify(t, &f, false, &mut p);
        }
        let saved = j.save_state();
        let mut fresh = judge();
        fresh.load_state(&saved).unwrap();
        assert_eq!(j.beliefs.len(), fresh.beliefs.len());
        for (path, b) in &j.beliefs {
            let fb = fresh.beliefs.get(path).unwrap();
            for s in 0..NUM_HIDDEN {
                assert_eq!(b[s].to_bits(), fb[s].to_bits(), "{path}[{s}]");
            }
        }
    }

    #[test]
    fn forgetting_a_path_resets_its_belief() {
        let mut j = judge();
        let now = SimTime::from_secs(600);
        let f = snap(1, "/gone", 3, now);
        let mut p = FakeProbe {
            opens: 50.0,
            per_block: 0.0,
        };
        j.classify(now, &f, false, &mut p);
        assert!(j.belief("/gone").is_some());
        j.forget_path("/gone");
        assert!(j.belief("/gone").is_none());
    }
}
