//! Shared feature extraction and discretization for learned judges.
//!
//! Both learned backends see the same per-file observation: the
//! windowed whole-file access count `N_d`, the hottest block's windowed
//! count `N_b_max`, the freshness-pattern flag, the current replication
//! factor and the time since last access. The [`Discretizer`] folds
//! those into a small state index for the Q-table (768 states) and a
//! four-level demand observation for the HMM, with bucket fences
//! derived from the same τ/M thresholds the rules use — so a learned
//! judge and the rules judge disagree on *policy*, never on what they
//! observed.

use crate::{CepProbe, FileSnapshot};
use simcore::SimTime;

/// One file's observation, already normalised the way the rules
/// normalise (per-block `N_d`, per-replica pressure).
#[derive(Debug, Clone, Copy)]
pub struct Features {
    /// Whole-file windowed accesses (raw opens / block count).
    pub n_d: f64,
    /// Hottest block's windowed count.
    pub n_b_max: f64,
    /// Combined per-replica pressure, normalised so `1.0` is exactly
    /// the rules' hot boundary: `max(N_d/(r·τ_M), N_b_max/(r·M_M))`.
    pub pressure: f64,
    /// The `create → open` freshness-pattern flag.
    pub fresh: bool,
    pub replication: usize,
    pub age_secs: f64,
}

impl Features {
    /// Read one file's features through the probe. Learned backends
    /// always scan every block (no Formula (1) short-circuit — they
    /// have no formulas), which is what makes their per-file belief
    /// and table updates independent of anything but the file itself.
    pub fn observe(
        probe: &mut dyn CepProbe,
        now: SimTime,
        file: &FileSnapshot,
        fresh: bool,
        tau_hot: f64,
        block_burst: f64,
    ) -> Features {
        let r = file.replication.max(1) as f64;
        let raw_opens = probe.file_accesses(now, &file.path);
        let n_d = raw_opens / file.blocks.len().max(1) as f64;
        let mut n_b_max = 0.0f64;
        for &b in &file.blocks {
            n_b_max = n_b_max.max(probe.block_accesses(now, b));
        }
        let pressure = (n_d / (r * tau_hot)).max(n_b_max / (r * block_burst));
        Features {
            n_d,
            n_b_max,
            pressure,
            fresh,
            replication: file.replication,
            age_secs: now.since(file.last_access).as_secs_f64(),
        }
    }
}

/// Bucket fences for the Q-state space, derived from the rule
/// thresholds so the learned state space is aligned with the decision
/// boundaries that matter.
#[derive(Debug, Clone, Copy)]
pub struct Discretizer {
    pub tau_hot: f64,
    pub block_burst: f64,
    pub block_warm: f64,
    pub tau_cooled: f64,
    pub tau_cold: f64,
    pub window_secs: f64,
    pub cold_age_secs: f64,
    pub default_replication: usize,
}

/// Bucket counts: pressure × hot-block × fresh × extra-replicas × age.
pub const PRESSURE_BUCKETS: usize = 6;
pub const BLOCK_BUCKETS: usize = 4;
pub const FRESH_BUCKETS: usize = 2;
pub const REPL_BUCKETS: usize = 4;
pub const AGE_BUCKETS: usize = 4;

/// Total number of discrete states.
pub const NUM_STATES: usize =
    PRESSURE_BUCKETS * BLOCK_BUCKETS * FRESH_BUCKETS * REPL_BUCKETS * AGE_BUCKETS;

impl Discretizer {
    /// Per-replica pressure bucket. Fences sit on the rules'
    /// cold/cooled/hot boundaries (normalised by τ_M), so states
    /// separate exactly where the decision should flip.
    pub fn pressure_bucket(&self, pressure: f64) -> usize {
        let cold = self.tau_cold / self.tau_hot;
        let cooled = self.tau_cooled / self.tau_hot;
        if pressure <= 0.0 {
            0
        } else if pressure < cold {
            1
        } else if pressure < cooled {
            2
        } else if pressure <= 1.0 {
            3
        } else if pressure <= 2.0 {
            4
        } else {
            5
        }
    }

    /// Hottest-block bucket against the per-replica warm/burst bounds.
    pub fn block_bucket(&self, n_b_max: f64, replication: usize) -> usize {
        let r = replication.max(1) as f64;
        let per_replica = n_b_max / r;
        if per_replica <= 0.0 {
            0
        } else if per_replica <= self.block_warm {
            1
        } else if per_replica <= self.block_burst {
            2
        } else {
            3
        }
    }

    /// Extra replicas above the namespace default.
    pub fn repl_bucket(&self, replication: usize) -> usize {
        match replication.saturating_sub(self.default_replication) {
            0 => 0,
            1..=2 => 1,
            3..=5 => 2,
            _ => 3,
        }
    }

    /// Time-since-access bucket against the CEP window and the cold
    /// age.
    pub fn age_bucket(&self, age_secs: f64) -> usize {
        if age_secs < self.window_secs {
            0
        } else if age_secs <= self.cold_age_secs {
            1
        } else if age_secs <= 2.0 * self.cold_age_secs {
            2
        } else {
            3
        }
    }

    /// Fold an observation into its dense state index in
    /// `[0, NUM_STATES)`.
    pub fn state(&self, f: &Features) -> usize {
        let p = self.pressure_bucket(f.pressure);
        let b = self.block_bucket(f.n_b_max, f.replication);
        let fr = usize::from(f.fresh);
        let re = self.repl_bucket(f.replication);
        let ag = self.age_bucket(f.age_secs);
        (((p * BLOCK_BUCKETS + b) * FRESH_BUCKETS + fr) * REPL_BUCKETS + re) * AGE_BUCKETS + ag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disc() -> Discretizer {
        // the calibrate(4.0) shape the scenarios use
        Discretizer {
            tau_hot: 4.0,
            block_burst: 6.0,
            block_warm: 3.0,
            tau_cooled: 2.0,
            tau_cold: 0.5,
            window_secs: 600.0,
            cold_age_secs: 1800.0,
            default_replication: 3,
        }
    }

    #[test]
    fn state_index_stays_in_range() {
        let d = disc();
        for pressure in [0.0, 0.01, 0.2, 0.6, 1.0, 1.5, 9.0] {
            for n_b in [0.0, 2.0, 10.0, 100.0] {
                for fresh in [false, true] {
                    for repl in [1usize, 3, 5, 8, 18] {
                        for age in [0.0, 700.0, 2000.0, 9000.0] {
                            let f = Features {
                                n_d: pressure * 4.0 * repl as f64,
                                n_b_max: n_b,
                                pressure,
                                fresh,
                                replication: repl,
                                age_secs: age,
                            };
                            assert!(d.state(&f) < NUM_STATES);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pressure_fences_sit_on_the_rule_boundaries() {
        let d = disc();
        assert_eq!(d.pressure_bucket(0.0), 0);
        // τ_m/τ_M = 0.125: just below is the idle-ish band
        assert_eq!(d.pressure_bucket(0.12), 1);
        // τ_d/τ_M = 0.5: cooled boundary
        assert_eq!(d.pressure_bucket(0.49), 2);
        assert_eq!(d.pressure_bucket(0.99), 3);
        // above 1.0 the rules would boost
        assert_eq!(d.pressure_bucket(1.01), 4);
        assert_eq!(d.pressure_bucket(5.0), 5);
    }

    #[test]
    fn distinct_observations_get_distinct_states() {
        let d = disc();
        let base = Features {
            n_d: 0.0,
            n_b_max: 0.0,
            pressure: 0.0,
            fresh: false,
            replication: 3,
            age_secs: 0.0,
        };
        let hot = Features {
            pressure: 1.5,
            ..base
        };
        let fresh = Features {
            fresh: true,
            ..base
        };
        let old = Features {
            age_secs: 9999.0,
            ..base
        };
        let s: std::collections::BTreeSet<usize> = [&base, &hot, &fresh, &old]
            .iter()
            .map(|f| d.state(f))
            .collect();
        assert_eq!(s.len(), 4);
    }
}
