//! Hierarchical wall-clock self-profiler for the control loop's hot path.
//!
//! The simulator's correctness story is sim-time-deterministic, but its
//! *cost* story is wall-clock: how many microseconds one control tick
//! burns, and in which phase. This module answers that with RAII scoped
//! timers ([`prof_scope!`](crate::prof_scope)) kept on a thread-local
//! frame stack: entering a scope pushes a frame, dropping the guard pops
//! it and charges the elapsed wall-ns (plus an optional
//! allocation-count delta) to the node addressed by the stack of scope
//! names above it. The result is a tree — `tick` → `judge` → `shard0` —
//! mirroring the phase structure of the code.
//!
//! Determinism discipline (same rules as [`trace!`](crate::trace)):
//!
//! * **Zero cost when disabled.** [`prof_scope!`](crate::prof_scope)
//!   compiles to one branch on a thread-local flag; the scope-name
//!   expression is not evaluated and no guard is created. The profiler
//!   never touches telemetry, so enabling it cannot perturb traces,
//!   metrics or resume equivalence.
//! * **Deterministic shape, nondeterministic weights.** Snapshot
//!   ([`snapshot`]) children are sorted by name, and `calls` counts are
//!   a pure function of the run, so two same-seed runs produce
//!   identically *shaped* trees. `wall_ns` / `max_ns` / `alloc` are
//!   host-dependent and must never feed a byte-identity or
//!   resume-equivalence comparison — downstream consumers (the
//!   scorecard's regression gate) classify them as wall-clock metrics
//!   with a tolerance, never exact-match.
//!
//! ```
//! use simcore::{profiler, prof_scope};
//!
//! profiler::reset();
//! profiler::set_enabled(true);
//! {
//!     prof_scope!("tick");
//!     prof_scope!("audit"); // nested: addressed as tick/audit
//! }
//! profiler::set_enabled(false);
//! let root = profiler::snapshot();
//! assert_eq!(root.find("tick/audit").unwrap().calls, 1);
//! ```

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::time::Instant;

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static PROF: RefCell<ProfilerState> = RefCell::new(ProfilerState::new());
}

/// Optional allocation-count probe (e.g. a counting global allocator's
/// monotone allocation counter). When set, every scope also records the
/// probe delta between entry and exit as its `alloc` column.
#[derive(Debug)]
struct ProfilerState {
    nodes: Vec<NodeSlot>,
    stack: Vec<usize>,
    alloc_probe: Option<fn() -> u64>,
}

#[derive(Debug)]
struct NodeSlot {
    name: String,
    calls: u64,
    wall_ns: u64,
    max_ns: u64,
    alloc: u64,
    children: Vec<usize>,
}

impl ProfilerState {
    fn new() -> Self {
        ProfilerState {
            nodes: vec![NodeSlot::root()],
            stack: Vec::new(),
            alloc_probe: None,
        }
    }
}

impl NodeSlot {
    fn root() -> Self {
        NodeSlot {
            name: "root".into(),
            calls: 0,
            wall_ns: 0,
            max_ns: 0,
            alloc: 0,
            children: Vec::new(),
        }
    }
}

/// Whether [`prof_scope!`](crate::prof_scope) records anything on this
/// thread. One thread-local load — the whole disabled-path cost.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Turn recording on or off for this thread. Scopes already on the
/// stack keep recording until their guards drop.
pub fn set_enabled(on: bool) {
    ENABLED.with(|e| e.set(on));
}

/// Drop all recorded frames and the live stack (guards from before the
/// reset become inert). Enabled state is unchanged.
pub fn reset() {
    PROF.with(|p| *p.borrow_mut() = ProfilerState::new());
}

/// Install (or clear) the allocation-count probe used for the `alloc`
/// column. The probe must be monotone (e.g. total allocations since
/// process start).
pub fn set_alloc_probe(probe: Option<fn() -> u64>) {
    PROF.with(|p| p.borrow_mut().alloc_probe = probe);
}

/// Enter a named scope under the current stack top, returning the RAII
/// guard that charges the frame on drop. Prefer
/// [`prof_scope!`](crate::prof_scope), which skips this entirely (name
/// expression included) when the profiler is disabled.
pub fn enter(name: &str) -> ScopeGuard {
    PROF.with(|p| {
        let mut prof = p.borrow_mut();
        let parent = prof.stack.last().copied().unwrap_or(0);
        let node = match prof.nodes[parent]
            .children
            .iter()
            .copied()
            .find(|&c| prof.nodes[c].name == name)
        {
            Some(existing) => existing,
            None => {
                let idx = prof.nodes.len();
                prof.nodes.push(NodeSlot {
                    name: name.to_owned(),
                    calls: 0,
                    wall_ns: 0,
                    max_ns: 0,
                    alloc: 0,
                    children: Vec::new(),
                });
                prof.nodes[parent].children.push(idx);
                idx
            }
        };
        prof.stack.push(node);
        let depth = prof.stack.len();
        let alloc_start = prof.alloc_probe.map(|f| f());
        ScopeGuard {
            node,
            depth,
            start: Instant::now(),
            alloc_start,
        }
    })
}

/// RAII frame: charges elapsed wall time (and the allocation delta) to
/// its node when dropped. Robust to [`reset`] happening underneath it —
/// a guard whose frame is gone records nothing.
#[derive(Debug)]
pub struct ScopeGuard {
    node: usize,
    depth: usize,
    start: Instant,
    alloc_start: Option<u64>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos() as u64;
        PROF.with(|p| {
            let mut prof = p.borrow_mut();
            // Validate the frame is still ours (reset() or a leaked
            // guard dropped out of order makes the stack disagree).
            if prof.stack.len() != self.depth || prof.stack.last() != Some(&self.node) {
                return;
            }
            prof.stack.pop();
            let alloc_delta = match (self.alloc_start, prof.alloc_probe) {
                (Some(at_entry), Some(f)) => f().saturating_sub(at_entry),
                _ => 0,
            };
            let slot = &mut prof.nodes[self.node];
            slot.calls += 1;
            slot.wall_ns += elapsed;
            slot.max_ns = slot.max_ns.max(elapsed);
            slot.alloc += alloc_delta;
        });
    }
}

/// One node of a profile snapshot: a named phase with accumulated
/// weights and name-sorted children.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileNode {
    pub name: String,
    /// Completed entries of this scope (deterministic per seed).
    pub calls: u64,
    /// Total wall time charged to this scope, nanoseconds (host-dependent).
    pub wall_ns: u64,
    /// Longest single entry, nanoseconds (host-dependent).
    pub max_ns: u64,
    /// Allocation-probe delta summed over entries (0 without a probe).
    pub alloc: u64,
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Look up a descendant by `/`-joined path of scope names
    /// (`"tick/judge/shard0"`), starting below this node.
    pub fn find(&self, path: &str) -> Option<&ProfileNode> {
        let mut cur = self;
        for part in path.split('/') {
            cur = cur.children.iter().find(|c| c.name == part)?;
        }
        Some(cur)
    }

    /// Total completed scope entries in this subtree, excluding this
    /// node itself.
    pub fn total_calls(&self) -> u64 {
        self.children
            .iter()
            .map(|c| c.calls + c.total_calls())
            .sum()
    }

    /// Deterministically ordered JSON encoding (children sorted by name
    /// at snapshot time; key order fixed).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"name\":\"");
        for c in self.name.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        let _ = write!(
            out,
            "\",\"calls\":{},\"wall_ns\":{},\"max_ns\":{},\"alloc\":{},\"children\":[",
            self.calls, self.wall_ns, self.max_ns, self.alloc
        );
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.write_json(out);
        }
        out.push_str("]}");
    }
}

/// Snapshot the recorded tree for this thread. Children are sorted by
/// name at every level, so the snapshot's *shape* is a pure function of
/// the scopes entered (the wall-clock weights are not). Frames still on
/// the stack are not included until their guards drop.
pub fn snapshot() -> ProfileNode {
    PROF.with(|p| {
        let prof = p.borrow();
        build_node(&prof, 0)
    })
}

fn build_node(prof: &ProfilerState, idx: usize) -> ProfileNode {
    let slot = &prof.nodes[idx];
    let mut children: Vec<ProfileNode> =
        slot.children.iter().map(|&c| build_node(prof, c)).collect();
    children.sort_by(|a, b| a.name.cmp(&b.name));
    ProfileNode {
        name: slot.name.clone(),
        calls: slot.calls,
        wall_ns: slot.wall_ns,
        max_ns: slot.max_ns,
        alloc: slot.alloc,
        children,
    }
}

/// Render a snapshot as a flame-style indented text tree with per-node
/// call counts, total/mean/max wall time and the share of the parent's
/// wall time.
pub fn render_text(root: &ProfileNode) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<40} {:>10} {:>12} {:>12} {:>12} {:>10} {:>7}",
        "phase", "calls", "total", "mean", "max", "alloc", "parent%"
    );
    for child in &root.children {
        render_node(&mut out, child, 0, root_wall(root));
    }
    out
}

fn root_wall(root: &ProfileNode) -> u64 {
    root.children.iter().map(|c| c.wall_ns).sum()
}

fn render_node(out: &mut String, node: &ProfileNode, depth: usize, parent_wall: u64) {
    let label = format!("{}{}", "  ".repeat(depth), node.name);
    let mean = node.wall_ns.checked_div(node.calls).unwrap_or(0);
    let pct = if parent_wall == 0 {
        100.0
    } else {
        node.wall_ns as f64 / parent_wall as f64 * 100.0
    };
    let _ = writeln!(
        out,
        "{:<40} {:>10} {:>12} {:>12} {:>12} {:>10} {:>6.1}%",
        label,
        node.calls,
        fmt_ns(node.wall_ns),
        fmt_ns(mean),
        fmt_ns(node.max_ns),
        node.alloc,
        pct
    );
    for child in &node.children {
        render_node(out, child, depth + 1, node.wall_ns);
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Open a named profiler scope for the rest of the enclosing block.
///
/// Mirrors the [`trace!`](crate::trace) discipline: on a disabled
/// profiler this is a single thread-local branch and the name
/// expression is **not** evaluated, so dynamic names
/// (`&format!("shard{i}")`) cost nothing unless profiling is on.
///
/// ```
/// use simcore::{profiler, prof_scope};
///
/// profiler::reset();
/// profiler::set_enabled(true);
/// for i in 0..2 {
///     prof_scope!(&format!("shard{i}"));
/// }
/// profiler::set_enabled(false);
/// assert_eq!(profiler::snapshot().find("shard1").unwrap().calls, 1);
/// ```
#[macro_export]
macro_rules! prof_scope {
    ($name:expr) => {
        let _prof_guard = if $crate::profiler::is_enabled() {
            Some($crate::profiler::enter($name))
        } else {
            None
        };
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing_and_skips_name_evaluation() {
        reset();
        set_enabled(false);
        let mut evaluated = false;
        let mut name = || {
            evaluated = true;
            "never"
        };
        {
            prof_scope!(name());
        }
        assert!(!evaluated, "disabled profiler must not evaluate names");
        let root = snapshot();
        assert!(root.children.is_empty());
        assert_eq!(root.total_calls(), 0);
    }

    #[test]
    fn nested_scopes_build_a_tree_with_sorted_children() {
        reset();
        set_enabled(true);
        {
            prof_scope!("tick");
            {
                prof_scope!("zeta");
            }
            {
                prof_scope!("audit");
            }
            {
                prof_scope!("audit");
            }
        }
        set_enabled(false);
        let root = snapshot();
        let tick = root.find("tick").expect("tick node");
        assert_eq!(tick.calls, 1);
        let names: Vec<&str> = tick.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["audit", "zeta"], "children sort by name");
        assert_eq!(root.find("tick/audit").unwrap().calls, 2);
        assert!(tick.wall_ns >= tick.children.iter().map(|c| c.wall_ns).sum());
        assert!(tick.max_ns >= tick.children.iter().map(|c| c.max_ns).max().unwrap());
        assert_eq!(root.total_calls(), 4);
    }

    #[test]
    fn snapshot_shape_is_stable_across_same_scope_sequences() {
        let run = || {
            reset();
            set_enabled(true);
            for _ in 0..3 {
                prof_scope!("tick");
                for shard in 0..2 {
                    prof_scope!(&format!("shard{shard}"));
                }
            }
            set_enabled(false);
            let mut snap = snapshot();
            strip_weights(&mut snap);
            snap.to_json()
        };
        assert_eq!(run(), run(), "shape + calls are deterministic");
    }

    fn strip_weights(node: &mut ProfileNode) {
        node.wall_ns = 0;
        node.max_ns = 0;
        node.alloc = 0;
        for c in &mut node.children {
            strip_weights(c);
        }
    }

    #[test]
    fn reset_makes_live_guards_inert() {
        reset();
        set_enabled(true);
        let guard = enter("orphan");
        reset();
        drop(guard); // must not panic or resurrect the frame
        set_enabled(false);
        assert!(snapshot().children.is_empty());
    }

    #[test]
    fn json_roundtrips_shape_and_counts() {
        reset();
        set_enabled(true);
        {
            prof_scope!("tick");
            prof_scope!("cep/parse");
        }
        set_enabled(false);
        let json = snapshot().to_json();
        assert!(json.starts_with("{\"name\":\"root\""));
        assert!(json.contains("\"name\":\"cep/parse\""));
        assert!(json.contains("\"calls\":1"));
    }

    #[test]
    fn render_text_lists_phases_indented() {
        reset();
        set_enabled(true);
        {
            prof_scope!("tick");
            prof_scope!("audit");
        }
        set_enabled(false);
        let text = render_text(&snapshot());
        assert!(text.contains("tick"));
        assert!(text.contains("  audit"), "children indent: {text}");
    }
}
