//! Structured tracing and metrics for the decision path.
//!
//! The ERMS papers' causal chain — audit event → CEP window → judge
//! verdict → Condor task → block-map change — is invisible in end-state
//! figures. This module makes it observable: every component holds a
//! cloneable [`TelemetrySink`] handle and emits typed [`Event`]s through
//! the [`trace!`](crate::trace) macro, which costs one branch (and evaluates nothing
//! else) when the sink is disabled.
//!
//! Alongside the event trace, the sink owns a [`MetricsRegistry`] of
//! counters, gauges and histograms whose snapshots iterate in a fixed
//! (lexicographic) order, so two same-seed runs serialize byte-identical
//! JSON — traces and metric dumps are diffable artifacts.
//!
//! The event vocabulary is domain-shaped (reads, replication streams,
//! verdicts, scheduler attempts) but carries only primitive fields
//! (`u32` node ids, `u64` job/block ids, `String` paths): `simcore`
//! stays at the bottom of the crate DAG and never depends on the
//! substrates that emit into it.
//!
//! ```
//! use simcore::telemetry::{Event, TelemetrySink};
//! use simcore::{trace, SimTime};
//!
//! let sink = TelemetrySink::recording();
//! trace!(sink, SimTime::from_secs(1), Event::ReadStarted {
//!     read: 1,
//!     path: "/hot/a".into(),
//! });
//! sink.counter_add("hdfs.reads_started", 1);
//! assert_eq!(sink.drain_events().len(), 1);
//! ```

use crate::time::SimTime;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

/// One structured event on the decision path.
///
/// Variants cover the four stages the ERMS loop is made of: the HDFS
/// substrate (I/O, replication streams, faults, repair), the CEP layer
/// (window emits), the manager (verdicts and the elastic decisions they
/// trigger, with the formula inputs), and the Condor scheduler (queue /
/// dispatch / retry / outcome).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Event {
    // --- HDFS substrate ---
    /// A client session opened a file (or single block) for reading.
    ///
    /// `read` is the session's correlation id: the
    /// matching [`Event::ReadFinished`] carries the same value, so spans
    /// pair unambiguously even when several sessions stream one path.
    ReadStarted { read: u64, path: String },
    /// A read session completed (all blocks streamed, or gave up).
    ReadFinished {
        read: u64,
        path: String,
        bytes: u64,
        failed: bool,
    },
    /// A write pipeline started for a new file.
    WriteStarted {
        write: u64,
        path: String,
        replication: u32,
    },
    /// The write pipeline finished (committed or abandoned).
    WriteFinished {
        write: u64,
        path: String,
        bytes: u64,
        failed: bool,
    },
    /// A replication stream was dispatched (source chosen at dispatch).
    ///
    /// `copy` is monotone per cluster: a retried repair of the same
    /// `(block, target)` pair gets a fresh id, so dispatch/completion
    /// never collide across retries.
    CopyDispatched {
        copy: u64,
        block: u64,
        source: u32,
        target: u32,
    },
    /// An RS reconstruction stream was dispatched: the target pulls one
    /// shard from each of `sources` stripe members. Shares the copy-id
    /// space with [`Event::CopyDispatched`]; completion surfaces as
    /// [`Event::CopyCompleted`]. Sources hold *sibling* stripe blocks,
    /// not the dark block itself, so only their count is recorded.
    ReconstructDispatched {
        copy: u64,
        block: u64,
        sources: u64,
        target: u32,
    },
    /// A replication / reconstruction stream delivered its replica.
    CopyCompleted { copy: u64, block: u64, target: u32 },
    /// An injected fault (or recovery) took effect.
    FaultApplied {
        kind: String,
        node: Option<u32>,
        rack: Option<u32>,
    },
    /// The periodic repair scan summarized the damage it found.
    RepairScan {
        under_replicated: u64,
        over_replicated: u64,
        dark_shards: u64,
    },
    /// A replica (or parity shard) was silently corrupted on disk.
    /// `kind` is `"replica"`, `"shard"` or `"torn_write"`.
    CorruptionInjected { block: u64, node: u32, kind: String },
    /// A checksum mismatch was caught, either on the read path
    /// (`via == "read"`) or by the background scrubber (`via == "scrub"`).
    CorruptionDetected { block: u64, node: u32, via: String },
    /// The corrupt replica was removed from service — no read will be
    /// routed to it again.
    CorruptQuarantined { block: u64, node: u32 },
    /// A quarantined block regained its target replica count through a
    /// verified repair (`via` is `"copy"` or `"reconstruct"`).
    CorruptRepaired { block: u64, via: String },
    /// One scrub pass over the budgeted slice of the block space.
    ScrubProgress {
        scanned: u64,
        cursor: u64,
        found: u64,
    },
    /// A block became unreadable with no surviving clean copy anywhere —
    /// live replica counts at the moment of loss, so the oracle can
    /// verify loss is only ever declared when everything is dead or
    /// corrupt.
    DataLoss {
        block: u64,
        live_replicas: u64,
        clean_retained: u64,
    },

    // --- CEP layer ---
    /// A sliding-window query emitted a row past its threshold.
    WindowEmit {
        query: String,
        group: String,
        value: f64,
    },

    // --- ERMS manager ---
    /// The judge classified one file, with the formula inputs used.
    Verdict {
        path: String,
        verdict: String,
        file_sessions: f64,
        max_block_sessions: f64,
        replicas: u32,
    },
    /// Replication increase decision (Formula 1/2/3 tripped).
    ReplicationBoost {
        path: String,
        from: u32,
        to: u32,
        sessions: f64,
    },
    /// Replica shed decision after the cooled-patience hysteresis.
    ReplicationShed { path: String, from: u32, to: u32 },
    /// Cold file encoded to RS stripes (emitted when the rewrite lands,
    /// not when the decision is queued). `parities` counts the parity
    /// shards placed — always `stripes × m` for the configured layout.
    EncodeCold {
        path: String,
        stripes: u32,
        parities: u32,
    },
    /// Encoded file decoded back to replication.
    DecodeCold { path: String },
    /// A self-healing action taken by the tick loop.
    SelfHeal { action: String, detail: String },
    /// A standby node was powered on (capacity) or off (drained).
    StandbyPower { node: u32, on: bool },

    // --- Condor scheduler ---
    /// A task entered one of the two priority queues.
    TaskQueued { job: u64, priority: String },
    /// A task left the queue for execution.
    TaskDispatched { job: u64, attempt: u32 },
    /// A failed task was re-queued with backoff.
    TaskRetry {
        job: u64,
        attempt: u32,
        delay_ns: u64,
    },
    /// A task reached a terminal state.
    TaskFinished { job: u64, ok: bool },
}

impl Event {
    /// Stable tag used as the `"ev"` field of the JSONL encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::ReadStarted { .. } => "read_started",
            Event::ReadFinished { .. } => "read_finished",
            Event::WriteStarted { .. } => "write_started",
            Event::WriteFinished { .. } => "write_finished",
            Event::CopyDispatched { .. } => "copy_dispatched",
            Event::ReconstructDispatched { .. } => "reconstruct_dispatched",
            Event::CopyCompleted { .. } => "copy_completed",
            Event::FaultApplied { .. } => "fault_applied",
            Event::RepairScan { .. } => "repair_scan",
            Event::CorruptionInjected { .. } => "corruption_injected",
            Event::CorruptionDetected { .. } => "corruption_detected",
            Event::CorruptQuarantined { .. } => "corrupt_quarantined",
            Event::CorruptRepaired { .. } => "corrupt_repaired",
            Event::ScrubProgress { .. } => "scrub_progress",
            Event::DataLoss { .. } => "data_loss",
            Event::WindowEmit { .. } => "window_emit",
            Event::Verdict { .. } => "verdict",
            Event::ReplicationBoost { .. } => "replication_boost",
            Event::ReplicationShed { .. } => "replication_shed",
            Event::EncodeCold { .. } => "encode_cold",
            Event::DecodeCold { .. } => "decode_cold",
            Event::SelfHeal { .. } => "self_heal",
            Event::StandbyPower { .. } => "standby_power",
            Event::TaskQueued { .. } => "task_queued",
            Event::TaskDispatched { .. } => "task_dispatched",
            Event::TaskRetry { .. } => "task_retry",
            Event::TaskFinished { .. } => "task_finished",
        }
    }

    fn write_fields(&self, out: &mut String) {
        match self {
            Event::ReadStarted { read, path } => {
                json_u64(out, "read", *read);
                json_str(out, "path", path);
            }
            Event::ReadFinished {
                read,
                path,
                bytes,
                failed,
            } => {
                json_u64(out, "read", *read);
                json_str(out, "path", path);
                json_u64(out, "bytes", *bytes);
                json_bool(out, "failed", *failed);
            }
            Event::WriteFinished {
                write,
                path,
                bytes,
                failed,
            } => {
                json_u64(out, "write", *write);
                json_str(out, "path", path);
                json_u64(out, "bytes", *bytes);
                json_bool(out, "failed", *failed);
            }
            Event::WriteStarted {
                write,
                path,
                replication,
            } => {
                json_u64(out, "write", *write);
                json_str(out, "path", path);
                json_u64(out, "replication", u64::from(*replication));
            }
            Event::CopyDispatched {
                copy,
                block,
                source,
                target,
            } => {
                json_u64(out, "copy", *copy);
                json_u64(out, "block", *block);
                json_u64(out, "source", u64::from(*source));
                json_u64(out, "target", u64::from(*target));
            }
            Event::ReconstructDispatched {
                copy,
                block,
                sources,
                target,
            } => {
                json_u64(out, "copy", *copy);
                json_u64(out, "block", *block);
                json_u64(out, "sources", *sources);
                json_u64(out, "target", u64::from(*target));
            }
            Event::CopyCompleted {
                copy,
                block,
                target,
            } => {
                json_u64(out, "copy", *copy);
                json_u64(out, "block", *block);
                json_u64(out, "target", u64::from(*target));
            }
            Event::FaultApplied { kind, node, rack } => {
                json_str(out, "kind", kind);
                if let Some(n) = node {
                    json_u64(out, "node", u64::from(*n));
                }
                if let Some(r) = rack {
                    json_u64(out, "rack", u64::from(*r));
                }
            }
            Event::RepairScan {
                under_replicated,
                over_replicated,
                dark_shards,
            } => {
                json_u64(out, "under_replicated", *under_replicated);
                json_u64(out, "over_replicated", *over_replicated);
                json_u64(out, "dark_shards", *dark_shards);
            }
            Event::CorruptionInjected { block, node, kind } => {
                json_u64(out, "block", *block);
                json_u64(out, "node", u64::from(*node));
                json_str(out, "kind", kind);
            }
            Event::CorruptionDetected { block, node, via } => {
                json_u64(out, "block", *block);
                json_u64(out, "node", u64::from(*node));
                json_str(out, "via", via);
            }
            Event::CorruptQuarantined { block, node } => {
                json_u64(out, "block", *block);
                json_u64(out, "node", u64::from(*node));
            }
            Event::CorruptRepaired { block, via } => {
                json_u64(out, "block", *block);
                json_str(out, "via", via);
            }
            Event::ScrubProgress {
                scanned,
                cursor,
                found,
            } => {
                json_u64(out, "scanned", *scanned);
                json_u64(out, "cursor", *cursor);
                json_u64(out, "found", *found);
            }
            Event::DataLoss {
                block,
                live_replicas,
                clean_retained,
            } => {
                json_u64(out, "block", *block);
                json_u64(out, "live_replicas", *live_replicas);
                json_u64(out, "clean_retained", *clean_retained);
            }
            Event::WindowEmit {
                query,
                group,
                value,
            } => {
                json_str(out, "query", query);
                json_str(out, "group", group);
                json_f64(out, "value", *value);
            }
            Event::Verdict {
                path,
                verdict,
                file_sessions,
                max_block_sessions,
                replicas,
            } => {
                json_str(out, "path", path);
                json_str(out, "verdict", verdict);
                json_f64(out, "file_sessions", *file_sessions);
                json_f64(out, "max_block_sessions", *max_block_sessions);
                json_u64(out, "replicas", u64::from(*replicas));
            }
            Event::ReplicationBoost {
                path,
                from,
                to,
                sessions,
            } => {
                json_str(out, "path", path);
                json_u64(out, "from", u64::from(*from));
                json_u64(out, "to", u64::from(*to));
                json_f64(out, "sessions", *sessions);
            }
            Event::ReplicationShed { path, from, to } => {
                json_str(out, "path", path);
                json_u64(out, "from", u64::from(*from));
                json_u64(out, "to", u64::from(*to));
            }
            Event::EncodeCold {
                path,
                stripes,
                parities,
            } => {
                json_str(out, "path", path);
                json_u64(out, "stripes", u64::from(*stripes));
                json_u64(out, "parities", u64::from(*parities));
            }
            Event::DecodeCold { path } => {
                json_str(out, "path", path);
            }
            Event::SelfHeal { action, detail } => {
                json_str(out, "action", action);
                json_str(out, "detail", detail);
            }
            Event::StandbyPower { node, on } => {
                json_u64(out, "node", u64::from(*node));
                json_bool(out, "on", *on);
            }
            Event::TaskQueued { job, priority } => {
                json_u64(out, "job", *job);
                json_str(out, "priority", priority);
            }
            Event::TaskDispatched { job, attempt } => {
                json_u64(out, "job", *job);
                json_u64(out, "attempt", u64::from(*attempt));
            }
            Event::TaskRetry {
                job,
                attempt,
                delay_ns,
            } => {
                json_u64(out, "job", *job);
                json_u64(out, "attempt", u64::from(*attempt));
                json_u64(out, "delay_ns", *delay_ns);
            }
            Event::TaskFinished { job, ok } => {
                json_u64(out, "job", *job);
                json_bool(out, "ok", *ok);
            }
        }
    }
}

/// An [`Event`] plus its emission instant and global sequence number.
///
/// The sequence number makes ties at equal `SimTime` unambiguous in a
/// diff, mirroring how the event queue breaks scheduling ties.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedEvent {
    pub time: SimTime,
    pub seq: u64,
    pub event: Event,
}

impl TracedEvent {
    /// One line of the JSONL trace encoding, without trailing newline.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push('{');
        json_u64(&mut out, "t_ns", self.time.as_nanos());
        json_u64(&mut out, "seq", self.seq);
        json_str(&mut out, "ev", self.event.kind());
        self.event.write_fields(&mut out);
        out.push('}');
        out
    }
}

/// A histogram over `f64` observations with power-of-two buckets.
///
/// Bucket `i` counts observations in `(2^(i-1), 2^i]` (bucket 0 holds
/// everything ≤ 1). Fixed boundaries keep the encoding stable across
/// runs regardless of observation order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricHistogram {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    buckets: Vec<u64>,
}

impl MetricHistogram {
    pub fn observe(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        let idx = if value <= 1.0 {
            0
        } else {
            // ceil(log2(value)), capped so the vec stays small
            (64 - (value.ceil() as u64).saturating_sub(1).leading_zeros()) as usize
        };
        let idx = idx.min(63);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket counts, index `i` covering `(2^(i-1), 2^i]`.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Rebuild a histogram from previously captured parts (the
    /// checkpoint restore path). The parts must come from
    /// [`MetricHistogram`]'s own fields — no validation beyond shape is
    /// attempted.
    pub fn from_parts(count: u64, sum: f64, min: f64, max: f64, buckets: Vec<u64>) -> Self {
        MetricHistogram {
            count,
            sum,
            min,
            max,
            buckets,
        }
    }

    /// Estimated value at quantile `q` in `[0, 1]`.
    ///
    /// Walks the cumulative bucket counts and reports the upper bound of
    /// the bucket holding the `ceil(q · count)`-th observation, clamped
    /// to the observed `[min, max]`. Coarse (buckets are powers of two)
    /// but deterministic: a pure function of the bucket counts, so two
    /// same-seed runs always report identical percentiles.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil().max(1.0)) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let upper = if i == 0 { 1.0 } else { (1u64 << i) as f64 };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    fn write_json(&self, out: &mut String) {
        out.push('{');
        json_u64(out, "count", self.count);
        json_f64(out, "sum", self.sum);
        json_f64(out, "min", self.min);
        json_f64(out, "max", self.max);
        json_f64(out, "p50", self.percentile(0.50));
        json_f64(out, "p95", self.percentile(0.95));
        json_f64(out, "p99", self.percentile(0.99));
        comma(out);
        out.push_str("\"buckets\":[");
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push(']');
        out.push('}');
    }
}

/// Named counters, gauges and histograms with deterministic iteration.
///
/// Backed by sorted maps so [`MetricsRegistry::snapshot_json`] always
/// lists metrics in lexicographic order — the property the byte-identity
/// acceptance test leans on.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    // Keys are Cow so the hot path stays allocation-free (&'static str
    // borrowed) while checkpoint restore can re-create entries from
    // parsed JSON (owned). `Cow<str>: Borrow<str>` keeps &str lookups
    // working against either.
    counters: std::collections::BTreeMap<std::borrow::Cow<'static, str>, u64>,
    gauges: std::collections::BTreeMap<std::borrow::Cow<'static, str>, f64>,
    histograms: std::collections::BTreeMap<std::borrow::Cow<'static, str>, MetricHistogram>,
}

impl MetricsRegistry {
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self
            .counters
            .entry(std::borrow::Cow::Borrowed(name))
            .or_insert(0) += delta;
    }

    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(std::borrow::Cow::Borrowed(name), value);
    }

    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms
            .entry(std::borrow::Cow::Borrowed(name))
            .or_default()
            .observe(value);
    }

    /// Re-create a counter from restored state (owned key).
    pub fn restore_counter(&mut self, name: &str, value: u64) {
        self.counters
            .insert(std::borrow::Cow::Owned(name.to_owned()), value);
    }

    /// Re-create a gauge from restored state (owned key).
    pub fn restore_gauge(&mut self, name: &str, value: f64) {
        self.gauges
            .insert(std::borrow::Cow::Owned(name.to_owned()), value);
    }

    /// Re-create a histogram from restored state (owned key).
    pub fn restore_histogram(&mut self, name: &str, hist: MetricHistogram) {
        self.histograms
            .insert(std::borrow::Cow::Owned(name.to_owned()), hist);
    }

    /// Counters in lexicographic key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_ref(), *v))
    }

    /// Gauges in lexicographic key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_ref(), *v))
    }

    /// Histograms in lexicographic key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &MetricHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_ref(), v))
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&MetricHistogram> {
        self.histograms.get(name)
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// One JSON object capturing every metric at `now`, keys sorted.
    pub fn snapshot_json(&self, now: SimTime) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        json_u64(&mut out, "t_ns", now.as_nanos());
        comma(&mut out);
        out.push_str("\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push('}');
        comma(&mut out);
        out.push_str("\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":");
            write_f64(&mut out, *v);
        }
        out.push('}');
        comma(&mut out);
        out.push_str("\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":");
            h.write_json(&mut out);
        }
        out.push('}');
        out.push('}');
        out
    }
}

#[derive(Debug, Default)]
struct SinkInner {
    events: Vec<TracedEvent>,
    seq: u64,
    metrics: MetricsRegistry,
}

/// A cloneable handle to a trace buffer + metrics registry.
///
/// The default handle is *disabled*: it holds no allocation, every
/// `enabled()` check is a branch on a `None`, and the [`trace!`](crate::trace) macro
/// never evaluates its event expression. Components store a sink
/// unconditionally; harnesses that want observability swap in
/// [`TelemetrySink::recording`] and share clones of it across the
/// cluster, manager, judge and scheduler so one buffer sees the whole
/// causal chain in emission order.
///
/// Single-threaded by design (the simulator is single-threaded):
/// `Rc<RefCell<_>>`, not `Arc<Mutex<_>>`.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySink(Option<Rc<RefCell<SinkInner>>>);

impl TelemetrySink {
    /// The no-op handle every component starts with.
    pub fn disabled() -> Self {
        TelemetrySink(None)
    }

    /// A live sink that buffers events and accumulates metrics.
    pub fn recording() -> Self {
        TelemetrySink(Some(Rc::new(RefCell::new(SinkInner::default()))))
    }

    /// Whether emissions are recorded. Gate event construction on this
    /// (the [`trace!`](crate::trace) macro does it for you).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record `event` at `now`. Prefer [`trace!`](crate::trace), which skips the
    /// event construction entirely on a disabled sink.
    pub fn emit(&self, now: SimTime, event: Event) {
        if let Some(inner) = &self.0 {
            let mut inner = inner.borrow_mut();
            let seq = inner.seq;
            inner.seq += 1;
            inner.events.push(TracedEvent {
                time: now,
                seq,
                event,
            });
        }
    }

    /// Record a batch of events in one pass: the sink's interior cell
    /// is borrowed **once** for the whole batch instead of once per
    /// event, and sequence numbers are assigned in iteration order —
    /// the resulting trace is byte-identical to emitting the same
    /// events one by one. This is the once-per-tick path the control
    /// loop uses when `telemetry_batch > 1`.
    pub fn emit_many(&self, events: impl IntoIterator<Item = (SimTime, Event)>) {
        if let Some(inner) = &self.0 {
            let mut inner = inner.borrow_mut();
            let inner = &mut *inner;
            for (now, event) in events {
                let seq = inner.seq;
                inner.seq += 1;
                inner.events.push(TracedEvent {
                    time: now,
                    seq,
                    event,
                });
            }
        }
    }

    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().metrics.counter_add(name, delta);
        }
    }

    pub fn gauge_set(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().metrics.gauge_set(name, value);
        }
    }

    pub fn observe(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().metrics.observe(name, value);
        }
    }

    /// Number of buffered (undrained) events.
    pub fn event_count(&self) -> usize {
        self.0.as_ref().map_or(0, |i| i.borrow().events.len())
    }

    /// Take the buffered events, leaving the buffer empty (sequence
    /// numbers keep counting up across drains).
    pub fn drain_events(&self) -> Vec<TracedEvent> {
        self.0
            .as_ref()
            .map_or_else(Vec::new, |i| std::mem::take(&mut i.borrow_mut().events))
    }

    /// Serialize and drain the buffered events as JSONL (one event per
    /// line, trailing newline included when non-empty).
    pub fn drain_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.drain_events() {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        out
    }

    /// The next sequence number this sink will assign (`0` if disabled).
    ///
    /// Checkpoints record it so a resumed run's trace continues the
    /// straight-through numbering: prefix (drained before the snapshot)
    /// plus resumed suffix concatenate into a byte-identical JSONL.
    pub fn seq(&self) -> u64 {
        self.0.as_ref().map_or(0, |i| i.borrow().seq)
    }

    /// Overwrite the next sequence number (no-op on a disabled sink).
    pub fn set_seq(&self, seq: u64) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().seq = seq;
        }
    }

    /// Read access to the metrics under this sink (`None` if disabled).
    pub fn with_metrics<R>(&self, f: impl FnOnce(&MetricsRegistry) -> R) -> Option<R> {
        self.0.as_ref().map(|i| f(&i.borrow().metrics))
    }

    /// Swap in a restored registry (the checkpoint resume path); no-op
    /// on a disabled sink.
    pub fn replace_metrics(&self, metrics: MetricsRegistry) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().metrics = metrics;
        }
    }

    /// JSON snapshot of every metric at `now`; `None` if disabled.
    pub fn snapshot_json(&self, now: SimTime) -> Option<String> {
        self.with_metrics(|m| m.snapshot_json(now))
    }
}

/// Emit an [`Event`](crate::telemetry::Event) into a sink, evaluating
/// the event expression only when the sink is enabled.
///
/// ```
/// use simcore::telemetry::{Event, TelemetrySink};
/// use simcore::{trace, SimTime};
///
/// let sink = TelemetrySink::disabled();
/// // `Event::DecodeCold { .. }` below is never constructed:
/// trace!(sink, SimTime::ZERO, Event::DecodeCold { path: "/x".into() });
/// assert_eq!(sink.event_count(), 0);
/// ```
#[macro_export]
macro_rules! trace {
    ($sink:expr, $now:expr, $event:expr) => {
        if $sink.enabled() {
            $sink.emit($now, $event);
        }
    };
}

fn comma(out: &mut String) {
    if !out.ends_with('{') && !out.ends_with('[') {
        out.push(',');
    }
}

fn json_u64(out: &mut String, key: &str, value: u64) {
    comma(out);
    let _ = write!(out, "\"{key}\":{value}");
}

fn json_bool(out: &mut String, key: &str, value: bool) {
    comma(out);
    let _ = write!(out, "\"{key}\":{value}");
}

fn json_f64(out: &mut String, key: &str, value: f64) {
    comma(out);
    let _ = write!(out, "\"{key}\":");
    write_f64(out, value);
}

fn write_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        // Rust's shortest-roundtrip formatting is deterministic and,
        // for finite values, valid JSON.
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

fn json_str(out: &mut String, key: &str, value: &str) {
    comma(out);
    let _ = write!(out, "\"{key}\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing_and_skips_evaluation() {
        let sink = TelemetrySink::disabled();
        assert!(!sink.enabled());

        // The trace! macro must not evaluate its event expression on a
        // disabled sink — build the event through a side-effecting
        // closure and assert it never ran (so no path String was ever
        // allocated on the hot path).
        let mut evaluated = false;
        let mut build = || {
            evaluated = true;
            Event::ReadStarted {
                read: 0,
                path: "/never".into(),
            }
        };
        trace!(sink, SimTime::from_secs(1), build());
        assert!(!evaluated, "disabled sink must not construct events");
        assert_eq!(sink.event_count(), 0);

        // Metric calls are no-ops and the registry stays absent.
        sink.counter_add("x", 1);
        sink.gauge_set("y", 2.0);
        sink.observe("z", 3.0);
        assert!(sink.with_metrics(|_| ()).is_none());
        assert!(sink.snapshot_json(SimTime::ZERO).is_none());
        assert!(sink.drain_events().is_empty());
        assert!(sink.drain_jsonl().is_empty());
    }

    #[test]
    fn recording_sink_buffers_in_emission_order() {
        let sink = TelemetrySink::recording();
        let clone = sink.clone();
        trace!(
            sink,
            SimTime::from_secs(1),
            Event::TaskQueued {
                job: 7,
                priority: "immediate".into(),
            }
        );
        trace!(
            clone,
            SimTime::from_secs(1),
            Event::TaskDispatched { job: 7, attempt: 1 }
        );
        let events = sink.drain_events();
        assert_eq!(events.len(), 2, "clones share one buffer");
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[0].event.kind(), "task_queued");
        // drained; sequence numbers keep counting
        sink.emit(
            SimTime::from_secs(2),
            Event::TaskFinished { job: 7, ok: true },
        );
        assert_eq!(sink.drain_events()[0].seq, 2);
    }

    #[test]
    fn jsonl_encoding_is_stable_and_escaped() {
        let sink = TelemetrySink::recording();
        sink.emit(
            SimTime::from_millis(1500),
            Event::ReadStarted {
                read: 41,
                path: "/a \"b\"\n".into(),
            },
        );
        let line = sink.drain_jsonl();
        assert_eq!(
            line,
            "{\"t_ns\":1500000000,\"seq\":0,\"ev\":\"read_started\",\"read\":41,\"path\":\"/a \\\"b\\\"\\n\"}\n"
        );
    }

    #[test]
    fn metrics_snapshot_orders_keys_lexicographically() {
        let sink = TelemetrySink::recording();
        sink.counter_add("z.last", 2);
        sink.counter_add("a.first", 1);
        sink.gauge_set("m.middle", 1.5);
        sink.observe("h.lat", 3.0);
        sink.observe("h.lat", 9.0);
        let snap = sink.snapshot_json(SimTime::from_secs(10)).unwrap();
        let a = snap.find("a.first").unwrap();
        let z = snap.find("z.last").unwrap();
        assert!(a < z, "counters must serialize sorted: {snap}");
        assert!(snap.starts_with("{\"t_ns\":10000000000,"));
        assert!(snap.contains("\"m.middle\":1.5"));
        assert!(snap.contains("\"h.lat\":{\"count\":2,\"sum\":12,"));
        assert!(
            snap.contains("\"p50\":4,\"p95\":9,\"p99\":9,"),
            "histogram snapshots carry percentile estimates: {snap}"
        );
    }

    #[test]
    fn histogram_buckets_are_fixed_power_of_two() {
        let mut h = MetricHistogram::default();
        h.observe(0.5); // bucket 0
        h.observe(1.0); // bucket 0
        h.observe(2.0); // bucket 1
        h.observe(3.0); // bucket 2
        h.observe(1024.0); // bucket 10
        assert_eq!(h.count, 5);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 1);
        assert_eq!(h.buckets()[10], 1);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 1024.0);
        assert!((h.mean() - 206.1).abs() < 0.1);
    }

    #[test]
    fn percentiles_walk_cumulative_buckets_deterministically() {
        let mut h = MetricHistogram::default();
        assert_eq!(h.percentile(0.5), 0.0, "empty histogram reports 0");
        for _ in 0..90 {
            h.observe(0.5); // bucket 0
        }
        for _ in 0..9 {
            h.observe(3.0); // bucket 2, upper bound 4
        }
        h.observe(100.0); // bucket 7, upper bound 128 → clamped to max
        assert_eq!(h.percentile(0.50), 1.0);
        assert_eq!(h.percentile(0.95), 4.0);
        assert_eq!(h.percentile(1.0), 100.0, "clamped to observed max");
        // p99 lands on the 99th observation, still in the 3.0 bucket.
        assert_eq!(h.percentile(0.99), 4.0);
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        let h = MetricHistogram::default();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 0.0);
        }
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn percentile_of_single_sample_is_that_sample() {
        let mut h = MetricHistogram::default();
        h.observe(37.5);
        // Every quantile's rank clamps to the one observation, and the
        // bucket upper bound (64) clamps to observed max.
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 37.5, "q={q}");
        }
    }

    #[test]
    fn percentile_of_all_equal_samples_is_the_common_value() {
        let mut h = MetricHistogram::default();
        for _ in 0..1000 {
            h.observe(6.0);
        }
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 6.0, "q={q}");
        }
        assert_eq!(h.mean(), 6.0);
    }

    #[test]
    fn p99_of_100_samples_uses_nearest_rank_99() {
        // Nearest-rank: rank = ceil(0.99 * 100) = 99 — the 99th
        // observation, NOT the 100th. With 99 samples in bucket 0 and
        // one outlier, p99 must stay in bucket 0.
        let mut h = MetricHistogram::default();
        for _ in 0..99 {
            h.observe(1.0);
        }
        h.observe(1000.0);
        assert_eq!(h.percentile(0.99), 1.0, "rank 99 is still the 1.0 bucket");
        assert_eq!(h.percentile(1.0), 1000.0, "rank 100 walks to the outlier");
        // And the symmetric boundary: 99 outliers push rank 99 up.
        let mut h2 = MetricHistogram::default();
        h2.observe(1.0);
        for _ in 0..99 {
            h2.observe(1000.0);
        }
        assert_eq!(h2.percentile(0.99), 1000.0);
    }

    #[test]
    fn histogram_from_parts_roundtrips_exactly() {
        let mut h = MetricHistogram::default();
        for v in [0.5, 3.0, 3.0, 700.0] {
            h.observe(v);
        }
        let rebuilt =
            MetricHistogram::from_parts(h.count, h.sum, h.min, h.max, h.buckets().to_vec());
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.percentile(0.99), h.percentile(0.99));
    }

    #[test]
    fn restored_registry_snapshots_identically() {
        let mut reg = MetricsRegistry::default();
        reg.counter_add("c.one", 5);
        reg.gauge_set("g.two", -1.25);
        reg.observe("h.three", 9.0);

        let mut restored = MetricsRegistry::default();
        for (k, v) in reg.counters() {
            restored.restore_counter(k, v);
        }
        for (k, v) in reg.gauges() {
            restored.restore_gauge(k, v);
        }
        for (k, h) in reg.histograms() {
            restored.restore_histogram(
                k,
                MetricHistogram::from_parts(h.count, h.sum, h.min, h.max, h.buckets().to_vec()),
            );
        }
        let now = SimTime::from_secs(3);
        assert_eq!(restored.snapshot_json(now), reg.snapshot_json(now));
        // Owned keys must keep accumulating under the same name as
        // borrowed ones (Cow lookup transparency).
        restored.counter_add("c.one", 1);
        assert_eq!(restored.counter("c.one"), 6);
    }

    #[test]
    fn counter_and_gauge_readback() {
        let sink = TelemetrySink::recording();
        sink.counter_add("c", 3);
        sink.counter_add("c", 4);
        sink.gauge_set("g", 1.0);
        sink.gauge_set("g", -2.5);
        assert_eq!(sink.with_metrics(|m| m.counter("c")), Some(7));
        assert_eq!(sink.with_metrics(|m| m.gauge("g")), Some(Some(-2.5)));
        assert_eq!(sink.with_metrics(|m| m.counter("missing")), Some(0));
    }

    #[test]
    fn non_finite_gauges_serialize_as_null() {
        let sink = TelemetrySink::recording();
        sink.gauge_set("bad", f64::NAN);
        let snap = sink.snapshot_json(SimTime::ZERO).unwrap();
        assert!(snap.contains("\"bad\":null"));
    }
}
