//! Storage and bandwidth units.
//!
//! HDFS speaks in binary units (a "64 MB block" is 64 MiB); this module
//! follows that convention. Bandwidth is kept as `f64` bytes/second
//! because the flow-level network model divides node capacity among a
//! varying number of sessions.

use crate::time::SimDuration;
use std::fmt;

/// A byte count. Plain `u64` newtype-free alias: block and file sizes are
/// manipulated arithmetically everywhere and a newtype buys little here.
pub type Bytes = u64;

pub const KB: Bytes = 1 << 10;
pub const MB: Bytes = 1 << 20;
pub const GB: Bytes = 1 << 30;
pub const TB: Bytes = 1 << 40;

/// Bandwidth in bytes per second.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Bandwidth(pub f64);

impl Bandwidth {
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    pub fn from_mb_per_sec(mb: f64) -> Self {
        Bandwidth(mb * MB as f64)
    }
    pub fn from_gbit_per_sec(gbit: f64) -> Self {
        // network convention: 1 Gbit/s = 1e9 bits/s
        Bandwidth(gbit * 1e9 / 8.0)
    }
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }
    pub fn mb_per_sec(self) -> f64 {
        self.0 / MB as f64
    }

    /// Split this bandwidth evenly between `n` concurrent sessions
    /// (processor-sharing service law).
    pub fn share(self, n: usize) -> Bandwidth {
        if n == 0 {
            self
        } else {
            Bandwidth(self.0 / n as f64)
        }
    }

    pub fn min(self, other: Bandwidth) -> Bandwidth {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Time needed to move `bytes` at this rate. Returns a very long but
    /// finite duration when the rate is (effectively) zero so stalled
    /// flows still sort after every live one instead of poisoning the
    /// event queue with `MAX` timestamps.
    pub fn transfer_time(self, bytes: Bytes) -> SimDuration {
        if self.0 <= f64::EPSILON {
            return SimDuration::from_hours(24 * 365);
        }
        SimDuration::from_secs_f64(bytes as f64 / self.0)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} MB/s", self.mb_per_sec())
    }
}

/// Render a byte count with a binary-unit suffix (for harness output).
pub fn fmt_bytes(b: Bytes) -> String {
    if b >= TB {
        format!("{:.2} TiB", b as f64 / TB as f64)
    } else if b >= GB {
        format!("{:.2} GiB", b as f64 / GB as f64)
    } else if b >= MB {
        format!("{:.2} MiB", b as f64 / MB as f64)
    } else if b >= KB {
        format!("{:.2} KiB", b as f64 / KB as f64)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants() {
        assert_eq!(KB, 1024);
        assert_eq!(MB, 1024 * 1024);
        assert_eq!(GB, 1024 * MB);
    }

    #[test]
    fn bandwidth_conversions() {
        let bw = Bandwidth::from_mb_per_sec(100.0);
        assert!((bw.mb_per_sec() - 100.0).abs() < 1e-9);
        let g = Bandwidth::from_gbit_per_sec(1.0);
        assert!((g.bytes_per_sec() - 125_000_000.0).abs() < 1.0);
    }

    #[test]
    fn sharing_and_min() {
        let bw = Bandwidth::from_mb_per_sec(100.0);
        assert!((bw.share(4).mb_per_sec() - 25.0).abs() < 1e-9);
        assert_eq!(bw.share(0), bw);
        assert_eq!(bw.min(Bandwidth::from_mb_per_sec(10.0)).mb_per_sec(), 10.0);
    }

    #[test]
    fn transfer_time() {
        let bw = Bandwidth::from_mb_per_sec(64.0);
        let t = bw.transfer_time(64 * MB);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
        // zero bandwidth yields a long-but-finite stall, not infinity
        let stall = Bandwidth::ZERO.transfer_time(MB);
        assert!(stall.as_secs_f64() > 1e6);
    }

    #[test]
    fn human_format() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2 * KB), "2.00 KiB");
        assert_eq!(fmt_bytes(3 * GB), "3.00 GiB");
    }
}
