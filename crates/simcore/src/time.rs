//! Simulated time.
//!
//! Time is a `u64` count of nanoseconds since the start of the simulation.
//! Nanosecond resolution lets the flow-level network model distinguish
//! transfers that differ by less than a microsecond while still covering
//! ~584 years of simulated time, far beyond the month-long traces replayed
//! by the figure harness.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span between two [`SimTime`]s.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// A sentinel far enough in the future to act as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    pub const fn from_nanos(n: u64) -> Self {
        SimTime(n)
    }
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative SimTime");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Duration elapsed since `earlier`; saturates to zero when `earlier`
    /// is in the future (callers compare heartbeat timestamps that may
    /// race with the clock).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_nanos(n: u64) -> Self {
        SimDuration(n)
    }
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * NANOS_PER_SEC)
    }
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3600 * NANOS_PER_SEC)
    }
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative SimDuration");
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0);
        SimDuration((self.0 as f64 * k).round() as u64)
    }
    pub fn checked_div(self, n: u64) -> Option<SimDuration> {
        self.0.checked_div(n).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}
impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}
impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}
impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}
impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}
impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}
impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}
impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}
impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_secs_f64(2.5).as_secs_f64(), 2.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(12), SimDuration::from_secs(3));
        // saturating semantics when subtracting a later time
        assert_eq!(
            SimTime::from_secs(1) - SimTime::from_secs(2),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.checked_div(4), Some(SimDuration::from_millis(2500)));
        assert_eq!(d.checked_div(0), None);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(SimTime::MAX > SimTime::from_secs(u64::MAX / NANOS_PER_SEC));
    }

    #[test]
    fn hours_helper() {
        assert!((SimTime::from_secs(7200).as_hours_f64() - 2.0).abs() < 1e-12);
    }
}
