//! Online statistics and experiment recorders.
//!
//! The figure harness reports means, percentiles, CDFs and time series;
//! all of them are accumulated online so a month-long trace replay never
//! buffers per-event data it does not need.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Welford online mean/variance accumulator.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merge another accumulator into this one (parallel sweeps reduce
    /// per-shard accumulators with this).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.mean = mean;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Clone, Debug, Serialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(hi > lo && buckets > 0);
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    pub fn total(&self) -> u64 {
        self.total
    }
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Approximate quantile from bucket midpoints, `q` in `[0,1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return self.lo;
        }
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.lo + (i as f64 + 0.5) * w;
            }
        }
        self.hi
    }
}

/// Empirical CDF recorder. Buffers samples; call [`Cdf::curve`] to get
/// `(value, fraction ≤ value)` points. Used for Figure 4.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Cdf {
    samples: Vec<f64>,
}

impl Cdf {
    pub fn new() -> Self {
        Cdf {
            samples: Vec::new(),
        }
    }
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
    }
    pub fn len(&self) -> usize {
        self.samples.len()
    }
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// CDF evaluated at `points` evenly spaced values across the sample
    /// range (inclusive of the max).
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || points == 0 {
            return Vec::new();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = (sorted[0], *sorted.last().expect("non-empty"));
        let n = sorted.len() as f64;
        (0..points)
            .map(|i| {
                let x = if points == 1 {
                    hi
                } else {
                    lo + (hi - lo) * i as f64 / (points - 1) as f64
                };
                let cnt = sorted.partition_point(|&s| s <= x);
                (x, cnt as f64 / n)
            })
            .collect()
    }

    /// Exact fraction of samples ≤ `x`.
    pub fn fraction_leq(&self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let cnt = self.samples.iter().filter(|&&s| s <= x).count();
        cnt as f64 / self.samples.len() as f64
    }
}

/// A `(time, value)` series recorder, e.g. storage utilisation over the
/// course of a run (Figure 5).
#[derive(Clone, Debug, Default, Serialize)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    pub fn record(&mut self, t: SimTime, v: f64) {
        self.points.push((t.as_secs_f64(), v));
    }

    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
    pub fn len(&self) -> usize {
        self.points.len()
    }
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Piecewise-constant (sample-and-hold) value at time `t_secs`.
    pub fn value_at(&self, t_secs: f64) -> Option<f64> {
        let idx = self.points.partition_point(|&(pt, _)| pt <= t_secs);
        if idx == 0 {
            None
        } else {
            Some(self.points[idx - 1].1)
        }
    }

    /// Downsample onto `n` evenly spaced timestamps (sample-and-hold),
    /// for compact figure output.
    pub fn resample(&self, n: usize) -> Vec<(f64, f64)> {
        if self.points.is_empty() || n == 0 {
            return Vec::new();
        }
        let lo = self.points[0].0;
        let hi = self.points.last().expect("non-empty").0;
        (0..n)
            .map(|i| {
                let t = if n == 1 {
                    hi
                } else {
                    lo + (hi - lo) * i as f64 / (n - 1) as f64
                };
                (t, self.value_at(t).unwrap_or(self.points[0].1))
            })
            .collect()
    }
}

/// A monotone named counter set, used for locality accounting and event
/// tallies in the harness.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Counters {
    entries: std::collections::BTreeMap<&'static str, u64>,
}

impl Counters {
    pub fn new() -> Self {
        Self::default()
    }
    pub fn bump(&mut self, key: &'static str) {
        self.add(key, 1);
    }
    pub fn add(&mut self, key: &'static str, by: u64) {
        *self.entries.entry(key).or_insert(0) += by;
    }
    pub fn get(&self, key: &str) -> u64 {
        self.entries.get(key).copied().unwrap_or(0)
    }
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.entries.iter().map(|(&k, &v)| (k, v))
    }
}

/// One closed unavailability window of a tracked object.
#[derive(Clone, Debug, Serialize)]
pub struct UnavailabilityWindow {
    pub key: u64,
    pub start_secs: f64,
    pub end_secs: f64,
    /// The window was still open when the run finalised (the object never
    /// came back); `end_secs` is the finalisation time.
    pub unresolved: bool,
}

impl UnavailabilityWindow {
    pub fn duration_secs(&self) -> f64 {
        self.end_secs - self.start_secs
    }
}

/// A permanent data-loss event: every replica of the object is gone and
/// no crashed disk retains a copy.
#[derive(Clone, Debug, Serialize)]
pub struct DataLossEvent {
    pub key: u64,
    pub at_secs: f64,
}

/// Machine-readable durability totals for the fault experiments.
#[derive(Clone, Debug, Default, Serialize)]
pub struct DurabilitySummary {
    pub unavailability_windows: usize,
    pub unresolved_windows: usize,
    pub total_unavailable_secs: f64,
    /// Mean repair time over *resolved* windows (0 when none closed).
    pub mttr_secs: f64,
    pub max_window_secs: f64,
    pub data_loss_events: usize,
    pub repair_bytes: u64,
}

/// Durability ledger for fault-injection runs: per-object (block)
/// unavailability windows, permanent-loss events, and repair traffic.
///
/// An object becomes *unavailable* when its last live replica disappears
/// but a copy may still return (a crashed-but-restartable disk holds
/// it); it becomes *lost* when no copy can ever return. Windows close
/// when a replica reappears (node restart, re-replication, or erasure
/// reconstruction).
#[derive(Clone, Debug, Default)]
pub struct DurabilityLog {
    open: std::collections::BTreeMap<u64, f64>,
    windows: Vec<UnavailabilityWindow>,
    lost: Vec<DataLossEvent>,
    lost_keys: std::collections::BTreeSet<u64>,
    repair_bytes: u64,
}

impl DurabilityLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// The object's last live replica vanished but may still come back.
    pub fn mark_unavailable(&mut self, key: u64, t: SimTime) {
        if self.lost_keys.contains(&key) {
            return;
        }
        self.open.entry(key).or_insert_with(|| t.as_secs_f64());
    }

    /// A replica of the object is live again; closes the open window.
    pub fn mark_available(&mut self, key: u64, t: SimTime) {
        if let Some(start) = self.open.remove(&key) {
            self.windows.push(UnavailabilityWindow {
                key,
                start_secs: start,
                end_secs: t.as_secs_f64(),
                unresolved: false,
            });
        }
    }

    /// The object is permanently gone. Any open window is closed as
    /// unresolved and further events for the key are ignored.
    pub fn mark_lost(&mut self, key: u64, t: SimTime) {
        if !self.lost_keys.insert(key) {
            return;
        }
        let at = t.as_secs_f64();
        if let Some(start) = self.open.remove(&key) {
            self.windows.push(UnavailabilityWindow {
                key,
                start_secs: start,
                end_secs: at,
                unresolved: true,
            });
        }
        self.lost.push(DataLossEvent { key, at_secs: at });
    }

    /// Whether [`mark_lost`](Self::mark_lost) has already recorded a
    /// permanent loss for `key` (further events for it are ignored).
    pub fn is_lost(&self, key: u64) -> bool {
        self.lost_keys.contains(&key)
    }

    /// The object was deleted on purpose; drop its open window (an
    /// intentional delete is not an outage).
    pub fn forget(&mut self, key: u64) {
        self.open.remove(&key);
    }

    /// Account bytes moved by repair work (re-replication after loss,
    /// erasure reconstruction) — not by regular client traffic.
    pub fn add_repair_bytes(&mut self, bytes: u64) {
        self.repair_bytes += bytes;
    }

    /// Close every still-open window at `t` (end of run).
    pub fn finalize(&mut self, t: SimTime) {
        let keys: Vec<u64> = self.open.keys().copied().collect();
        for key in keys {
            let start = self.open.remove(&key).expect("open window");
            self.windows.push(UnavailabilityWindow {
                key,
                start_secs: start,
                end_secs: t.as_secs_f64(),
                unresolved: true,
            });
        }
    }

    pub fn open_windows(&self) -> usize {
        self.open.len()
    }
    pub fn windows(&self) -> &[UnavailabilityWindow] {
        &self.windows
    }
    pub fn loss_events(&self) -> &[DataLossEvent] {
        &self.lost
    }
    pub fn repair_bytes(&self) -> u64 {
        self.repair_bytes
    }

    /// The ledger's complete state, f64 seconds bit-encoded, for
    /// checkpointing. Restores through
    /// [`set_state`](Self::set_state) bit-exactly.
    pub fn state(&self) -> DurabilityState {
        DurabilityState {
            open: self.open.iter().map(|(&k, &v)| (k, v.to_bits())).collect(),
            windows: self
                .windows
                .iter()
                .map(|w| {
                    (
                        w.key,
                        w.start_secs.to_bits(),
                        w.end_secs.to_bits(),
                        w.unresolved,
                    )
                })
                .collect(),
            lost: self
                .lost
                .iter()
                .map(|l| (l.key, l.at_secs.to_bits()))
                .collect(),
            repair_bytes: self.repair_bytes,
        }
    }

    /// Overwrite the ledger with a captured [`state`](Self::state).
    pub fn set_state(&mut self, state: DurabilityState) {
        self.open = state
            .open
            .into_iter()
            .map(|(k, v)| (k, f64::from_bits(v)))
            .collect();
        self.windows = state
            .windows
            .into_iter()
            .map(|(key, start, end, unresolved)| UnavailabilityWindow {
                key,
                start_secs: f64::from_bits(start),
                end_secs: f64::from_bits(end),
                unresolved,
            })
            .collect();
        self.lost_keys = state.lost.iter().map(|&(k, _)| k).collect();
        self.lost = state
            .lost
            .into_iter()
            .map(|(key, at)| DataLossEvent {
                key,
                at_secs: f64::from_bits(at),
            })
            .collect();
        self.repair_bytes = state.repair_bytes;
    }

    pub fn summary(&self) -> DurabilitySummary {
        let resolved: Vec<&UnavailabilityWindow> =
            self.windows.iter().filter(|w| !w.unresolved).collect();
        let mttr = if resolved.is_empty() {
            0.0
        } else {
            resolved.iter().map(|w| w.duration_secs()).sum::<f64>() / resolved.len() as f64
        };
        DurabilitySummary {
            unavailability_windows: self.windows.len(),
            unresolved_windows: self.windows.iter().filter(|w| w.unresolved).count()
                + self.open.len(),
            // fold from +0.0: an empty `Iterator::sum` yields -0.0,
            // which leaks into reports and JSON
            total_unavailable_secs: self
                .windows
                .iter()
                .map(UnavailabilityWindow::duration_secs)
                .fold(0.0, |a, b| a + b),
            mttr_secs: mttr,
            max_window_secs: self
                .windows
                .iter()
                .map(UnavailabilityWindow::duration_secs)
                .fold(0.0, f64::max),
            data_loss_events: self.lost.len(),
            repair_bytes: self.repair_bytes,
        }
    }
}

/// A [`DurabilityLog`]'s complete state with every `f64` as raw IEEE-754
/// bits, so checkpoint round trips are bit-exact.
#[derive(Clone, Debug, Default)]
pub struct DurabilityState {
    pub open: Vec<(u64, u64)>,
    /// `(key, start_bits, end_bits, unresolved)` per closed window.
    pub windows: Vec<(u64, u64, u64, bool)>,
    /// `(key, at_bits)` per loss event, in recording order.
    pub lost: Vec<(u64, u64)>,
    pub repair_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_and_quantile() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.push(i as f64 / 10.0);
        }
        assert_eq!(h.total(), 100);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 100);
        let median = h.quantile(0.5);
        assert!((median - 5.0).abs() <= 1.0, "median {median}");
    }

    #[test]
    fn histogram_overflow_underflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-1.0);
        h.push(2.0);
        h.push(0.5);
        assert_eq!(h.total(), 3);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 1);
        assert_eq!(h.quantile(0.0), 0.0); // underflow pins to lo
    }

    #[test]
    fn cdf_curve_monotone_and_complete() {
        let mut c = Cdf::new();
        for i in 0..1000 {
            c.push((i % 97) as f64);
        }
        let curve = c.curve(50);
        assert_eq!(curve.len(), 50);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be monotone");
        }
        assert!((curve.last().expect("non-empty").1 - 1.0).abs() < 1e-12);
        assert!((c.fraction_leq(96.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn timeseries_sample_and_hold() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(0), 1.0);
        ts.record(SimTime::from_secs(10), 5.0);
        ts.record(SimTime::from_secs(20), 3.0);
        assert_eq!(ts.value_at(-1.0), None);
        assert_eq!(ts.value_at(5.0), Some(1.0));
        assert_eq!(ts.value_at(10.0), Some(5.0));
        assert_eq!(ts.value_at(100.0), Some(3.0));
        assert_eq!(ts.max_value(), Some(5.0));
        let rs = ts.resample(3);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[0].1, 1.0);
        assert_eq!(rs[2].1, 3.0);
    }

    #[test]
    fn counters() {
        let mut c = Counters::new();
        c.bump("local");
        c.add("local", 2);
        c.bump("remote");
        assert_eq!(c.get("local"), 3);
        assert_eq!(c.get("remote"), 1);
        assert_eq!(c.get("missing"), 0);
        assert_eq!(c.iter().count(), 2);
    }

    #[test]
    fn durability_window_lifecycle() {
        let mut d = DurabilityLog::new();
        d.mark_unavailable(7, SimTime::from_secs(10));
        // double-mark keeps the original start
        d.mark_unavailable(7, SimTime::from_secs(12));
        assert_eq!(d.open_windows(), 1);
        d.mark_available(7, SimTime::from_secs(25));
        assert_eq!(d.open_windows(), 0);
        assert_eq!(d.windows().len(), 1);
        let w = &d.windows()[0];
        assert_eq!(w.key, 7);
        assert!((w.duration_secs() - 15.0).abs() < 1e-9);
        assert!(!w.unresolved);
        // available without an open window is a no-op
        d.mark_available(7, SimTime::from_secs(30));
        assert_eq!(d.windows().len(), 1);
        let s = d.summary();
        assert_eq!(s.unavailability_windows, 1);
        assert!((s.mttr_secs - 15.0).abs() < 1e-9);
        assert_eq!(s.data_loss_events, 0);
    }

    #[test]
    fn durability_loss_is_terminal() {
        let mut d = DurabilityLog::new();
        d.mark_unavailable(1, SimTime::from_secs(5));
        d.mark_lost(1, SimTime::from_secs(9));
        assert_eq!(d.loss_events().len(), 1);
        assert_eq!(d.windows().len(), 1);
        assert!(d.windows()[0].unresolved);
        // once lost, further transitions are ignored
        d.mark_unavailable(1, SimTime::from_secs(20));
        d.mark_lost(1, SimTime::from_secs(21));
        assert_eq!(d.open_windows(), 0);
        assert_eq!(d.loss_events().len(), 1);
        // direct loss without a prior window also records
        d.mark_lost(2, SimTime::from_secs(30));
        assert_eq!(d.loss_events().len(), 2);
        assert_eq!(d.summary().data_loss_events, 2);
    }

    #[test]
    fn durability_forget_and_finalize() {
        let mut d = DurabilityLog::new();
        d.mark_unavailable(1, SimTime::from_secs(1));
        d.mark_unavailable(2, SimTime::from_secs(2));
        d.forget(1); // intentional delete: no window
        d.finalize(SimTime::from_secs(10));
        assert_eq!(d.windows().len(), 1);
        assert!(d.windows()[0].unresolved);
        assert_eq!(d.windows()[0].key, 2);
        let s = d.summary();
        assert_eq!(s.unresolved_windows, 1);
        assert!((s.total_unavailable_secs - 8.0).abs() < 1e-9);
        assert_eq!(s.mttr_secs, 0.0, "no resolved windows");
    }

    #[test]
    fn durability_repair_bytes_accumulate() {
        let mut d = DurabilityLog::new();
        d.add_repair_bytes(100);
        d.add_repair_bytes(50);
        assert_eq!(d.repair_bytes(), 150);
        assert_eq!(d.summary().repair_bytes, 150);
    }

    #[test]
    fn durability_state_round_trips() {
        let mut d = DurabilityLog::new();
        d.mark_unavailable(1, SimTime::from_secs(5));
        d.mark_available(1, SimTime::from_secs(9));
        d.mark_unavailable(2, SimTime::from_secs(6));
        d.mark_lost(3, SimTime::from_secs(7));
        d.add_repair_bytes(64);

        let mut r = DurabilityLog::new();
        r.set_state(d.state());
        assert_eq!(r.open_windows(), 1);
        assert_eq!(r.windows().len(), d.windows().len());
        assert_eq!(r.loss_events().len(), 1);
        assert_eq!(r.repair_bytes(), 64);
        // lost keys restored: further events on key 3 stay ignored
        r.mark_unavailable(3, SimTime::from_secs(20));
        assert_eq!(r.open_windows(), 1);
        // open window restored with its original start
        r.mark_available(2, SimTime::from_secs(10));
        let w = r.windows().last().unwrap();
        assert!((w.duration_secs() - 4.0).abs() < 1e-12);
    }
}
