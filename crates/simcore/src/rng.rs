//! Deterministic randomness and the distributions the workloads use.
//!
//! Every stochastic component takes a [`DetRng`] (or a seed) explicitly;
//! nothing in the workspace touches thread-local or OS entropy, so a
//! figure run is reproducible from its command line alone. The generator
//! is self-contained (xoshiro256++ seeded via SplitMix64) — no external
//! crates — which also pins the exact stream across toolchains.
//!
//! The SWIM-like trace synthesiser needs three distribution families:
//! Zipf (file popularity — HDFS access patterns are heavy-tailed, paper
//! Section V), lognormal (file sizes), and exponential (job inter-arrival
//! times).

/// A seeded small-state RNG (xoshiro256++). Not cryptographic, but fast
/// and with more than enough quality for simulation.
pub struct DetRng {
    s: [u64; 4],
    /// Spare normal sample from the last Box–Muller draw.
    cached_normal: Option<f64>,
}

impl DetRng {
    pub fn new(seed: u64) -> Self {
        // Expand the seed with SplitMix64, as the xoshiro authors advise.
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(x);
        }
        DetRng {
            s,
            cached_normal: None,
        }
    }

    /// Derive an independent child stream. Mixing with SplitMix64 keeps
    /// children decorrelated even for adjacent labels.
    pub fn fork(&mut self, label: u64) -> DetRng {
        let base = self.gen_u64();
        DetRng::new(splitmix64(base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    pub fn gen_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.gen_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = (hi - lo) as u64;
        lo + (self.gen_u64() % span) as usize
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Zipf-distributed rank in `[0, n)`: rank 0 is the most popular item.
    ///
    /// Rejection-inversion sampling (Hörmann & Derflinger 1996), O(1) per
    /// draw for any exponent > 0, including s = 1.
    pub fn zipf(&mut self, n: usize, exponent: f64) -> usize {
        debug_assert!(n > 0);
        debug_assert!(exponent > 0.0);
        let s = exponent;
        let n_f = n as f64;
        let hx1 = h_integral(1.5, s) - 1.0;
        let hxn = h_integral(n_f + 0.5, s);
        loop {
            let u = hxn + self.gen_f64() * (hx1 - hxn);
            let x = h_integral_inv(u, s);
            let k = x.round().clamp(1.0, n_f);
            if u >= h_integral(k + 0.5, s) - h(k, s) {
                return k as usize - 1;
            }
        }
    }

    /// Exponential inter-arrival sample with the given mean (inverse CDF).
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = 1.0 - self.gen_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Standard normal sample (Box–Muller, caching the spare draw).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.cached_normal.take() {
            return z;
        }
        let u1 = (1.0 - self.gen_f64()).max(f64::MIN_POSITIVE); // (0, 1]
        let u2 = self.gen_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Lognormal sample with the given parameters of the underlying normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        debug_assert!(sigma >= 0.0);
        (mu + sigma * self.normal()).exp()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element, or `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_range(0, items.len())])
        }
    }

    /// The full internal state: the four xoshiro256++ words plus the
    /// cached spare normal from the last Box–Muller draw (bit-encoded,
    /// `None` ↦ absent). Feeding this to [`set_state`](Self::set_state)
    /// reproduces the stream exactly from this point, which is what
    /// checkpoint/restore needs — re-seeding would rewind the stream to
    /// its origin instead.
    pub fn state(&self) -> RngState {
        RngState {
            s: self.s,
            cached_normal: self.cached_normal.map(f64::to_bits),
        }
    }

    /// Overwrite the generator with a previously captured
    /// [`state`](Self::state).
    pub fn set_state(&mut self, state: RngState) {
        self.s = state.s;
        self.cached_normal = state.cached_normal.map(f64::from_bits);
    }

    /// Rebuild a generator directly from a captured state.
    pub fn from_state(state: RngState) -> Self {
        DetRng {
            s: state.s,
            cached_normal: state.cached_normal.map(f64::from_bits),
        }
    }
}

/// A [`DetRng`]'s complete serialisable state.
///
/// The spare normal is stored as raw IEEE-754 bits so a round trip is
/// bit-exact even through text formats that would otherwise re-parse the
/// float.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngState {
    pub s: [u64; 4],
    pub cached_normal: Option<u64>,
}

/// `H(x) = ∫₁ˣ t^(-s) dt`, the Zipf sampler's continuous envelope.
fn h_integral(x: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-9 {
        x.ln()
    } else {
        ((1.0 - s) * x.ln()).exp_m1() / (1.0 - s)
    }
}

/// The density `h(x) = x^(-s)`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of [`h_integral`] in `x`.
fn h_integral_inv(u: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-9 {
        u.exp()
    } else {
        (1.0 + u * (1.0 - s)).powf(1.0 / (1.0 - s))
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.gen_u64() == b.gen_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn forks_are_deterministic_and_decorrelated() {
        let mut parent1 = DetRng::new(7);
        let mut parent2 = DetRng::new(7);
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        assert_eq!(c1.gen_u64(), c2.gen_u64());
        let mut c3 = parent1.fork(4);
        assert_ne!(c1.gen_u64(), c3.gen_u64());
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut rng = DetRng::new(9);
        let n = 1000;
        let mut counts = vec![0u32; n];
        for _ in 0..20_000 {
            counts[rng.zipf(n, 1.1)] += 1;
        }
        let head: u32 = counts[..10].iter().sum();
        let tail: u32 = counts[n - 10..].iter().sum();
        assert!(head > 20 * tail.max(1), "head={head} tail={tail}");
        // every sample must be a valid index (implicitly checked by the loop)
    }

    #[test]
    fn zipf_near_one_exponent_is_stable() {
        let mut rng = DetRng::new(10);
        for _ in 0..5_000 {
            let r = rng.zipf(100, 1.0);
            assert!(r < 100);
        }
    }

    #[test]
    fn exp_mean_is_close() {
        let mut rng = DetRng::new(11);
        let mean = 5.0;
        let s: f64 = (0..50_000).map(|_| rng.exp(mean)).sum();
        let observed = s / 50_000.0;
        assert!((observed - mean).abs() < 0.2, "observed {observed}");
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut rng = DetRng::new(13);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.lognormal(0.0, 1.5)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(mean > median, "lognormal mean should exceed median");
    }

    #[test]
    fn normal_is_roughly_standard() {
        let mut rng = DetRng::new(15);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty() {
        let mut rng = DetRng::new(19);
        let empty: &[u32] = &[];
        assert!(rng.choose(empty).is_none());
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(23);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut rng = DetRng::new(29);
        // Burn an odd number of normal draws so a spare Box–Muller
        // sample is cached — the subtle half of the state.
        for _ in 0..7 {
            rng.normal();
        }
        for _ in 0..100 {
            rng.gen_u64();
        }
        let state = rng.state();
        assert!(state.cached_normal.is_some());

        let mut copy = DetRng::from_state(state);
        let mut other = DetRng::new(0);
        other.set_state(state);
        for _ in 0..200 {
            let expected = rng.gen_u64();
            assert_eq!(copy.gen_u64(), expected);
            assert_eq!(other.gen_u64(), expected);
        }
        assert_eq!(rng.normal().to_bits(), copy.normal().to_bits());
    }
}
