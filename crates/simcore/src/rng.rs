//! Deterministic randomness and the distributions the workloads use.
//!
//! Every stochastic component takes a [`DetRng`] (or a seed) explicitly;
//! nothing in the workspace touches thread-local or OS entropy, so a
//! figure run is reproducible from its command line alone.
//!
//! The SWIM-like trace synthesiser needs three distribution families:
//! Zipf (file popularity — HDFS access patterns are heavy-tailed, paper
//! Section V), lognormal (file sizes), and exponential (job inter-arrival
//! times).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp, LogNormal, Zipf};

/// A seeded small-state RNG. `SmallRng` (xoshiro) is not cryptographic but
/// is fast and has more than enough quality for simulation.
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream. Mixing with SplitMix64 keeps
    /// children decorrelated even for adjacent labels.
    pub fn fork(&mut self, label: u64) -> DetRng {
        let base: u64 = self.inner.gen();
        DetRng::new(splitmix64(base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    pub fn gen_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Zipf-distributed rank in `[0, n)`: rank 0 is the most popular item.
    pub fn zipf(&mut self, n: usize, exponent: f64) -> usize {
        debug_assert!(n > 0);
        let z = Zipf::new(n as u64, exponent).expect("valid zipf params");
        (z.sample(&mut self.inner) as usize).saturating_sub(1).min(n - 1)
    }

    /// Exponential inter-arrival sample with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        Exp::new(1.0 / mean).expect("valid rate").sample(&mut self.inner)
    }

    /// Lognormal sample with the given parameters of the underlying normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        LogNormal::new(mu, sigma)
            .expect("valid lognormal params")
            .sample(&mut self.inner)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element, or `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_range(0, items.len())])
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.gen_u64() == b.gen_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn forks_are_deterministic_and_decorrelated() {
        let mut parent1 = DetRng::new(7);
        let mut parent2 = DetRng::new(7);
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        assert_eq!(c1.gen_u64(), c2.gen_u64());
        let mut c3 = parent1.fork(4);
        assert_ne!(c1.gen_u64(), c3.gen_u64());
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut rng = DetRng::new(9);
        let n = 1000;
        let mut counts = vec![0u32; n];
        for _ in 0..20_000 {
            counts[rng.zipf(n, 1.1)] += 1;
        }
        let head: u32 = counts[..10].iter().sum();
        let tail: u32 = counts[n - 10..].iter().sum();
        assert!(head > 20 * tail.max(1), "head={head} tail={tail}");
        // every sample must be a valid index (implicitly checked by the loop)
    }

    #[test]
    fn exp_mean_is_close() {
        let mut rng = DetRng::new(11);
        let mean = 5.0;
        let s: f64 = (0..50_000).map(|_| rng.exp(mean)).sum();
        let observed = s / 50_000.0;
        assert!((observed - mean).abs() < 0.2, "observed {observed}");
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut rng = DetRng::new(13);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.lognormal(0.0, 1.5)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(mean > median, "lognormal mean should exceed median");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty() {
        let mut rng = DetRng::new(19);
        let empty: &[u32] = &[];
        assert!(rng.choose(empty).is_none());
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(23);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
