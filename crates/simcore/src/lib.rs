//! `simcore` — foundation for the ERMS reproduction's discrete-event
//! simulations.
//!
//! The crate contains no HDFS- or ERMS-specific *logic*; it provides
//! the things every substrate in the workspace needs:
//!
//! * [`time`] — a nanosecond-resolution simulated clock ([`SimTime`],
//!   [`SimDuration`]) with total ordering and saturating arithmetic,
//! * [`arena`] — generational arenas ([`arena::Arena`],
//!   [`arena::Handle`]) backing the columnar, dense-id state tables of
//!   the simulators; stale handles are detected, never silently re-read,
//! * [`queue`] — a deterministic, cancellable event queue
//!   ([`EventQueue`]) plus a closure-based orchestration engine
//!   ([`engine::Engine`]),
//! * [`rng`] — seeded, reproducible random sources and the heavy-tailed
//!   distributions the workloads are built from,
//! * [`stats`] — online statistics, histograms, CDF and time-series
//!   recorders used by every experiment harness,
//! * [`telemetry`] — a zero-cost-when-disabled structured event tracer
//!   ([`telemetry::TelemetrySink`], the [`trace!`] macro) plus a
//!   metrics registry with deterministic snapshot order. The event
//!   vocabulary is domain-shaped but carries only primitive fields, so
//!   `simcore` stays dependency-free at the bottom of the DAG,
//! * [`profiler`] — a zero-cost-when-disabled hierarchical wall-clock
//!   self-profiler ([`prof_scope!`]) whose snapshot *shape* is
//!   deterministic while its timing weights are host-dependent,
//! * [`spans`] — the read side of the trace: a JSONL decoder, a
//!   [`spans::SpanCollector`] that pairs events into causal spans by
//!   correlation id, and an online invariant oracle
//!   ([`spans::oracle::TraceOracle`]) that checks a trace against the
//!   system's own rules event by event.
//!
//! Determinism is a design requirement: two runs with the same seed must
//! produce byte-identical figure output, so the event queue breaks time
//! ties by insertion sequence and all randomness flows through [`rng::DetRng`].
//!
//! ```
//! use simcore::{EventQueue, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.schedule(SimTime::from_secs(2), "flow done");
//! let boot = queue.schedule(SimTime::from_secs(1), "node booted");
//! queue.cancel(boot); // lazy O(1) cancellation
//! assert_eq!(queue.pop(), Some((SimTime::from_secs(2), "flow done")));
//! assert_eq!(queue.now(), SimTime::from_secs(2));
//! ```

pub mod arena;
pub mod engine;
pub mod profiler;
pub mod queue;
pub mod rng;
pub mod spans;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod units;

pub use arena::{Arena, Handle};
pub use engine::Engine;
pub use queue::{EventId, EventQueue};
pub use rng::DetRng;
pub use spans::{SpanCollector, SpanKind, SpanReport};
pub use telemetry::{Event as TelemetryEvent, MetricsRegistry, TelemetrySink, TracedEvent};
pub use time::{SimDuration, SimTime};
