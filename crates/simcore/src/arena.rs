//! Generational arenas: dense, columnar storage behind typed handles.
//!
//! The simulator's core tables (namespace files, block locations,
//! per-node replica lists) are keyed by dense integer ids minted from
//! monotone counters, which makes a `Vec` column the natural layout —
//! O(1) access, no hashing, cache-friendly scans in id order. The
//! remaining hazard of raw indices is the ABA problem: slot 7 is freed,
//! re-used for a new record, and a stale index silently reads the new
//! occupant. [`Arena`] closes that hole with a **generation check**:
//! every slot carries a generation counter bumped on removal, and a
//! [`Handle`] only resolves while its generation matches. A stale
//! handle after a delete is an observable `None`, never a silent hit.
//!
//! Determinism: iteration is in slot-index order, insertion re-uses the
//! lowest freed slot first, and nothing in the structure depends on
//! hashing — the same operation sequence always produces the same
//! layout, which keeps traces byte-stable across runs.
//!
//! ```
//! use simcore::arena::Arena;
//!
//! let mut files: Arena<String> = Arena::new();
//! let h = files.insert("/logs/a".to_string());
//! assert_eq!(files.get(h).map(String::as_str), Some("/logs/a"));
//!
//! files.remove(h);
//! assert_eq!(files.get(h), None, "stale handle is an error, not a hit");
//!
//! let h2 = files.insert("/logs/b".to_string());
//! assert_eq!(h2.index(), h.index(), "slot re-used...");
//! assert_ne!(h2, h, "...but the old handle still misses");
//! ```

use std::fmt;
use std::marker::PhantomData;

/// A typed, generation-checked reference into an [`Arena<T>`].
///
/// Two `u32`s: the slot index and the generation the slot had when this
/// handle was minted. Copyable, ordered by (index, generation), and
/// `!Send`-agnostic (it is plain data). The type parameter exists only
/// to keep handles from different arenas apart at compile time; it
/// imposes no bounds on `T`.
pub struct Handle<T> {
    index: u32,
    generation: u32,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Handle<T> {
    /// The raw slot index. Stable for the handle's lifetime; re-used by
    /// later inserts after removal (with a different generation).
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The generation this handle was minted under.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Rebuild a handle from its raw parts (checkpoint hydration). The
    /// handle is only valid if the arena's slot still has this
    /// generation — `get` returns `None` otherwise, so a forged or
    /// stale pair cannot silently alias a live record.
    pub fn from_raw(index: u32, generation: u32) -> Self {
        Handle {
            index,
            generation,
            _marker: PhantomData,
        }
    }
}

// Manual impls: derive would bound them on `T`, but a handle is plain
// data regardless of what it points at.
impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Handle<T> {}
impl<T> PartialEq for Handle<T> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index && self.generation == other.generation
    }
}
impl<T> Eq for Handle<T> {}
impl<T> PartialOrd for Handle<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Handle<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.index, self.generation).cmp(&(other.index, other.generation))
    }
}
impl<T> std::hash::Hash for Handle<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.index.hash(state);
        self.generation.hash(state);
    }
}
impl<T> fmt::Debug for Handle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Handle({}v{})", self.index, self.generation)
    }
}

#[derive(Debug, Clone)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A generational arena: `Vec`-backed slots, freed slots re-used
/// lowest-index first, every access generation-checked.
///
/// See the [module docs](self) for the why and the determinism
/// guarantees.
#[derive(Debug, Clone)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    /// Freed slot indices, kept sorted descending so `pop` hands out
    /// the lowest index first (deterministic re-use order).
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }
}

impl<T> Arena<T> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots (live + freed); the column length.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Store `value`, returning its handle. Re-uses the lowest freed
    /// slot, or appends a new one.
    pub fn insert(&mut self, value: T) -> Handle<T> {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none());
            slot.value = Some(value);
            return Handle::from_raw(index, slot.generation);
        }
        let index = u32::try_from(self.slots.len()).expect("arena exceeds u32 slots");
        self.slots.push(Slot {
            generation: 0,
            value: Some(value),
        });
        Handle::from_raw(index, 0)
    }

    /// The value behind `handle`, or `None` if it was removed (or the
    /// slot was since re-used — the generation check catches both).
    pub fn get(&self, handle: Handle<T>) -> Option<&T> {
        let slot = self.slots.get(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        slot.value.as_ref()
    }

    pub fn get_mut(&mut self, handle: Handle<T>) -> Option<&mut T> {
        let slot = self.slots.get_mut(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        slot.value.as_mut()
    }

    /// Whether `handle` still resolves.
    pub fn contains(&self, handle: Handle<T>) -> bool {
        self.get(handle).is_some()
    }

    /// Remove and return the value behind `handle`. The slot's
    /// generation is bumped, invalidating every outstanding copy of the
    /// handle; a second `remove` with the same handle returns `None`.
    pub fn remove(&mut self, handle: Handle<T>) -> Option<T> {
        let slot = self.slots.get_mut(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        let value = slot.value.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.len -= 1;
        // Keep the free list sorted descending so the lowest index is
        // re-used first.
        let pos = self
            .free
            .binary_search_by(|&i| handle.index.cmp(&i))
            .unwrap_or_else(|p| p);
        self.free.insert(pos, handle.index);
        Some(value)
    }

    /// Iterate live `(handle, &value)` pairs in slot-index order.
    pub fn iter(&self) -> impl Iterator<Item = (Handle<T>, &T)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, slot)| {
            slot.value
                .as_ref()
                .map(|v| (Handle::from_raw(i as u32, slot.generation), v))
        })
    }

    /// Iterate live values mutably, in slot-index order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Handle<T>, &mut T)> + '_ {
        self.slots.iter_mut().enumerate().filter_map(|(i, slot)| {
            let generation = slot.generation;
            slot.value
                .as_mut()
                .map(move |v| (Handle::from_raw(i as u32, generation), v))
        })
    }

    /// Drop every value and reset to empty (generations restart too —
    /// only do this when no handles survive, e.g. checkpoint load).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.len = 0;
    }
}

impl<T> FromIterator<T> for Arena<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut arena = Arena::new();
        for value in iter {
            arena.insert(value);
        }
        arena
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut a = Arena::new();
        let h1 = a.insert(10);
        let h2 = a.insert(20);
        assert_eq!(a.get(h1), Some(&10));
        assert_eq!(a.get(h2), Some(&20));
        assert_eq!(a.len(), 2);
        *a.get_mut(h1).unwrap() = 11;
        assert_eq!(a.get(h1), Some(&11));
    }

    #[test]
    fn stale_handle_after_delete_misses() {
        let mut a = Arena::new();
        let h = a.insert("x");
        assert_eq!(a.remove(h), Some("x"));
        assert_eq!(a.get(h), None, "stale read must not resolve");
        assert_eq!(a.get_mut(h), None);
        assert_eq!(a.remove(h), None, "double free must not resolve");
        assert!(!a.contains(h));
    }

    #[test]
    fn reused_slot_does_not_alias_old_handle() {
        let mut a = Arena::new();
        let old = a.insert(1);
        a.remove(old);
        let new = a.insert(2);
        assert_eq!(new.index(), old.index(), "slot is re-used");
        assert_ne!(new.generation(), old.generation());
        assert_eq!(a.get(old), None, "old handle must miss the new value");
        assert_eq!(a.get(new), Some(&2));
    }

    #[test]
    fn reuse_is_lowest_index_first() {
        let mut a = Arena::new();
        let hs: Vec<_> = (0..4).map(|i| a.insert(i)).collect();
        a.remove(hs[2]);
        a.remove(hs[0]);
        let r1 = a.insert(10);
        let r2 = a.insert(11);
        assert_eq!(r1.index(), 0, "lowest freed slot first");
        assert_eq!(r2.index(), 2);
    }

    #[test]
    fn iteration_is_in_index_order() {
        let mut a = Arena::new();
        let hs: Vec<_> = (0..5).map(|i| a.insert(i * 10)).collect();
        a.remove(hs[1]);
        a.remove(hs[3]);
        let seen: Vec<i32> = a.iter().map(|(_, &v)| v).collect();
        assert_eq!(seen, vec![0, 20, 40]);
        let idx: Vec<u32> = a.iter().map(|(h, _)| h.index()).collect();
        assert_eq!(idx, vec![0, 2, 4]);
    }

    #[test]
    fn from_raw_respects_generation() {
        let mut a = Arena::new();
        let h = a.insert(7);
        let forged = Handle::<i32>::from_raw(h.index(), h.generation() + 1);
        assert_eq!(a.get(forged), None);
        let out_of_range = Handle::<i32>::from_raw(99, 0);
        assert_eq!(a.get(out_of_range), None);
    }

    #[test]
    fn clear_resets() {
        let mut a = Arena::new();
        let h = a.insert(1);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.get(h), None);
    }
}
