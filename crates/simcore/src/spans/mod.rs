//! The read side of the telemetry trace: spans and invariants.
//!
//! [`telemetry`](crate::telemetry) is write-only — it serializes the
//! causal chain as JSONL and stops there. This module turns the stream
//! back into structure:
//!
//! * [`parse_jsonl`] decodes a trace (hand-rolled flat-JSON decoder, so
//!   `simcore` stays dependency-free) back into [`TracedEvent`]s,
//! * [`SpanCollector`] pairs events into causal [`Span`]s by correlation
//!   id — read/write sessions, copy streams, Condor task lifecycles
//!   (queued → dispatched → retries → finished) and per-file elastic
//!   episodes (boost → shed, encode → decode) — and keeps the per-file
//!   data-class transition timeline,
//! * [`oracle::TraceOracle`] checks the stream event-by-event against
//!   the system's own rules (liveness, replication bounds, RS layout,
//!   verdict/action causality, sequence monotonicity).
//!
//! Everything here is deterministic: reports iterate sorted maps and
//! percentiles come from exact sorted-duration ranks, so two same-seed
//! traces summarize byte-identically.
//!
//! ```
//! use simcore::spans::{parse_jsonl, SpanCollector, SpanKind};
//! use simcore::telemetry::{Event, TelemetrySink};
//! use simcore::{trace, SimTime};
//!
//! let sink = TelemetrySink::recording();
//! trace!(sink, SimTime::from_secs(1), Event::ReadStarted {
//!     read: 0,
//!     path: "/hot/a".into(),
//! });
//! trace!(sink, SimTime::from_secs(3), Event::ReadFinished {
//!     read: 0,
//!     path: "/hot/a".into(),
//!     bytes: 64,
//!     failed: false,
//! });
//! let events = parse_jsonl(&sink.drain_jsonl()).unwrap();
//! let report = SpanCollector::collect(&events);
//! assert_eq!(report.count(SpanKind::Read), 1);
//! assert_eq!(report.latency(SpanKind::Read).p50, 2.0);
//! ```

pub mod oracle;

use crate::telemetry::{Event, TracedEvent};
use crate::time::SimTime;
use std::collections::BTreeMap;
use std::fmt;

// ---------------------------------------------------------------------
// JSONL decoding

/// A malformed line in a JSONL trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number within the input.
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A well-formed trace line whose event kind this build does not know —
/// skipped by the lenient parser so older tools survive newer traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedLine {
    /// 1-based line number within the input.
    pub line: usize,
    /// The unrecognized `"ev"` tag.
    pub kind: String,
}

/// Decode a JSONL trace (as produced by
/// [`TelemetrySink::drain_jsonl`](crate::telemetry::TelemetrySink::drain_jsonl))
/// back into events. Empty lines are skipped. Malformed lines — bad
/// JSON, or a *known* event kind with missing fields — are errors (the
/// trace format is ours, so that leniency would only hide emitter
/// bugs); a well-formed line with an *unknown* kind is silently skipped
/// so an older build keeps working on traces that carry newer event
/// vocabulary. Use [`parse_jsonl_lenient`] to learn what was skipped.
pub fn parse_jsonl(input: &str) -> Result<Vec<TracedEvent>, ParseError> {
    parse_jsonl_lenient(input).map(|(events, _)| events)
}

/// Like [`parse_jsonl`], but also reports the unknown-kind lines it
/// skipped so callers (e.g. `trace-tools`) can warn about them. The
/// oracle's sequence invariant requires strictly *increasing* `seq`,
/// not contiguous, so a trace with skipped lines still checks clean.
pub fn parse_jsonl_lenient(
    input: &str,
) -> Result<(Vec<TracedEvent>, Vec<SkippedLine>), ParseError> {
    let mut out = Vec::new();
    let mut skipped = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(ParsedLine::Event(ev)) => out.push(ev),
            Ok(ParsedLine::UnknownKind(kind)) => skipped.push(SkippedLine {
                line: idx + 1,
                kind,
            }),
            Err(message) => {
                return Err(ParseError {
                    line: idx + 1,
                    message,
                })
            }
        }
    }
    Ok((out, skipped))
}

/// One decoded scalar JSON value (the trace encoding is flat).
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    Str(String),
    UInt(u64),
    Num(f64),
    Bool(bool),
    Null,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Cursor {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.bump() {
            Some(b) if b == want => Ok(()),
            other => Err(format!(
                "expected '{}' at byte {}, found {:?}",
                want as char,
                self.pos.saturating_sub(1),
                other.map(|b| b as char)
            )),
        }
    }

    /// Parse a JSON string; the cursor sits on the opening quote.
    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| format!("bad hex digit '{}'", d as char))?;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid \\u{code:04x} escape"))?,
                        );
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                // multi-byte UTF-8 sequences pass through untouched
                Some(b) => {
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(b)?;
                        let end = start + len;
                        let chunk = self
                            .bytes
                            .get(start..end)
                            .ok_or("truncated UTF-8 sequence")?;
                        out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_scalar(&mut self) -> Result<Scalar, String> {
        match self.peek() {
            Some(b'"') => Ok(Scalar::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Scalar::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Scalar::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Scalar::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                while self.peek().is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
                if text.bytes().all(|b| b.is_ascii_digit()) {
                    if let Ok(v) = text.parse::<u64>() {
                        return Ok(Scalar::UInt(v));
                    }
                }
                text.parse::<f64>()
                    .map(Scalar::Num)
                    .map_err(|_| format!("bad number '{text}'"))
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Scalar) -> Result<Scalar, String> {
        for want in word.bytes() {
            if self.bump() != Some(want) {
                return Err(format!("bad literal (expected '{word}')"));
            }
        }
        Ok(value)
    }
}

fn utf8_len(lead: u8) -> Result<usize, String> {
    match lead {
        0xC0..=0xDF => Ok(2),
        0xE0..=0xEF => Ok(3),
        0xF0..=0xF7 => Ok(4),
        _ => Err(format!("invalid UTF-8 lead byte {lead:#x}")),
    }
}

/// The decoded key/value pairs of one trace line.
struct Obj(Vec<(String, Scalar)>);

impl Obj {
    fn get(&self, key: &str) -> Option<&Scalar> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        match self.get(key) {
            Some(Scalar::UInt(v)) => Ok(*v),
            _ => Err(format!("field `{key}` missing or not an unsigned integer")),
        }
    }

    fn u32(&self, key: &str) -> Result<u32, String> {
        u32::try_from(self.u64(key)?).map_err(|_| format!("field `{key}` exceeds u32"))
    }

    fn opt_u32(&self, key: &str) -> Result<Option<u32>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(_) => Ok(Some(self.u32(key)?)),
        }
    }

    fn f64(&self, key: &str) -> Result<f64, String> {
        match self.get(key) {
            Some(Scalar::Num(v)) => Ok(*v),
            Some(Scalar::UInt(v)) => Ok(*v as f64),
            // non-finite floats serialize as null
            Some(Scalar::Null) => Ok(f64::NAN),
            _ => Err(format!("field `{key}` missing or not a number")),
        }
    }

    fn str(&self, key: &str) -> Result<String, String> {
        match self.get(key) {
            Some(Scalar::Str(v)) => Ok(v.clone()),
            _ => Err(format!("field `{key}` missing or not a string")),
        }
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key) {
            Some(Scalar::Bool(v)) => Ok(*v),
            _ => Err(format!("field `{key}` missing or not a bool")),
        }
    }
}

/// One decoded trace line: an event, or a structurally valid line whose
/// kind this build does not recognize.
enum ParsedLine {
    Event(TracedEvent),
    UnknownKind(String),
}

fn parse_line(line: &str) -> Result<ParsedLine, String> {
    let mut cur = Cursor::new(line.trim());
    cur.expect(b'{')?;
    let mut fields = Vec::new();
    if cur.peek() != Some(b'}') {
        loop {
            let key = cur.parse_string()?;
            cur.expect(b':')?;
            let value = cur.parse_scalar()?;
            fields.push((key, value));
            match cur.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    } else {
        cur.bump();
    }
    if cur.peek().is_some() {
        return Err("trailing bytes after object".into());
    }
    let obj = Obj(fields);
    let kind = obj.str("ev")?;
    // the envelope must still decode, so a skipped line is provably a
    // trace line (and not arbitrary garbage hiding behind leniency)
    let time = SimTime::from_nanos(obj.u64("t_ns")?);
    let seq = obj.u64("seq")?;
    match event_from(&kind, &obj).map_err(|e| format!("{kind}: {e}"))? {
        Some(event) => Ok(ParsedLine::Event(TracedEvent { time, seq, event })),
        None => Ok(ParsedLine::UnknownKind(kind)),
    }
}

/// Decode the typed event for `kind`; `Ok(None)` when the kind is not
/// in this build's vocabulary (the lenient parser skips such lines).
fn event_from(kind: &str, o: &Obj) -> Result<Option<Event>, String> {
    let ev = match kind {
        "read_started" => Event::ReadStarted {
            read: o.u64("read")?,
            path: o.str("path")?,
        },
        "read_finished" => Event::ReadFinished {
            read: o.u64("read")?,
            path: o.str("path")?,
            bytes: o.u64("bytes")?,
            failed: o.bool("failed")?,
        },
        "write_started" => Event::WriteStarted {
            write: o.u64("write")?,
            path: o.str("path")?,
            replication: o.u32("replication")?,
        },
        "write_finished" => Event::WriteFinished {
            write: o.u64("write")?,
            path: o.str("path")?,
            bytes: o.u64("bytes")?,
            failed: o.bool("failed")?,
        },
        "copy_dispatched" => Event::CopyDispatched {
            copy: o.u64("copy")?,
            block: o.u64("block")?,
            source: o.u32("source")?,
            target: o.u32("target")?,
        },
        "reconstruct_dispatched" => Event::ReconstructDispatched {
            copy: o.u64("copy")?,
            block: o.u64("block")?,
            sources: o.u64("sources")?,
            target: o.u32("target")?,
        },
        "copy_completed" => Event::CopyCompleted {
            copy: o.u64("copy")?,
            block: o.u64("block")?,
            target: o.u32("target")?,
        },
        "fault_applied" => Event::FaultApplied {
            kind: o.str("kind")?,
            node: o.opt_u32("node")?,
            rack: o.opt_u32("rack")?,
        },
        "repair_scan" => Event::RepairScan {
            under_replicated: o.u64("under_replicated")?,
            over_replicated: o.u64("over_replicated")?,
            dark_shards: o.u64("dark_shards")?,
        },
        "corruption_injected" => Event::CorruptionInjected {
            block: o.u64("block")?,
            node: o.u32("node")?,
            kind: o.str("kind")?,
        },
        "corruption_detected" => Event::CorruptionDetected {
            block: o.u64("block")?,
            node: o.u32("node")?,
            via: o.str("via")?,
        },
        "corrupt_quarantined" => Event::CorruptQuarantined {
            block: o.u64("block")?,
            node: o.u32("node")?,
        },
        "corrupt_repaired" => Event::CorruptRepaired {
            block: o.u64("block")?,
            via: o.str("via")?,
        },
        "scrub_progress" => Event::ScrubProgress {
            scanned: o.u64("scanned")?,
            cursor: o.u64("cursor")?,
            found: o.u64("found")?,
        },
        "data_loss" => Event::DataLoss {
            block: o.u64("block")?,
            live_replicas: o.u64("live_replicas")?,
            clean_retained: o.u64("clean_retained")?,
        },
        "window_emit" => Event::WindowEmit {
            query: o.str("query")?,
            group: o.str("group")?,
            value: o.f64("value")?,
        },
        "verdict" => Event::Verdict {
            path: o.str("path")?,
            verdict: o.str("verdict")?,
            file_sessions: o.f64("file_sessions")?,
            max_block_sessions: o.f64("max_block_sessions")?,
            replicas: o.u32("replicas")?,
        },
        "replication_boost" => Event::ReplicationBoost {
            path: o.str("path")?,
            from: o.u32("from")?,
            to: o.u32("to")?,
            sessions: o.f64("sessions")?,
        },
        "replication_shed" => Event::ReplicationShed {
            path: o.str("path")?,
            from: o.u32("from")?,
            to: o.u32("to")?,
        },
        "encode_cold" => Event::EncodeCold {
            path: o.str("path")?,
            stripes: o.u32("stripes")?,
            parities: o.u32("parities")?,
        },
        "decode_cold" => Event::DecodeCold {
            path: o.str("path")?,
        },
        "self_heal" => Event::SelfHeal {
            action: o.str("action")?,
            detail: o.str("detail")?,
        },
        "standby_power" => Event::StandbyPower {
            node: o.u32("node")?,
            on: o.bool("on")?,
        },
        "task_queued" => Event::TaskQueued {
            job: o.u64("job")?,
            priority: o.str("priority")?,
        },
        "task_dispatched" => Event::TaskDispatched {
            job: o.u64("job")?,
            attempt: o.u32("attempt")?,
        },
        "task_retry" => Event::TaskRetry {
            job: o.u64("job")?,
            attempt: o.u32("attempt")?,
            delay_ns: o.u64("delay_ns")?,
        },
        "task_finished" => Event::TaskFinished {
            job: o.u64("job")?,
            ok: o.bool("ok")?,
        },
        _ => return Ok(None),
    };
    Ok(Some(ev))
}

// ---------------------------------------------------------------------
// Spans

/// The causal span families reconstructed from a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// `read_started` → `read_finished`, keyed by read id.
    Read,
    /// `write_started` → `write_finished`, keyed by write id.
    Write,
    /// `copy_dispatched` → `copy_completed`, keyed by copy id — retried
    /// repairs of the same `(block, target)` are distinct spans.
    Copy,
    /// `task_queued` → `task_finished`, keyed by job id; dispatches and
    /// retries in between fold into the span's event count.
    Task,
    /// A per-file elastic episode: `replication_boost` → matching
    /// `replication_shed`, or `encode_cold` → `decode_cold`.
    Episode,
}

impl SpanKind {
    pub const ALL: [SpanKind; 5] = [
        SpanKind::Read,
        SpanKind::Write,
        SpanKind::Copy,
        SpanKind::Task,
        SpanKind::Episode,
    ];

    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Read => "read",
            SpanKind::Write => "write",
            SpanKind::Copy => "copy",
            SpanKind::Task => "task",
            SpanKind::Episode => "episode",
        }
    }
}

/// One reconstructed causal span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub kind: SpanKind,
    /// Stable identity, e.g. `read:12`, `copy:3`, `boost:/hot/a`.
    pub key: String,
    pub start: SimTime,
    pub end: SimTime,
    /// `false` when the closing event reported failure.
    pub ok: bool,
    /// Events folded into the span (a task span counts its dispatches
    /// and retries; a repeated boost extends the open episode).
    pub events: u32,
}

impl Span {
    pub fn secs(&self) -> f64 {
        self.end.since(self.start).as_secs_f64()
    }
}

/// Exact latency statistics over the completed spans of one kind.
///
/// Percentiles are nearest-rank over the sorted durations (no
/// interpolation), so they are a pure function of the span set and
/// byte-stable across same-seed runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    pub count: u64,
    pub failed: u64,
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub max: f64,
}

#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    start: SimTime,
    events: u32,
}

/// Streaming span reconstruction over a trace.
///
/// Feed events in order via [`SpanCollector::observe`] (live, from a
/// sink drain, or from [`parse_jsonl`]) and call
/// [`SpanCollector::finish`] for the report. The collector is lenient —
/// unmatched closings are dropped and duplicate openings overwrite —
/// because flagging those is the [`oracle`]'s job.
#[derive(Debug, Default)]
pub struct SpanCollector {
    open_reads: BTreeMap<u64, OpenSpan>,
    open_writes: BTreeMap<u64, OpenSpan>,
    open_copies: BTreeMap<u64, OpenSpan>,
    open_tasks: BTreeMap<u64, OpenSpan>,
    open_boosts: BTreeMap<String, OpenSpan>,
    open_encodes: BTreeMap<String, OpenSpan>,
    spans: Vec<Span>,
    event_counts: BTreeMap<&'static str, u64>,
    transitions: BTreeMap<String, Vec<(SimTime, String)>>,
    first: Option<SimTime>,
    last: SimTime,
    events: u64,
}

impl SpanCollector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstruct spans from a complete trace in one call.
    pub fn collect(events: &[TracedEvent]) -> SpanReport {
        let mut c = SpanCollector::new();
        for ev in events {
            c.observe(ev);
        }
        c.finish()
    }

    pub fn observe(&mut self, ev: &TracedEvent) {
        self.events += 1;
        self.first.get_or_insert(ev.time);
        self.last = self.last.max(ev.time);
        *self.event_counts.entry(ev.event.kind()).or_insert(0) += 1;
        let t = ev.time;
        match &ev.event {
            Event::ReadStarted { read, .. } => {
                self.open_reads.insert(
                    *read,
                    OpenSpan {
                        start: t,
                        events: 1,
                    },
                );
            }
            Event::ReadFinished { read, failed, .. } => {
                if let Some(o) = self.open_reads.remove(read) {
                    self.close(SpanKind::Read, format!("read:{read}"), o, t, !failed);
                }
            }
            Event::WriteStarted { write, .. } => {
                self.open_writes.insert(
                    *write,
                    OpenSpan {
                        start: t,
                        events: 1,
                    },
                );
            }
            Event::WriteFinished { write, failed, .. } => {
                if let Some(o) = self.open_writes.remove(write) {
                    self.close(SpanKind::Write, format!("write:{write}"), o, t, !failed);
                }
            }
            Event::CopyDispatched { copy, .. } => {
                self.open_copies.insert(
                    *copy,
                    OpenSpan {
                        start: t,
                        events: 1,
                    },
                );
            }
            Event::CopyCompleted { copy, .. } => {
                if let Some(o) = self.open_copies.remove(copy) {
                    self.close(SpanKind::Copy, format!("copy:{copy}"), o, t, true);
                }
            }
            Event::TaskQueued { job, .. } => {
                self.open_tasks.insert(
                    *job,
                    OpenSpan {
                        start: t,
                        events: 1,
                    },
                );
            }
            Event::TaskDispatched { job, .. } | Event::TaskRetry { job, .. } => {
                if let Some(o) = self.open_tasks.get_mut(job) {
                    o.events += 1;
                }
            }
            Event::TaskFinished { job, ok } => {
                if let Some(o) = self.open_tasks.remove(job) {
                    self.close(SpanKind::Task, format!("task:{job}"), o, t, *ok);
                }
            }
            Event::Verdict { path, verdict, .. } => {
                let timeline = self.transitions.entry(path.clone()).or_default();
                if timeline.last().map(|(_, v)| v.as_str()) != Some(verdict.as_str()) {
                    timeline.push((t, verdict.clone()));
                }
            }
            Event::ReplicationBoost { path, .. } => {
                match self.open_boosts.get_mut(path) {
                    // a re-boost extends the episode already in flight
                    Some(o) => o.events += 1,
                    None => {
                        self.open_boosts.insert(
                            path.clone(),
                            OpenSpan {
                                start: t,
                                events: 1,
                            },
                        );
                    }
                }
            }
            Event::ReplicationShed { path, .. } => {
                if let Some(o) = self.open_boosts.remove(path) {
                    self.close(SpanKind::Episode, format!("boost:{path}"), o, t, true);
                }
            }
            Event::EncodeCold { path, .. } => {
                self.open_encodes.insert(
                    path.clone(),
                    OpenSpan {
                        start: t,
                        events: 1,
                    },
                );
            }
            Event::DecodeCold { path } => {
                if let Some(o) = self.open_encodes.remove(path) {
                    self.close(SpanKind::Episode, format!("encoded:{path}"), o, t, true);
                }
            }
            _ => {}
        }
    }

    fn close(&mut self, kind: SpanKind, key: String, open: OpenSpan, end: SimTime, ok: bool) {
        self.spans.push(Span {
            kind,
            key,
            start: open.start,
            end,
            ok,
            events: open.events + 1,
        });
    }

    /// Finalize: completed spans stay, still-open ones are reported
    /// separately with `end` pinned to the last trace instant.
    pub fn finish(self) -> SpanReport {
        let last = self.last;
        let mut open = Vec::new();
        let by_id = [
            (SpanKind::Read, "read", self.open_reads),
            (SpanKind::Write, "write", self.open_writes),
            (SpanKind::Copy, "copy", self.open_copies),
            (SpanKind::Task, "task", self.open_tasks),
        ];
        for (kind, tag, map) in by_id {
            for (id, o) in map {
                open.push(Span {
                    kind,
                    key: format!("{tag}:{id}"),
                    start: o.start,
                    end: last,
                    ok: false,
                    events: o.events,
                });
            }
        }
        let by_path = [("boost", self.open_boosts), ("encoded", self.open_encodes)];
        for (tag, map) in by_path {
            for (path, o) in map {
                open.push(Span {
                    kind: SpanKind::Episode,
                    key: format!("{tag}:{path}"),
                    start: o.start,
                    end: last,
                    ok: false,
                    events: o.events,
                });
            }
        }
        SpanReport {
            spans: self.spans,
            open,
            event_counts: self.event_counts,
            transitions: self.transitions,
            first: self.first.unwrap_or(SimTime::ZERO),
            last,
            events: self.events,
        }
    }
}

/// Everything [`SpanCollector`] reconstructed from one trace.
#[derive(Debug, Clone, Default)]
pub struct SpanReport {
    /// Completed spans, in completion order.
    pub spans: Vec<Span>,
    /// Spans still open when the trace ended (`ok == false`, `end` is
    /// the last trace instant), sorted by kind then key.
    pub open: Vec<Span>,
    /// Per-event-kind occurrence counts, lexicographic by kind.
    pub event_counts: BTreeMap<&'static str, u64>,
    /// Per-file data-class timeline: the verdict stream deduplicated to
    /// its transitions, e.g. `normal → hot → cooled → normal`.
    pub transitions: BTreeMap<String, Vec<(SimTime, String)>>,
    /// First and last event instants (both `ZERO` on an empty trace).
    pub first: SimTime,
    pub last: SimTime,
    /// Total events observed.
    pub events: u64,
}

impl SpanReport {
    /// Completed spans of `kind`.
    pub fn count(&self, kind: SpanKind) -> usize {
        self.spans.iter().filter(|s| s.kind == kind).count()
    }

    /// Exact nearest-rank latency summary over completed spans of `kind`.
    pub fn latency(&self, kind: SpanKind) -> LatencySummary {
        let mut nanos: Vec<u64> = Vec::new();
        let mut failed = 0u64;
        let mut sum = 0.0f64;
        for s in self.spans.iter().filter(|s| s.kind == kind) {
            let d = s.end.since(s.start).as_nanos();
            nanos.push(d);
            sum += d as f64 / 1e9;
            if !s.ok {
                failed += 1;
            }
        }
        if nanos.is_empty() {
            return LatencySummary::default();
        }
        nanos.sort_unstable();
        let secs = |q: f64| -> f64 {
            let rank = ((q * nanos.len() as f64).ceil() as usize).clamp(1, nanos.len());
            nanos[rank - 1] as f64 / 1e9
        };
        LatencySummary {
            count: nanos.len() as u64,
            failed,
            mean: sum / nanos.len() as f64,
            p50: secs(0.50),
            p95: secs(0.95),
            p99: secs(0.99),
            max: *nanos.last().expect("non-empty") as f64 / 1e9,
        }
    }

    /// The `n` files with the most data-class transitions, ranked by
    /// transition count (desc) then path — the "hottest" files in the
    /// elastic sense.
    pub fn hottest_files(&self, n: usize) -> Vec<(&str, &[(SimTime, String)])> {
        let mut ranked: Vec<(&str, &[(SimTime, String)])> = self
            .transitions
            .iter()
            .map(|(p, t)| (p.as_str(), t.as_slice()))
            .collect();
        ranked.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(b.0)));
        ranked.truncate(n);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::TelemetrySink;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn traced(seq: u64, secs: u64, event: Event) -> TracedEvent {
        TracedEvent {
            time: t(secs),
            seq,
            event,
        }
    }

    #[test]
    fn jsonl_round_trips_every_event_kind() {
        let sink = TelemetrySink::recording();
        let all = vec![
            Event::ReadStarted {
                read: 1,
                path: "/a \"q\"\n\u{1}".into(),
            },
            Event::ReadFinished {
                read: 1,
                path: "/α/β".into(),
                bytes: 7,
                failed: true,
            },
            Event::WriteStarted {
                write: 2,
                path: "/w".into(),
                replication: 3,
            },
            Event::WriteFinished {
                write: 2,
                path: "/w".into(),
                bytes: 9,
                failed: false,
            },
            Event::CopyDispatched {
                copy: 3,
                block: 40,
                source: 1,
                target: 2,
            },
            Event::CopyCompleted {
                copy: 3,
                block: 40,
                target: 2,
            },
            Event::FaultApplied {
                kind: "crash".into(),
                node: Some(4),
                rack: None,
            },
            Event::FaultApplied {
                kind: "rack_outage".into(),
                node: None,
                rack: Some(1),
            },
            Event::RepairScan {
                under_replicated: 1,
                over_replicated: 2,
                dark_shards: 3,
            },
            Event::CorruptionInjected {
                block: 40,
                node: 4,
                kind: "torn_write".into(),
            },
            Event::CorruptionDetected {
                block: 40,
                node: 4,
                via: "scrub".into(),
            },
            Event::CorruptQuarantined { block: 40, node: 4 },
            Event::CorruptRepaired {
                block: 40,
                via: "reconstruct".into(),
            },
            Event::ScrubProgress {
                scanned: 16,
                cursor: 41,
                found: 1,
            },
            Event::DataLoss {
                block: 40,
                live_replicas: 0,
                clean_retained: 0,
            },
            Event::WindowEmit {
                query: "q".into(),
                group: "g".into(),
                value: 1.25,
            },
            Event::Verdict {
                path: "/v".into(),
                verdict: "hot".into(),
                file_sessions: 10.5,
                max_block_sessions: 3.0,
                replicas: 3,
            },
            Event::ReplicationBoost {
                path: "/v".into(),
                from: 3,
                to: 6,
                sessions: 10.5,
            },
            Event::ReplicationShed {
                path: "/v".into(),
                from: 6,
                to: 3,
            },
            Event::EncodeCold {
                path: "/c".into(),
                stripes: 2,
                parities: 8,
            },
            Event::DecodeCold { path: "/c".into() },
            Event::SelfHeal {
                action: "evict".into(),
                detail: "n3".into(),
            },
            Event::StandbyPower { node: 9, on: true },
            Event::TaskQueued {
                job: 5,
                priority: "immediate".into(),
            },
            Event::TaskDispatched { job: 5, attempt: 1 },
            Event::TaskRetry {
                job: 5,
                attempt: 1,
                delay_ns: 1_000,
            },
            Event::TaskFinished { job: 5, ok: true },
        ];
        for (i, ev) in all.iter().enumerate() {
            sink.emit(t(i as u64), ev.clone());
        }
        let parsed = parse_jsonl(&sink.drain_jsonl()).unwrap();
        assert_eq!(parsed.len(), all.len());
        for (i, (parsed, original)) in parsed.iter().zip(&all).enumerate() {
            assert_eq!(&parsed.event, original, "event {i}");
            assert_eq!(parsed.seq, i as u64);
            assert_eq!(parsed.time, t(i as u64));
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_jsonl(
            "{\"t_ns\":0,\"seq\":0,\"ev\":\"decode_cold\",\"path\":\"/x\"}\nnot json\n",
        )
        .unwrap_err();
        assert_eq!(err.line, 2);

        let err = parse_jsonl("{\"t_ns\":0,\"seq\":0,\"ev\":\"read_started\",\"path\":\"/x\"}")
            .unwrap_err();
        assert!(err.message.contains("`read`"), "missing id flagged: {err}");
    }

    #[test]
    fn unknown_event_kinds_are_skipped_not_fatal() {
        // a trace from a newer build: one event this build knows, one it
        // doesn't — the known event survives, the other is reported
        let input = "{\"t_ns\":0,\"seq\":0,\"ev\":\"decode_cold\",\"path\":\"/x\"}\n\
                     {\"t_ns\":1,\"seq\":1,\"ev\":\"quantum_heal\",\"qubits\":3}\n\
                     {\"t_ns\":2,\"seq\":2,\"ev\":\"read_started\",\"read\":7,\"path\":\"/y\"}\n";
        let (events, skipped) = parse_jsonl_lenient(input).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].seq, 2, "seq gap survives (oracle allows gaps)");
        assert_eq!(
            skipped,
            vec![SkippedLine {
                line: 2,
                kind: "quantum_heal".into()
            }]
        );
        // the plain parser drops them silently
        assert_eq!(parse_jsonl(input).unwrap().len(), 2);

        // an unknown kind still needs a valid envelope — garbage stays fatal
        let err = parse_jsonl("{\"ev\":\"mystery\"}").unwrap_err();
        assert!(err.message.contains("t_ns"), "{err}");
    }

    #[test]
    fn retried_copies_pair_by_copy_id_not_block_target() {
        // two repairs of the same (block, target): the first dies with
        // its node and never completes, the retry succeeds. Distinct
        // copy ids keep the spans from colliding.
        let events = vec![
            traced(
                0,
                10,
                Event::CopyDispatched {
                    copy: 7,
                    block: 1,
                    source: 0,
                    target: 2,
                },
            ),
            traced(
                1,
                11,
                Event::CopyDispatched {
                    copy: 8,
                    block: 1,
                    source: 3,
                    target: 2,
                },
            ),
            traced(
                2,
                15,
                Event::CopyCompleted {
                    copy: 8,
                    block: 1,
                    target: 2,
                },
            ),
        ];
        let report = SpanCollector::collect(&events);
        assert_eq!(report.count(SpanKind::Copy), 1);
        assert_eq!(report.spans[0].key, "copy:8");
        assert_eq!(
            report.spans[0].secs(),
            4.0,
            "retry measured from its own dispatch"
        );
        assert_eq!(report.open.len(), 1, "abandoned first attempt stays open");
        assert_eq!(report.open[0].key, "copy:7");
        assert!(!report.open[0].ok);
    }

    #[test]
    fn task_spans_fold_retries_and_keep_outcome() {
        let events = vec![
            traced(
                0,
                1,
                Event::TaskQueued {
                    job: 3,
                    priority: "immediate".into(),
                },
            ),
            traced(1, 2, Event::TaskDispatched { job: 3, attempt: 1 }),
            traced(
                2,
                4,
                Event::TaskRetry {
                    job: 3,
                    attempt: 1,
                    delay_ns: 5,
                },
            ),
            traced(3, 9, Event::TaskDispatched { job: 3, attempt: 2 }),
            traced(4, 12, Event::TaskFinished { job: 3, ok: false }),
        ];
        let report = SpanCollector::collect(&events);
        assert_eq!(report.count(SpanKind::Task), 1);
        let span = &report.spans[0];
        assert_eq!(span.key, "task:3");
        assert_eq!(span.secs(), 11.0, "queued at 1, finished at 12");
        assert_eq!(span.events, 5, "queued + 2 dispatches + retry + finish");
        assert!(!span.ok);
        let lat = report.latency(SpanKind::Task);
        assert_eq!(lat.count, 1);
        assert_eq!(lat.failed, 1);
        assert_eq!(lat.p99, 11.0);
    }

    #[test]
    fn elastic_episodes_span_boost_to_shed_and_encode_to_decode() {
        let events = vec![
            traced(
                0,
                5,
                Event::ReplicationBoost {
                    path: "/h".into(),
                    from: 3,
                    to: 6,
                    sessions: 9.0,
                },
            ),
            traced(
                1,
                8,
                Event::ReplicationBoost {
                    path: "/h".into(),
                    from: 6,
                    to: 8,
                    sessions: 14.0,
                },
            ),
            traced(
                2,
                65,
                Event::ReplicationShed {
                    path: "/h".into(),
                    from: 8,
                    to: 3,
                },
            ),
            traced(
                3,
                100,
                Event::EncodeCold {
                    path: "/c".into(),
                    stripes: 1,
                    parities: 4,
                },
            ),
            traced(4, 400, Event::DecodeCold { path: "/c".into() }),
        ];
        let report = SpanCollector::collect(&events);
        assert_eq!(report.count(SpanKind::Episode), 2);
        let boost = report.spans.iter().find(|s| s.key == "boost:/h").unwrap();
        assert_eq!(boost.secs(), 60.0, "episode runs from FIRST boost to shed");
        assert_eq!(boost.events, 3, "re-boost folded in");
        let encoded = report.spans.iter().find(|s| s.key == "encoded:/c").unwrap();
        assert_eq!(encoded.secs(), 300.0);
    }

    #[test]
    fn verdict_stream_dedupes_to_class_transitions() {
        let verdict = |seq, secs, class: &str| {
            traced(
                seq,
                secs,
                Event::Verdict {
                    path: "/f".into(),
                    verdict: class.into(),
                    file_sessions: 0.0,
                    max_block_sessions: 0.0,
                    replicas: 3,
                },
            )
        };
        let events = vec![
            verdict(0, 0, "normal"),
            verdict(1, 30, "normal"),
            verdict(2, 60, "hot"),
            verdict(3, 90, "hot"),
            verdict(4, 120, "cooled"),
            verdict(5, 150, "normal"),
        ];
        let report = SpanCollector::collect(&events);
        let timeline = &report.transitions["/f"];
        let classes: Vec<&str> = timeline.iter().map(|(_, c)| c.as_str()).collect();
        assert_eq!(classes, ["normal", "hot", "cooled", "normal"]);
        assert_eq!(report.hottest_files(1)[0].0, "/f");
    }

    #[test]
    fn latency_percentiles_are_nearest_rank() {
        let mut events = Vec::new();
        // 100 reads, durations 1s..=100s
        for i in 0..100u64 {
            events.push(traced(
                2 * i,
                1000 + i,
                Event::ReadStarted {
                    read: i,
                    path: "/f".into(),
                },
            ));
            events.push(traced(
                2 * i + 1,
                1000 + i + (i + 1),
                Event::ReadFinished {
                    read: i,
                    path: "/f".into(),
                    bytes: 1,
                    failed: false,
                },
            ));
        }
        let report = SpanCollector::collect(&events);
        let lat = report.latency(SpanKind::Read);
        assert_eq!(lat.count, 100);
        assert_eq!(lat.p50, 50.0);
        assert_eq!(lat.p95, 95.0);
        assert_eq!(lat.p99, 99.0);
        assert_eq!(lat.max, 100.0);
        assert_eq!(lat.mean, 50.5);
    }
}
