//! An online trace-invariant oracle.
//!
//! [`TraceOracle`] consumes a telemetry stream event-by-event and checks
//! it against the rules the system claims to uphold — the ERMS paper's
//! classification/action causality (Section III.C), replication bounds,
//! the 1-data-replica + per-stripe-parity cold encoding (Section IV),
//! and the simulator's own liveness and bookkeeping guarantees. Every
//! breach is recorded as a [`Violation`] with the offending event's
//! `seq`, so a failing trace pinpoints the exact line.
//!
//! The oracle is intentionally *sound but not clairvoyant*: it only
//! flags what the event stream itself proves wrong, so it can run
//! attached to a live sink, inside a proptest, or over a JSONL file via
//! the `trace-tools check` CLI — same verdicts everywhere.
//!
//! Invariants checked (by name, as reported in [`Violation::invariant`]):
//!
//! | name | rule |
//! |------|------|
//! | `seq_monotone` | `seq` strictly increases over the trace |
//! | `time_monotone` | event time never goes backwards |
//! | `session_unique` | read/write ids open once, finish only if open |
//! | `copy_unique` | copy ids dispatch once (plain copy or reconstruction), complete only if dispatched |
//! | `copy_live_node` | no copy dispatches from/to — or completes on — a node the trace has declared dead or powered down |
//! | `action_needs_verdict` | every boost follows a hot/normal verdict for the path; every shed follows a cooled verdict |
//! | `replication_bounds` | boosts raise within `(from, max_replication]`; sheds lower to `[default_replication, from)`; verdict replica counts stay in `[1, max_replication]` |
//! | `encoded_layout` | an encode reports `stripes ≥ 1` and exactly `stripes × parities_per_stripe` parities |
//! | `encoded_replicas` | while a file is encoded, every verdict for it sees exactly 1 data replica; encode/decode alternate |
//! | `task_lifecycle` | queued → dispatched(attempt k+1) → retry/finished, never out of order, nothing after a terminal state |
//! | `no_corrupt_source` | no copy dispatches from a replica the trace has flagged corrupt (until a fresh copy lands on that node) |
//! | `corruption_unhandled` | every corruption detection is followed by a quarantine or repair before the trace ends |
//! | `loss_with_live_copies` | a data-loss event may only fire when every copy is dead or corrupt (zero live replicas, zero clean retained copies) |

use crate::telemetry::{Event, TracedEvent};
use crate::time::SimTime;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Deployment constants the oracle checks bounds against.
///
/// Defaults mirror `ErmsConfig::default()`: HDFS default replication 3,
/// elastic ceiling 18, and the paper's RS(10, 4) cold stripe (4 parity
/// shards per stripe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleConfig {
    pub default_replication: u32,
    pub max_replication: u32,
    pub parities_per_stripe: u32,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            default_replication: 3,
            max_replication: 18,
            parities_per_stripe: 4,
        }
    }
}

/// One invariant breach, anchored to the offending event.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    pub seq: u64,
    pub time: SimTime,
    /// Stable invariant name (see the module table).
    pub invariant: &'static str,
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[seq {} @ {}] {}: {}",
            self.seq, self.time, self.invariant, self.detail
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskPhase {
    Queued,
    Running,
    Done,
}

/// Streaming invariant checker over a telemetry trace.
///
/// Feed every event through [`TraceOracle::observe`] (order matters) and
/// read the verdict from [`TraceOracle::violations`]. One-shot checking
/// of a complete trace goes through [`TraceOracle::check`].
#[derive(Debug, Default)]
pub struct TraceOracle {
    cfg: OracleConfig,
    last_seq: Option<u64>,
    last_time: SimTime,
    /// Nodes the trace has declared non-serving (crash/kill, or standby
    /// power-down) and not yet revived.
    down: BTreeSet<u32>,
    open_reads: BTreeSet<u64>,
    open_writes: BTreeSet<u64>,
    open_copies: BTreeMap<u64, u32>, // copy id → target node
    /// Last verdict class seen per path.
    last_verdict: BTreeMap<String, String>,
    encoded: BTreeSet<String>,
    tasks: BTreeMap<u64, (TaskPhase, u32)>, // job → (phase, attempts)
    /// Replicas the trace has proven corrupt: (block, node) pairs from a
    /// detection, cleared when a fresh copy of the block lands on that
    /// node. Nothing may be served (copied) from them in between.
    corrupt: BTreeSet<(u64, u32)>,
    /// Detections not yet answered by a quarantine or repair, keyed to
    /// the detection event's anchor for end-of-trace reporting.
    pending_quarantine: BTreeMap<(u64, u32), (u64, SimTime)>,
    violations: Vec<Violation>,
}

impl TraceOracle {
    pub fn new(cfg: OracleConfig) -> Self {
        TraceOracle {
            cfg,
            ..TraceOracle::default()
        }
    }

    /// Run a complete trace through a fresh oracle and return every
    /// violation found.
    pub fn check<'a>(
        events: impl IntoIterator<Item = &'a TracedEvent>,
        cfg: OracleConfig,
    ) -> Vec<Violation> {
        let mut oracle = TraceOracle::new(cfg);
        for ev in events {
            oracle.observe(ev);
        }
        oracle.into_violations()
    }

    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    pub fn into_violations(mut self) -> Vec<Violation> {
        // end-of-trace accounting: a detection with no quarantine or
        // repair by now can never be answered
        for ((block, node), (seq, time)) in std::mem::take(&mut self.pending_quarantine) {
            self.violations.push(Violation {
                seq,
                time,
                invariant: "corruption_unhandled",
                detail: format!(
                    "corruption of block {block} on node {node} detected but never \
                     quarantined or repaired"
                ),
            });
        }
        self.violations
    }

    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    fn flag(&mut self, ev: &TracedEvent, invariant: &'static str, detail: String) {
        self.violations.push(Violation {
            seq: ev.seq,
            time: ev.time,
            invariant,
            detail,
        });
    }

    pub fn observe(&mut self, ev: &TracedEvent) {
        // ordering invariants first: they anchor everything else
        if let Some(prev) = self.last_seq {
            if ev.seq <= prev {
                self.flag(
                    ev,
                    "seq_monotone",
                    format!("seq {} after {} — not strictly increasing", ev.seq, prev),
                );
            }
        }
        self.last_seq = Some(ev.seq);
        if ev.time < self.last_time {
            self.flag(
                ev,
                "time_monotone",
                format!(
                    "time {} after {} — clock went backwards",
                    ev.time, self.last_time
                ),
            );
        }
        self.last_time = self.last_time.max(ev.time);

        match &ev.event {
            Event::ReadStarted { read, path } => {
                let fresh = self.open_reads.insert(*read);
                if !fresh {
                    self.flag(
                        ev,
                        "session_unique",
                        format!("read {read} ({path}) opened twice"),
                    );
                }
            }
            Event::ReadFinished { read, path, .. } => {
                let was_open = self.open_reads.remove(read);
                if !was_open {
                    self.flag(
                        ev,
                        "session_unique",
                        format!("read {read} ({path}) finished without start"),
                    );
                }
            }
            Event::WriteStarted { write, path, .. } => {
                let fresh = self.open_writes.insert(*write);
                if !fresh {
                    self.flag(
                        ev,
                        "session_unique",
                        format!("write {write} ({path}) opened twice"),
                    );
                }
            }
            Event::WriteFinished { write, path, .. } => {
                let was_open = self.open_writes.remove(write);
                if !was_open {
                    self.flag(
                        ev,
                        "session_unique",
                        format!("write {write} ({path}) finished without start"),
                    );
                }
            }
            Event::CopyDispatched {
                copy,
                block,
                source,
                target,
            } => {
                if self.open_copies.insert(*copy, *target).is_some() {
                    self.flag(ev, "copy_unique", format!("copy {copy} dispatched twice"));
                }
                if self.corrupt.contains(&(*block, *source)) {
                    self.flag(
                        ev,
                        "no_corrupt_source",
                        format!(
                            "copy {copy} of block {block} dispatched from known-corrupt \
                             replica on node {source}"
                        ),
                    );
                }
                for (role, node) in [("source", source), ("target", target)] {
                    if self.down.contains(node) {
                        self.flag(
                            ev,
                            "copy_live_node",
                            format!(
                                "copy {copy} (block {block}) dispatched with dead {role} node {node}"
                            ),
                        );
                    }
                }
            }
            Event::ReconstructDispatched {
                copy,
                block,
                target,
                ..
            } => {
                // shares the copy-id space with plain copies, so the
                // dispatch-once / complete-only-if-dispatched invariant
                // covers reconstructions too; the corrupt-source check
                // does not apply (sources stream sibling stripe blocks,
                // and RS decode verifies them — a rotten shard fails
                // the reconstruction rather than propagating)
                if self.open_copies.insert(*copy, *target).is_some() {
                    self.flag(
                        ev,
                        "copy_unique",
                        format!("reconstruct {copy} dispatched twice"),
                    );
                }
                if self.down.contains(target) {
                    self.flag(
                        ev,
                        "copy_live_node",
                        format!(
                            "reconstruct {copy} (block {block}) dispatched to dead node {target}"
                        ),
                    );
                }
            }
            Event::CopyCompleted {
                copy,
                block,
                target,
            } => {
                if self.open_copies.remove(copy).is_none() {
                    self.flag(
                        ev,
                        "copy_unique",
                        format!("copy {copy} (block {block}) completed without dispatch"),
                    );
                }
                // a fresh, verified copy landed here: the node may hold
                // and serve this block again
                self.corrupt.remove(&(*block, *target));
                if self.down.contains(target) {
                    self.flag(
                        ev,
                        "copy_live_node",
                        format!("copy {copy} (block {block}) completed on dead node {target}"),
                    );
                }
            }
            Event::FaultApplied {
                kind,
                node: Some(n),
                ..
            } => match kind.as_str() {
                "crash" | "kill" | "torn_crash" => {
                    self.down.insert(*n);
                }
                "restart" => {
                    self.down.remove(n);
                }
                // rack outages stall uplinks but keep nodes serving;
                // stragglers only slow them down
                _ => {}
            },
            Event::StandbyPower { node, on } => {
                if *on {
                    self.down.remove(node);
                } else {
                    self.down.insert(*node);
                }
            }
            Event::Verdict {
                path,
                verdict,
                replicas,
                ..
            } => {
                if *replicas < 1 || *replicas > self.cfg.max_replication {
                    self.flag(
                        ev,
                        "replication_bounds",
                        format!(
                            "{path}: verdict sees {replicas} replicas, outside [1, {}]",
                            self.cfg.max_replication
                        ),
                    );
                }
                if self.encoded.contains(path) && *replicas != 1 {
                    self.flag(
                        ev,
                        "encoded_replicas",
                        format!("{path} is RS-encoded but verdict sees {replicas} data replicas"),
                    );
                }
                self.last_verdict.insert(path.clone(), verdict.clone());
            }
            Event::ReplicationBoost { path, from, to, .. } => {
                match self.last_verdict.get(path).map(String::as_str) {
                    Some("hot") | Some("normal") => {}
                    other => self.flag(
                        ev,
                        "action_needs_verdict",
                        format!(
                            "boost of {path} not preceded by a hot/normal verdict (last: {})",
                            other.unwrap_or("none")
                        ),
                    ),
                }
                if to <= from || *to > self.cfg.max_replication {
                    self.flag(
                        ev,
                        "replication_bounds",
                        format!(
                            "boost of {path} {from}→{to} outside ({from}, {}]",
                            self.cfg.max_replication
                        ),
                    );
                }
            }
            Event::ReplicationShed { path, from, to } => {
                match self.last_verdict.get(path).map(String::as_str) {
                    Some("cooled") => {}
                    other => self.flag(
                        ev,
                        "action_needs_verdict",
                        format!(
                            "shed of {path} not preceded by a cooled verdict (last: {})",
                            other.unwrap_or("none")
                        ),
                    ),
                }
                if to >= from || *to < self.cfg.default_replication {
                    self.flag(
                        ev,
                        "replication_bounds",
                        format!(
                            "shed of {path} {from}→{to} outside [{}, {from})",
                            self.cfg.default_replication
                        ),
                    );
                }
            }
            Event::EncodeCold {
                path,
                stripes,
                parities,
            } => {
                if !self.encoded.insert(path.clone()) {
                    self.flag(
                        ev,
                        "encoded_replicas",
                        format!("{path} encoded while already encoded"),
                    );
                }
                let expected = stripes * self.cfg.parities_per_stripe;
                if *stripes < 1 || *parities != expected {
                    self.flag(
                        ev,
                        "encoded_layout",
                        format!(
                            "{path}: {stripes} stripes with {parities} parities, expected {} ({} per stripe)",
                            expected, self.cfg.parities_per_stripe
                        ),
                    );
                }
            }
            Event::DecodeCold { path } => {
                let was_encoded = self.encoded.remove(path);
                if !was_encoded {
                    self.flag(
                        ev,
                        "encoded_replicas",
                        format!("{path} decoded but was not encoded"),
                    );
                }
            }
            Event::TaskQueued { job, .. } => {
                if self.tasks.contains_key(job) {
                    self.flag(ev, "task_lifecycle", format!("job {job} queued twice"));
                }
                self.tasks.insert(*job, (TaskPhase::Queued, 0));
            }
            Event::TaskDispatched { job, attempt } => match self.tasks.get(job).copied() {
                Some((TaskPhase::Queued, attempts)) => {
                    if *attempt != attempts + 1 {
                        self.flag(
                            ev,
                            "task_lifecycle",
                            format!(
                                "job {job} dispatched as attempt {attempt}, expected {}",
                                attempts + 1
                            ),
                        );
                    }
                    self.tasks.insert(*job, (TaskPhase::Running, *attempt));
                }
                Some((state, _)) => {
                    self.flag(
                        ev,
                        "task_lifecycle",
                        format!("job {job} dispatched while {state:?}"),
                    );
                }
                None => self.flag(
                    ev,
                    "task_lifecycle",
                    format!("job {job} dispatched but never queued"),
                ),
            },
            Event::TaskRetry { job, attempt, .. } => match self.tasks.get(job).copied() {
                Some((TaskPhase::Running, attempts)) => {
                    if *attempt != attempts {
                        self.flag(
                            ev,
                            "task_lifecycle",
                            format!(
                                "job {job} retried after attempt {attempt}, but {attempts} dispatched"
                            ),
                        );
                    }
                    self.tasks.insert(*job, (TaskPhase::Queued, attempts));
                }
                other => {
                    let state = other.map(|(p, _)| p);
                    self.flag(
                        ev,
                        "task_lifecycle",
                        format!("job {job} retried while {state:?}"),
                    );
                }
            },
            Event::TaskFinished { job, .. } => match self.tasks.get(job).copied() {
                Some((TaskPhase::Running, attempts)) => {
                    self.tasks.insert(*job, (TaskPhase::Done, attempts));
                }
                other => {
                    let state = other.map(|(p, _)| p);
                    self.flag(
                        ev,
                        "task_lifecycle",
                        format!("job {job} finished while {state:?}"),
                    );
                }
            },
            Event::CorruptionDetected { block, node, .. } => {
                self.corrupt.insert((*block, *node));
                self.pending_quarantine
                    .insert((*block, *node), (ev.seq, ev.time));
            }
            Event::CorruptQuarantined { block, node } => {
                self.pending_quarantine.remove(&(*block, *node));
            }
            Event::CorruptRepaired { block, .. } => {
                // a repair answers every outstanding detection on the block
                self.pending_quarantine.retain(|&(b, _), _| b != *block);
            }
            Event::DataLoss {
                block,
                live_replicas,
                clean_retained,
            } if (*live_replicas > 0 || *clean_retained > 0) => {
                self.flag(
                    ev,
                    "loss_with_live_copies",
                    format!(
                        "block {block} declared lost with {live_replicas} live \
                             replica(s) and {clean_retained} clean retained cop(y/ies)"
                    ),
                );
            }
            // informational events carry no checkable state (yet)
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    struct Trace {
        events: Vec<TracedEvent>,
    }

    impl Trace {
        fn new() -> Self {
            Trace { events: Vec::new() }
        }
        fn push(&mut self, secs: u64, event: Event) -> &mut Self {
            self.events.push(TracedEvent {
                time: t(secs),
                seq: self.events.len() as u64,
                event,
            });
            self
        }
        fn check(&self) -> Vec<Violation> {
            TraceOracle::check(&self.events, OracleConfig::default())
        }
    }

    fn verdict(path: &str, class: &str, replicas: u32) -> Event {
        Event::Verdict {
            path: path.into(),
            verdict: class.into(),
            file_sessions: 0.0,
            max_block_sessions: 0.0,
            replicas,
        }
    }

    #[test]
    fn clean_causal_chain_passes() {
        let mut tr = Trace::new();
        tr.push(0, verdict("/f", "hot", 3))
            .push(
                0,
                Event::ReplicationBoost {
                    path: "/f".into(),
                    from: 3,
                    to: 6,
                    sessions: 9.0,
                },
            )
            .push(
                0,
                Event::TaskQueued {
                    job: 0,
                    priority: "immediate".into(),
                },
            )
            .push(1, Event::TaskDispatched { job: 0, attempt: 1 })
            .push(
                1,
                Event::CopyDispatched {
                    copy: 0,
                    block: 7,
                    source: 1,
                    target: 2,
                },
            )
            .push(
                9,
                Event::CopyCompleted {
                    copy: 0,
                    block: 7,
                    target: 2,
                },
            )
            .push(9, Event::TaskFinished { job: 0, ok: true })
            .push(60, verdict("/f", "cooled", 6))
            .push(
                60,
                Event::ReplicationShed {
                    path: "/f".into(),
                    from: 6,
                    to: 3,
                },
            )
            .push(90, verdict("/c", "cold", 3))
            .push(
                95,
                Event::EncodeCold {
                    path: "/c".into(),
                    stripes: 2,
                    parities: 8,
                },
            )
            .push(120, verdict("/c", "normal", 1));
        assert_eq!(tr.check(), vec![]);
    }

    #[test]
    fn copy_touching_dead_node_is_flagged() {
        let mut tr = Trace::new();
        tr.push(
            0,
            Event::CopyDispatched {
                copy: 0,
                block: 1,
                source: 1,
                target: 2,
            },
        )
        .push(
            1,
            Event::FaultApplied {
                kind: "kill".into(),
                node: Some(2),
                rack: None,
            },
        )
        .push(
            2,
            Event::CopyCompleted {
                copy: 0,
                block: 1,
                target: 2,
            },
        )
        .push(
            3,
            Event::CopyDispatched {
                copy: 1,
                block: 1,
                source: 2,
                target: 3,
            },
        );
        let v = tr.check();
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].invariant, "copy_live_node");
        assert!(v[0].detail.contains("completed on dead node 2"));
        assert!(v[1].detail.contains("dead source node 2"));

        // a restart revives the node — same trace plus recovery is clean
        let mut tr = Trace::new();
        tr.push(
            0,
            Event::FaultApplied {
                kind: "crash".into(),
                node: Some(2),
                rack: None,
            },
        )
        .push(
            5,
            Event::FaultApplied {
                kind: "restart".into(),
                node: Some(2),
                rack: None,
            },
        )
        .push(
            6,
            Event::CopyDispatched {
                copy: 0,
                block: 1,
                source: 1,
                target: 2,
            },
        )
        .push(
            7,
            Event::CopyCompleted {
                copy: 0,
                block: 1,
                target: 2,
            },
        );
        assert_eq!(tr.check(), vec![]);
    }

    #[test]
    fn rack_outage_does_not_kill_nodes() {
        let mut tr = Trace::new();
        tr.push(
            0,
            Event::FaultApplied {
                kind: "rack_outage".into(),
                node: None,
                rack: Some(0),
            },
        )
        .push(
            1,
            Event::CopyDispatched {
                copy: 0,
                block: 1,
                source: 0,
                target: 1,
            },
        )
        .push(
            9,
            Event::CopyCompleted {
                copy: 0,
                block: 1,
                target: 1,
            },
        );
        assert_eq!(tr.check(), vec![], "uplink stall is not node death");
    }

    #[test]
    fn powered_down_standby_cannot_receive_copies() {
        let mut tr = Trace::new();
        tr.push(0, Event::StandbyPower { node: 9, on: false }).push(
            1,
            Event::CopyDispatched {
                copy: 0,
                block: 1,
                source: 1,
                target: 9,
            },
        );
        let v = tr.check();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "copy_live_node");
    }

    #[test]
    fn seq_and_time_must_not_regress() {
        let events = vec![
            TracedEvent {
                time: t(5),
                seq: 3,
                event: verdict("/f", "normal", 3),
            },
            TracedEvent {
                time: t(4),
                seq: 3,
                event: verdict("/f", "normal", 3),
            },
        ];
        let v = TraceOracle::check(&events, OracleConfig::default());
        let names: Vec<&str> = v.iter().map(|v| v.invariant).collect();
        assert_eq!(names, ["seq_monotone", "time_monotone"]);
    }

    #[test]
    fn boost_requires_matching_verdict_and_bounds() {
        let mut tr = Trace::new();
        tr.push(
            0,
            Event::ReplicationBoost {
                path: "/f".into(),
                from: 3,
                to: 6,
                sessions: 1.0,
            },
        );
        let v = tr.check();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "action_needs_verdict");

        let mut tr = Trace::new();
        tr.push(0, verdict("/f", "hot", 3)).push(
            0,
            Event::ReplicationBoost {
                path: "/f".into(),
                from: 3,
                to: 99,
                sessions: 1.0,
            },
        );
        let v = tr.check();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "replication_bounds");

        // shed below the default floor
        let mut tr = Trace::new();
        tr.push(0, verdict("/f", "cooled", 6)).push(
            0,
            Event::ReplicationShed {
                path: "/f".into(),
                from: 6,
                to: 1,
            },
        );
        let v = tr.check();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "replication_bounds");
    }

    #[test]
    fn encoded_files_hold_one_replica_and_full_parity() {
        // wrong parity count for the stripe count
        let mut tr = Trace::new();
        tr.push(
            0,
            Event::EncodeCold {
                path: "/c".into(),
                stripes: 2,
                parities: 4,
            },
        );
        let v = tr.check();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "encoded_layout");

        // replicas must read 1 until decode
        let mut tr = Trace::new();
        tr.push(
            0,
            Event::EncodeCold {
                path: "/c".into(),
                stripes: 1,
                parities: 4,
            },
        )
        .push(30, verdict("/c", "cold", 3))
        .push(60, Event::DecodeCold { path: "/c".into() })
        .push(90, verdict("/c", "cold", 3))
        .push(95, Event::DecodeCold { path: "/c".into() });
        let v = tr.check();
        let names: Vec<&str> = v.iter().map(|v| v.invariant).collect();
        assert_eq!(names, ["encoded_replicas", "encoded_replicas"]);
        assert!(v[0].detail.contains("3 data replicas"));
        assert!(v[1].detail.contains("was not encoded"));
    }

    #[test]
    fn task_lifecycle_is_ordered() {
        let mut tr = Trace::new();
        tr.push(0, Event::TaskDispatched { job: 1, attempt: 1 }) // never queued
            .push(
                1,
                Event::TaskQueued {
                    job: 2,
                    priority: "immediate".into(),
                },
            )
            .push(2, Event::TaskFinished { job: 2, ok: true }) // skipped dispatch
            .push(
                3,
                Event::TaskQueued {
                    job: 3,
                    priority: "immediate".into(),
                },
            )
            .push(4, Event::TaskDispatched { job: 3, attempt: 2 }); // wrong attempt
        let v = tr.check();
        let names: Vec<&str> = v.iter().map(|v| v.invariant).collect();
        assert_eq!(
            names,
            ["task_lifecycle", "task_lifecycle", "task_lifecycle"]
        );
    }

    #[test]
    fn corrupt_replica_cannot_source_copies_until_recopied() {
        let mut tr = Trace::new();
        tr.push(
            0,
            Event::CorruptionDetected {
                block: 7,
                node: 2,
                via: "scrub".into(),
            },
        )
        .push(0, Event::CorruptQuarantined { block: 7, node: 2 })
        .push(
            1,
            Event::CopyDispatched {
                copy: 0,
                block: 7,
                source: 2,
                target: 3,
            },
        );
        let v = tr.check();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "no_corrupt_source");

        // a fresh copy landing on the node clears the taint
        let mut tr = Trace::new();
        tr.push(
            0,
            Event::CorruptionDetected {
                block: 7,
                node: 2,
                via: "read".into(),
            },
        )
        .push(0, Event::CorruptQuarantined { block: 7, node: 2 })
        .push(
            1,
            Event::CopyDispatched {
                copy: 0,
                block: 7,
                source: 1,
                target: 2,
            },
        )
        .push(
            5,
            Event::CopyCompleted {
                copy: 0,
                block: 7,
                target: 2,
            },
        )
        .push(
            6,
            Event::CopyDispatched {
                copy: 1,
                block: 7,
                source: 2,
                target: 4,
            },
        )
        .push(
            9,
            Event::CopyCompleted {
                copy: 1,
                block: 7,
                target: 4,
            },
        );
        assert_eq!(tr.check(), vec![]);
    }

    #[test]
    fn unanswered_detection_is_flagged_at_end_of_trace() {
        let mut tr = Trace::new();
        tr.push(
            3,
            Event::CorruptionDetected {
                block: 9,
                node: 5,
                via: "read".into(),
            },
        );
        let v = tr.check();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "corruption_unhandled");
        assert_eq!(v[0].seq, 0);

        // a repair (without an explicit per-node quarantine) answers it
        let mut tr = Trace::new();
        tr.push(
            3,
            Event::CorruptionDetected {
                block: 9,
                node: 5,
                via: "scrub".into(),
            },
        )
        .push(
            8,
            Event::CorruptRepaired {
                block: 9,
                via: "copy".into(),
            },
        );
        assert_eq!(tr.check(), vec![]);
    }

    #[test]
    fn data_loss_requires_all_copies_dead_or_corrupt() {
        let mut tr = Trace::new();
        tr.push(
            0,
            Event::DataLoss {
                block: 4,
                live_replicas: 1,
                clean_retained: 0,
            },
        )
        .push(
            1,
            Event::DataLoss {
                block: 5,
                live_replicas: 0,
                clean_retained: 2,
            },
        )
        .push(
            2,
            Event::DataLoss {
                block: 6,
                live_replicas: 0,
                clean_retained: 0,
            },
        );
        let v = tr.check();
        let names: Vec<&str> = v.iter().map(|v| v.invariant).collect();
        assert_eq!(names, ["loss_with_live_copies", "loss_with_live_copies"]);
    }

    #[test]
    fn torn_crash_downs_the_node_like_a_crash() {
        let mut tr = Trace::new();
        tr.push(
            0,
            Event::FaultApplied {
                kind: "torn_crash".into(),
                node: Some(2),
                rack: None,
            },
        )
        .push(
            1,
            Event::CopyDispatched {
                copy: 0,
                block: 1,
                source: 1,
                target: 2,
            },
        );
        let v = tr.check();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "copy_live_node");
    }

    #[test]
    fn retried_task_round_trips_cleanly() {
        let mut tr = Trace::new();
        tr.push(
            0,
            Event::TaskQueued {
                job: 5,
                priority: "immediate".into(),
            },
        )
        .push(1, Event::TaskDispatched { job: 5, attempt: 1 })
        .push(
            2,
            Event::TaskRetry {
                job: 5,
                attempt: 1,
                delay_ns: 10,
            },
        )
        .push(3, Event::TaskDispatched { job: 5, attempt: 2 })
        .push(4, Event::TaskFinished { job: 5, ok: false });
        assert_eq!(tr.check(), vec![]);
    }
}
