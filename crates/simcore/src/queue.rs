//! Deterministic, cancellable event queue.
//!
//! [`EventQueue`] is the heart of every discrete-event loop in the
//! workspace. Two properties matter:
//!
//! * **Determinism** — events scheduled for the same instant pop in
//!   insertion order (a monotone sequence number breaks ties), so a run
//!   is a pure function of its inputs and seed.
//! * **Cancellation** — the flow-level network model reschedules a
//!   transfer's completion every time the bandwidth share on its path
//!   changes; cancellation is lazy (a tombstone set) so it is O(1).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event, usable to cancel it later.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

impl EventId {
    /// The raw sequence number behind the handle. Only meaningful for
    /// snapshotting: an id round-trips through
    /// [`from_raw`](Self::from_raw) against the same queue generation.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a handle from [`raw`](Self::raw). The caller is
    /// responsible for pairing it with the queue state it was captured
    /// from — a stale id silently refers to a different event.
    pub fn from_raw(raw: u64) -> Self {
        EventId(raw)
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, on ties,
        // first-inserted) entry is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of domain events `E`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<EventId>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// In debug builds, scheduling into the past panics — it always
    /// indicates a model bug (an event handler computed a completion
    /// time before "now").
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        let id = EventId(self.next_seq);
        self.heap.push(Entry {
            at,
            seq: self.next_seq,
            id,
            payload,
        });
        self.next_seq += 1;
        id
    }

    /// Cancel a previously scheduled event. Cancelling an already-popped
    /// or already-cancelled id is a harmless no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Pop the next live event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            self.now = entry.at;
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            match self.heap.peek() {
                None => return None,
                Some(e) if self.cancelled.contains(&e.id) => {
                    let e = self.heap.pop().expect("peeked entry vanished");
                    self.cancelled.remove(&e.id);
                }
                Some(e) => return Some(e.at),
            }
        }
    }

    /// Number of live (non-cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Force the clock forward (used by drivers that interleave external
    /// activity between events). Never moves the clock backwards.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            debug_assert!(self.peek_time().is_none_or(|n| n >= t) || t <= self.now,);
            self.now = t;
        }
    }

    /// Capture the queue's complete state for a checkpoint: every live
    /// (non-cancelled) entry as `(at, seq, payload)` in deterministic
    /// pop order, plus the clock and the sequence counter. Cancelled
    /// tombstones are compacted away — they are unobservable.
    pub fn snapshot(&self) -> QueueSnapshot<E>
    where
        E: Clone,
    {
        let mut entries: Vec<(SimTime, u64, E)> = self
            .heap
            .iter()
            .filter(|e| !self.cancelled.contains(&e.id))
            .map(|e| (e.at, e.seq, e.payload.clone()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        QueueSnapshot {
            now: self.now,
            next_seq: self.next_seq,
            entries,
        }
    }

    /// Rebuild a queue from a [`snapshot`](Self::snapshot). Event ids
    /// equal their sequence numbers, so handles captured alongside the
    /// snapshot (via [`EventId::raw`]) stay valid against the restored
    /// queue.
    pub fn restore(snapshot: QueueSnapshot<E>) -> Self {
        let mut heap = BinaryHeap::with_capacity(snapshot.entries.len());
        for (at, seq, payload) in snapshot.entries {
            heap.push(Entry {
                at,
                seq,
                id: EventId(seq),
                payload,
            });
        }
        EventQueue {
            heap,
            cancelled: HashSet::new(),
            next_seq: snapshot.next_seq,
            now: snapshot.now,
        }
    }
}

/// Everything an [`EventQueue`] needs to be rebuilt exactly.
pub struct QueueSnapshot<E> {
    pub now: SimTime,
    pub next_seq: u64,
    /// Live entries as `(at, seq, payload)`, sorted in pop order.
    pub entries: Vec<(SimTime, u64, E)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_is_idempotent_and_safe_after_pop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), 1u32);
        assert!(q.pop().is_some());
        q.cancel(a); // no effect, id already popped
        q.cancel(a);
        q.schedule(SimTime::from_secs(2), 2u32);
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn peek_skips_cancelled_prefix() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        let b = q.schedule(SimTime::from_secs(2), "b");
        q.schedule(SimTime::from_secs(3), "c");
        q.cancel(a);
        q.cancel(b);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("c"));
    }

    #[test]
    fn clock_never_runs_backwards() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_secs(10));
        q.advance_to(SimTime::from_secs(5));
        assert_eq!(q.now(), SimTime::from_secs(10));
    }

    #[test]
    fn snapshot_restore_preserves_order_ids_and_counter() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        let a = q.schedule(SimTime::from_secs(1), "a");
        let b = q.schedule(SimTime::from_secs(1), "b");
        let dead = q.schedule(SimTime::from_secs(2), "dead");
        q.cancel(dead);
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));

        let snap = q.snapshot();
        assert_eq!(snap.entries.len(), 2, "cancelled entry compacted");
        let mut r = EventQueue::restore(snap);
        assert_eq!(r.now(), q.now());
        assert_eq!(r.len(), 2);
        // a captured-alongside id still cancels the same event
        assert_eq!(EventId::from_raw(b.raw()), b);
        r.cancel(b);
        assert_eq!(r.pop().map(|(_, e)| e), Some("c"));
        assert!(r.pop().is_none());
        // new ids continue past the old counter, never colliding
        let next = r.schedule(SimTime::from_secs(9), "d");
        assert_eq!(next.raw(), 4);
        let _ = a;
    }
}
