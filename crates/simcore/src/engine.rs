//! Closure-based orchestration engine.
//!
//! Domain simulators (the HDFS cluster, the MapReduce runner) define their
//! own typed event enums over [`crate::EventQueue`]; the [`Engine`] here
//! serves the layer *above* them — experiment scripts that need to fire
//! arbitrary actions ("submit job 17", "kill node 4", "run the ERMS epoch")
//! at given instants without inventing an enum per experiment.
//!
//! An action receives the world `W` and the engine itself, so it can
//! schedule follow-up actions (periodic controllers are a one-liner).

use crate::queue::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// A deferred action over world `W`.
pub type Action<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;
/// A repeating action over world `W` (returns false to stop).
pub type RepeatingAction<W> = Box<dyn FnMut(&mut W, &mut Engine<W>) -> bool>;

/// A discrete-event executor for closure actions.
pub struct Engine<W> {
    queue: EventQueue<Action<W>>,
}

impl<W: 'static> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W: 'static> Engine<W> {
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
        }
    }

    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Schedule `f` to run at absolute time `at`.
    pub fn at<F>(&mut self, at: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        self.queue.schedule(at, Box::new(f))
    }

    /// Schedule `f` to run `d` after the current time.
    pub fn after<F>(&mut self, d: SimDuration, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        let t = self.now() + d;
        self.at(t, f)
    }

    /// Schedule `f` to run every `period`, starting at `start`, until it
    /// returns `false`.
    pub fn every<F>(&mut self, start: SimTime, period: SimDuration, f: F)
    where
        F: FnMut(&mut W, &mut Engine<W>) -> bool + 'static,
    {
        fn tick<W: 'static>(
            mut f: RepeatingAction<W>,
            period: SimDuration,
            world: &mut W,
            eng: &mut Engine<W>,
        ) {
            if f(world, eng) {
                let next = eng.now() + period;
                eng.at(next, move |w, e| tick(f, period, w, e));
            }
        }
        let boxed: RepeatingAction<W> = Box::new(f);
        self.at(start, move |w, e| tick(boxed, period, w, e));
    }

    pub fn cancel(&mut self, id: EventId) {
        self.queue.cancel(id);
    }

    /// Run until the queue drains. Returns the final time.
    pub fn run(&mut self, world: &mut W) -> SimTime {
        while let Some((_, action)) = self.queue.pop() {
            action(world, self);
        }
        self.now()
    }

    /// Run until the queue drains or the clock passes `deadline`
    /// (events strictly after `deadline` stay queued).
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> SimTime {
        while let Some(next) = self.queue.peek_time() {
            if next > deadline {
                break;
            }
            let (_, action) = self.queue.pop().expect("peeked event vanished");
            action(world, self);
        }
        self.queue
            .advance_to(deadline.min(self.now().max(deadline)));
        self.now()
    }

    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_run_in_time_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut world = Vec::new();
        eng.at(SimTime::from_secs(2), |w: &mut Vec<u32>, _| w.push(2));
        eng.at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        eng.at(SimTime::from_secs(3), |w: &mut Vec<u32>, _| w.push(3));
        eng.run(&mut world);
        assert_eq!(world, vec![1, 2, 3]);
    }

    #[test]
    fn actions_can_schedule_followups() {
        let mut eng: Engine<Vec<f64>> = Engine::new();
        let mut world = Vec::new();
        eng.at(
            SimTime::from_secs(1),
            |w: &mut Vec<f64>, e: &mut Engine<Vec<f64>>| {
                w.push(e.now().as_secs_f64());
                e.after(SimDuration::from_secs(4), |w, e| {
                    w.push(e.now().as_secs_f64());
                });
            },
        );
        eng.run(&mut world);
        assert_eq!(world, vec![1.0, 5.0]);
    }

    #[test]
    fn periodic_until_false() {
        let mut eng: Engine<u32> = Engine::new();
        let mut count = 0u32;
        eng.every(
            SimTime::from_secs(1),
            SimDuration::from_secs(1),
            |w: &mut u32, _| {
                *w += 1;
                *w < 5
            },
        );
        eng.run(&mut count);
        assert_eq!(count, 5);
        assert_eq!(eng.now(), SimTime::from_secs(5));
    }

    #[test]
    fn run_until_leaves_future_events() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut world = Vec::new();
        eng.at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        eng.at(SimTime::from_secs(10), |w: &mut Vec<u32>, _| w.push(10));
        eng.run_until(&mut world, SimTime::from_secs(5));
        assert_eq!(world, vec![1]);
        assert_eq!(eng.pending(), 1);
        eng.run(&mut world);
        assert_eq!(world, vec![1, 10]);
    }

    #[test]
    fn cancelled_action_never_runs() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let mut world = Vec::new();
        let id = eng.at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        eng.cancel(id);
        eng.run(&mut world);
        assert!(world.is_empty());
    }
}
