//! `cep` — a complex event processing engine.
//!
//! ERMS distinguishes hot / cooled / normal / cold data **in real time**
//! by streaming HDFS audit-log records through a CEP engine (paper
//! Section III.C). This crate is that engine:
//!
//! * [`event`] — timestamped events with typed fields,
//! * [`window`] — the two sliding windows the paper names: the **time
//!   window** (`win:time(t_w)`) and the **length window** (`win:length(N)`),
//! * [`query`] — continuous queries: filter → window → group-by →
//!   aggregate → having, evaluated incrementally per arriving event,
//! * [`epl`] — a small SQL-ish continuous-query language (the paper notes
//!   CEP systems "use an SQL-standard-based continuous query language"),
//!   compiled to [`query::QuerySpec`],
//! * [`engine`] — registration, event routing and subscriptions,
//! * [`audit`] — the HDFS audit-log parser (the paper's hand-written
//!   "log parser" that turns raw log lines into CEP events).
//!
//! The engine is single-threaded and driven by the simulation clock;
//! determinism matters more here than parallel throughput, and the
//! throughput benches show it comfortably exceeds the audit-log rates a
//! simulated cluster generates.
//!
//! ```
//! use cep::{CepEngine, epl};
//! use simcore::SimTime;
//!
//! let mut engine = CepEngine::new();
//! let per_file = engine.register(
//!     epl::parse("select count(*) from audit(cmd='open').win:time(60) group by src")
//!         .unwrap(),
//! );
//! // the paper's pipeline: raw HDFS audit text → parser → CEP
//! let line = "12.5 FSNamesystem.audit: allowed=true ugi=alice \
//!             ip=/10.0.0.7 cmd=open src=/data/f dst=null perm=null";
//! let event = cep::audit::parse_line(line).unwrap();
//! engine.push(&event);
//! assert_eq!(engine.value_for(per_file, SimTime::from_secs(13), "/data/f"), 1.0);
//! ```

pub mod audit;
pub mod engine;
pub mod epl;
pub mod event;
pub mod fnv;
pub mod pattern;
pub mod query;
pub mod window;

pub use engine::{CepEngine, QueryId, Row};
pub use event::{Event, Value};
pub use pattern::{EventFilter, FollowedBy, PatternMatch, PatternState};
pub use query::{AggFn, Comparison, Predicate, QuerySpec, WindowSpec};
