//! Event routing, query registration and subscriptions.
//!
//! The engine is the piece ERMS talks to: register queries (built in
//! code or compiled from EPL text), push every audit event at it, and
//! either poll grouped rows or subscribe a callback that fires whenever
//! a query's HAVING clause admits a row for the arriving event's group.

use crate::event::Event;
use crate::pattern::{FollowedBy, PatternMatch, PatternState};
use crate::query::{GroupRow, QuerySpec, QueryState};
use simcore::telemetry::{Event as TelemetryEvent, TelemetrySink};
use simcore::{trace, SimTime};
use std::collections::BTreeMap;

/// Handle to a registered query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(u64);

/// Handle to a registered sequence pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternId(u64);

/// A fired subscription row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    pub query: QueryId,
    pub time: SimTime,
    pub group: String,
    pub value: f64,
}

type Callback = Box<dyn FnMut(&Row)>;

/// The CEP engine.
#[derive(Default)]
pub struct CepEngine {
    queries: BTreeMap<QueryId, QueryState>,
    subscriptions: BTreeMap<QueryId, Vec<Callback>>,
    patterns: BTreeMap<PatternId, (PatternState, Vec<PatternMatch>)>,
    next_id: u64,
    events_seen: u64,
    telemetry: TelemetrySink,
}

impl CepEngine {
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a telemetry sink; every subscription row the engine fires
    /// is then traced as a `window_emit` event.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    /// Register a query; returns its handle.
    pub fn register(&mut self, spec: QuerySpec) -> QueryId {
        let id = QueryId(self.next_id);
        self.next_id += 1;
        self.queries.insert(id, QueryState::new(spec));
        id
    }

    /// Remove a query (and its subscriptions).
    pub fn unregister(&mut self, id: QueryId) {
        self.queries.remove(&id);
        self.subscriptions.remove(&id);
    }

    /// Register a sequence pattern ("A followed by B within t").
    pub fn register_pattern(&mut self, spec: FollowedBy) -> PatternId {
        let id = PatternId(self.next_id);
        self.next_id += 1;
        self.patterns
            .insert(id, (PatternState::new(spec), Vec::new()));
        id
    }

    /// Take the matches a pattern produced since the last drain.
    pub fn drain_matches(&mut self, id: PatternId) -> Vec<PatternMatch> {
        self.patterns
            .get_mut(&id)
            .map(|(_, buf)| std::mem::take(buf))
            .unwrap_or_default()
    }

    /// Attach a callback fired when an arriving event makes the query
    /// emit a row for that event's group (requires a HAVING clause to be
    /// selective; without one it fires on every accepted event).
    pub fn subscribe<F>(&mut self, id: QueryId, callback: F)
    where
        F: FnMut(&Row) + 'static,
    {
        self.subscriptions
            .entry(id)
            .or_default()
            .push(Box::new(callback));
    }

    /// Push one event through every registered query and pattern.
    pub fn push(&mut self, event: &Event) {
        self.events_seen += 1;
        for (state, buf) in self.patterns.values_mut() {
            buf.extend(state.offer(event));
        }
        let mut fired: Vec<Row> = Vec::new();
        for (&id, state) in self.queries.iter_mut() {
            if !state.offer(event) {
                continue;
            }
            if !self.subscriptions.contains_key(&id) {
                continue;
            }
            // Evaluate only the arriving event's group: subscriptions are
            // per-trigger, polling covers whole-table reads.
            let group_key = match &state.spec.group_by {
                Some(field) => match event.get(field) {
                    Some(v) => v.to_string(),
                    None => continue,
                },
                None => String::new(),
            };
            let value = state.value_for(event.time, &group_key);
            if state.spec.having.is_none_or(|h| h.test(value)) {
                fired.push(Row {
                    query: id,
                    time: event.time,
                    group: group_key,
                    value,
                });
            }
        }
        if !fired.is_empty() {
            for row in &fired {
                trace!(
                    self.telemetry,
                    row.time,
                    TelemetryEvent::WindowEmit {
                        query: self
                            .queries
                            .get(&row.query)
                            .and_then(|s| s.spec.from.clone())
                            .unwrap_or_default(),
                        group: row.group.clone(),
                        value: row.value,
                    }
                );
            }
            self.telemetry
                .counter_add("cep.windows_emitted", fired.len() as u64);
        }
        for row in &fired {
            if let Some(callbacks) = self.subscriptions.get_mut(&row.query) {
                for cb in callbacks.iter_mut() {
                    cb(row);
                }
            }
        }
    }

    /// Poll the current grouped rows of a query at `now`.
    pub fn rows(&mut self, id: QueryId, now: SimTime) -> Vec<GroupRow> {
        self.queries
            .get_mut(&id)
            .map(|q| q.rows(now))
            .unwrap_or_default()
    }

    /// Current aggregate for one group of a query. Polled reads are the
    /// other half of window delivery (subscriptions being the first), so
    /// each one is traced as a [`TelemetryEvent::WindowEmit`].
    pub fn value_for(&mut self, id: QueryId, now: SimTime, key: &str) -> f64 {
        let Some(q) = self.queries.get_mut(&id) else {
            return 0.0;
        };
        let value = q.value_for(now, key);
        trace!(
            self.telemetry,
            now,
            TelemetryEvent::WindowEmit {
                query: q.spec.from.clone().unwrap_or_default(),
                group: key.to_string(),
                value,
            }
        );
        value
    }

    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }
}

impl checkpoint::Checkpointable for CepEngine {
    // Rebuild-then-hydrate: ids are assigned sequentially at registration,
    // so a restored engine must re-register the same queries and patterns
    // in the same order before loading. Subscriptions (closures) and the
    // telemetry sink are re-attached by the caller, never serialized.
    fn save_state(&self) -> checkpoint::Value {
        use checkpoint::codec::MapBuilder;
        use checkpoint::Value;
        MapBuilder::new()
            .u64("next_id", self.next_id)
            .u64("events_seen", self.events_seen)
            .seq(
                "queries",
                self.queries
                    .iter()
                    .map(|(id, q)| Value::Seq(vec![Value::U64(id.0), q.save_state()]))
                    .collect(),
            )
            .seq(
                "patterns",
                self.patterns
                    .iter()
                    .map(|(id, (p, buf))| {
                        Value::Seq(vec![
                            Value::U64(id.0),
                            p.save_state(),
                            Value::Seq(
                                buf.iter()
                                    .map(|m| {
                                        Value::Seq(vec![
                                            crate::event::ck::event(&m.first),
                                            crate::event::ck::event(&m.second),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ])
                    })
                    .collect(),
            )
            .build()
    }

    fn load_state(&mut self, state: &checkpoint::Value) -> Result<(), checkpoint::CheckpointError> {
        use checkpoint::codec as c;
        use checkpoint::CheckpointError;
        let queries = c::get_seq(state, "queries")?;
        if queries.len() != self.queries.len() {
            return Err(CheckpointError::Corrupt(format!(
                "snapshot has {} queries, engine has {} registered",
                queries.len(),
                self.queries.len()
            )));
        }
        for entry in queries {
            let pair = c::as_seq(entry, "queries[]")?;
            if pair.len() != 2 {
                return Err(CheckpointError::Corrupt(
                    "query entry is not [id, state]".into(),
                ));
            }
            let id = QueryId(c::as_u64(&pair[0], "query id")?);
            let q = self.queries.get_mut(&id).ok_or_else(|| {
                CheckpointError::Corrupt(format!("snapshot query {} is not registered", id.0))
            })?;
            q.load_state(&pair[1])?;
        }
        let patterns = c::get_seq(state, "patterns")?;
        if patterns.len() != self.patterns.len() {
            return Err(CheckpointError::Corrupt(format!(
                "snapshot has {} patterns, engine has {} registered",
                patterns.len(),
                self.patterns.len()
            )));
        }
        for entry in patterns {
            let parts = c::as_seq(entry, "patterns[]")?;
            if parts.len() != 3 {
                return Err(CheckpointError::Corrupt(
                    "pattern entry is not [id, state, matches]".into(),
                ));
            }
            let id = PatternId(c::as_u64(&parts[0], "pattern id")?);
            let (p, buf) = self.patterns.get_mut(&id).ok_or_else(|| {
                CheckpointError::Corrupt(format!("snapshot pattern {} is not registered", id.0))
            })?;
            p.load_state(&parts[1])?;
            buf.clear();
            for m in c::as_seq(&parts[2], "pattern matches")? {
                let pair = c::as_seq(m, "match")?;
                if pair.len() != 2 {
                    return Err(CheckpointError::Corrupt(
                        "pattern match is not [first, second]".into(),
                    ));
                }
                buf.push(PatternMatch {
                    first: crate::event::ck::event_back(&pair[0])?,
                    second: crate::event::ck::event_back(&pair[1])?,
                });
            }
        }
        self.next_id = c::get_u64(state, "next_id")?;
        self.events_seen = c::get_u64(state, "events_seen")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Comparison;
    use simcore::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn access(t: u64, path: &str) -> Event {
        Event::new(SimTime::from_secs(t), "audit")
            .with("cmd", "open")
            .with("src", path)
    }

    #[test]
    fn register_push_poll() {
        let mut eng = CepEngine::new();
        let q = eng.register(QuerySpec::count_per_group(
            "audit",
            "src",
            SimDuration::from_secs(60),
        ));
        for p in ["/a", "/a", "/b"] {
            eng.push(&access(1, p));
        }
        let rows = eng.rows(q, SimTime::from_secs(1));
        assert_eq!(rows.len(), 2);
        assert_eq!(eng.value_for(q, SimTime::from_secs(1), "/a"), 2.0);
        assert_eq!(eng.events_seen(), 3);
    }

    #[test]
    fn subscription_fires_on_threshold() {
        let mut eng = CepEngine::new();
        let mut spec = QuerySpec::count_per_group("audit", "src", SimDuration::from_secs(60));
        spec.having = Some(Comparison::Ge(3.0));
        let q = eng.register(spec);
        let fired: Rc<RefCell<Vec<Row>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = fired.clone();
        eng.subscribe(q, move |row| sink.borrow_mut().push(row.clone()));

        eng.push(&access(0, "/cold_path_accessed_once"));
        for t in 0..5u64 {
            eng.push(&access(t, "/hot"));
        }
        let fired = fired.borrow();
        // /hot fires on its 3rd, 4th, 5th access; the other path never
        assert_eq!(fired.len(), 3);
        assert!(fired.iter().all(|r| r.group == "/hot"));
        assert_eq!(fired[0].value, 3.0);
        assert_eq!(fired[2].value, 5.0);
    }

    #[test]
    fn multiple_queries_route_independently() {
        let mut eng = CepEngine::new();
        let by_src = eng.register(QuerySpec::count_per_group(
            "audit",
            "src",
            SimDuration::from_secs(60),
        ));
        let blocks = eng.register(QuerySpec::count_per_group(
            "block_read",
            "blk",
            SimDuration::from_secs(60),
        ));
        eng.push(&access(0, "/a"));
        eng.push(&Event::new(SimTime::from_secs(0), "block_read").with("blk", "blk_1"));
        assert_eq!(eng.rows(by_src, SimTime::ZERO).len(), 1);
        assert_eq!(eng.rows(blocks, SimTime::ZERO).len(), 1);
        assert_eq!(eng.query_count(), 2);
    }

    #[test]
    fn unregister_stops_routing() {
        let mut eng = CepEngine::new();
        let q = eng.register(QuerySpec::count_per_group(
            "audit",
            "src",
            SimDuration::from_secs(60),
        ));
        eng.unregister(q);
        eng.push(&access(0, "/a"));
        assert!(eng.rows(q, SimTime::ZERO).is_empty());
        assert_eq!(eng.query_count(), 0);
    }

    #[test]
    fn ungrouped_subscription_fires_under_empty_key() {
        // An ungrouped query has exactly one row, keyed "". The
        // subscription path (push → value_for(.., "")) and the polling
        // path (rows / value_for) must agree on that key: "" reads the
        // whole-window aggregate, any other key reads 0.0.
        let mut eng = CepEngine::new();
        let spec = QuerySpec {
            from: Some("audit".into()),
            predicates: vec![],
            window: crate::query::WindowSpec::Time(SimDuration::from_secs(60)),
            group_by: None,
            aggregate: crate::query::AggFn::Count,
            having: Some(Comparison::Ge(2.0)),
        };
        let q = eng.register(spec);
        let fired: Rc<RefCell<Vec<Row>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = fired.clone();
        eng.subscribe(q, move |row| sink.borrow_mut().push(row.clone()));

        eng.push(&access(0, "/a"));
        eng.push(&access(1, "/b"));
        eng.push(&access(2, "/c"));

        let fired = fired.borrow();
        assert_eq!(fired.len(), 2, "fires on the 2nd and 3rd event");
        assert!(fired.iter().all(|r| r.group.is_empty()));
        assert_eq!(fired[1].value, 3.0);

        let now = SimTime::from_secs(2);
        let rows = eng.rows(q, now);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key.as_ref(), "");
        assert_eq!(rows[0].value, 3.0);
        assert_eq!(eng.value_for(q, now, ""), 3.0);
        // Keys naming no row must not alias the global aggregate.
        assert_eq!(eng.value_for(q, now, "/a"), 0.0);
    }

    #[test]
    fn checkpoint_round_trip_resumes_identically() {
        use crate::pattern::{EventFilter, FollowedBy};
        use crate::query::Predicate;
        use checkpoint::Checkpointable;

        // Same registration sequence both times (rebuild-then-hydrate).
        let build = || {
            let mut eng = CepEngine::new();
            let mut hot = QuerySpec::count_per_group("audit", "src", SimDuration::from_secs(60));
            hot.having = Some(Comparison::Ge(2.0));
            let q_hot = eng.register(hot);
            let q_blk = eng.register(QuerySpec::count_per_group(
                "block_read",
                "blk",
                SimDuration::from_secs(30),
            ));
            let pat = eng.register_pattern(FollowedBy {
                first: EventFilter::of_type("audit").with(Predicate::Eq(
                    "cmd".into(),
                    crate::event::Value::str("open"),
                )),
                second: EventFilter::of_type("block_read"),
                within: SimDuration::from_secs(120),
                key_field: Some("src".into()),
            });
            (eng, q_hot, q_blk, pat)
        };
        let feed = |eng: &mut CepEngine, range: std::ops::Range<u64>| {
            for t in range {
                eng.push(&access(t, if t % 3 == 0 { "/a" } else { "/b" }));
                eng.push(
                    &Event::new(SimTime::from_secs(t), "block_read")
                        .with("blk", format!("blk_{}", t % 4))
                        .with("src", "/a"),
                );
            }
        };

        let (mut live, q_hot, q_blk, pat) = build();
        feed(&mut live, 0..40);

        let json = serde_json::to_string(&live.save_state()).unwrap();
        let (mut restored, ..) = build();
        restored
            .load_state(&serde_json::parse_value(&json).unwrap())
            .unwrap();

        // Continue both engines over identical input and compare outputs.
        feed(&mut live, 40..80);
        feed(&mut restored, 40..80);
        let now = SimTime::from_secs(80);
        for q in [q_hot, q_blk] {
            assert_eq!(live.rows(q, now), restored.rows(q, now));
        }
        assert_eq!(
            live.value_for(q_hot, now, "/a"),
            restored.value_for(q_hot, now, "/a")
        );
        assert_eq!(live.events_seen(), restored.events_seen());
        assert_eq!(live.drain_matches(pat), restored.drain_matches(pat));
    }

    #[test]
    fn checkpoint_rejects_mismatched_registration() {
        use checkpoint::Checkpointable;
        let mut eng = CepEngine::new();
        eng.register(QuerySpec::count_per_group(
            "audit",
            "src",
            SimDuration::from_secs(60),
        ));
        let saved = eng.save_state();
        let mut empty = CepEngine::new();
        let err = empty.load_state(&saved).unwrap_err();
        assert!(matches!(err, checkpoint::CheckpointError::Corrupt(_)));
    }

    #[test]
    fn window_decay_drops_counts() {
        let mut eng = CepEngine::new();
        let q = eng.register(QuerySpec::count_per_group(
            "audit",
            "src",
            SimDuration::from_secs(10),
        ));
        eng.push(&access(0, "/a"));
        eng.push(&access(1, "/a"));
        assert_eq!(eng.value_for(q, SimTime::from_secs(1), "/a"), 2.0);
        // long silence → everything expires
        assert_eq!(eng.value_for(q, SimTime::from_secs(100), "/a"), 0.0);
    }
}
