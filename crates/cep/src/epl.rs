//! A small EPL-like continuous-query language.
//!
//! The paper observes that CEP systems "use an SQL-standard-based
//! continuous query language to express the query demands"; this module
//! provides a compact dialect that compiles to [`QuerySpec`]:
//!
//! ```text
//! select count(*) from audit(cmd = 'open') . win:time(60)
//!     group by src having count(*) > 10
//! ```
//!
//! * aggregates: `count(*)`, `sum(f)`, `avg(f)`, `max(f)`, `min(f)`,
//!   `count_distinct(f)`
//! * windows: `win:time(seconds)` and `win:length(n)`
//! * predicates on the FROM type: `field = literal`, `!=`, `>`, `<`
//! * keywords are case-insensitive; strings take single quotes.

use crate::event::Value;
use crate::query::{AggFn, Comparison, Predicate, QuerySpec, WindowSpec};
use simcore::SimDuration;
use std::fmt;

/// Parse failure with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EPL parse error at byte {}: {}",
            self.position, self.message
        )
    }
}
impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Str(String),
    Star,
    LParen,
    RParen,
    Comma,
    Dot,
    Colon,
    Eq,
    Ne,
    Gt,
    Ge,
    Lt,
    Le,
    Arrow,
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn tokens(mut self) -> Result<Vec<(usize, Token)>, ParseError> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let c = self.bytes[self.pos];
            match c {
                b' ' | b'\t' | b'\n' | b'\r' => {
                    self.pos += 1;
                }
                b'*' => {
                    out.push((start, Token::Star));
                    self.pos += 1;
                }
                b'(' => {
                    out.push((start, Token::LParen));
                    self.pos += 1;
                }
                b')' => {
                    out.push((start, Token::RParen));
                    self.pos += 1;
                }
                b',' => {
                    out.push((start, Token::Comma));
                    self.pos += 1;
                }
                b'.' => {
                    out.push((start, Token::Dot));
                    self.pos += 1;
                }
                b':' => {
                    out.push((start, Token::Colon));
                    self.pos += 1;
                }
                b'=' => {
                    out.push((start, Token::Eq));
                    self.pos += 1;
                }
                b'!' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'=') {
                        out.push((start, Token::Ne));
                        self.pos += 2;
                    } else {
                        return Err(self.error("expected '=' after '!'"));
                    }
                }
                b'>' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'=') {
                        out.push((start, Token::Ge));
                        self.pos += 2;
                    } else {
                        out.push((start, Token::Gt));
                        self.pos += 1;
                    }
                }
                b'<' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'=') {
                        out.push((start, Token::Le));
                        self.pos += 2;
                    } else {
                        out.push((start, Token::Lt));
                        self.pos += 1;
                    }
                }
                b'\'' => {
                    self.pos += 1;
                    let s = self.pos;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                        self.pos += 1;
                    }
                    if self.pos >= self.bytes.len() {
                        return Err(self.error("unterminated string literal"));
                    }
                    out.push((start, Token::Str(self.src[s..self.pos].to_string())));
                    self.pos += 1;
                }
                b'-' if self.bytes.get(self.pos + 1) == Some(&b'>') => {
                    out.push((start, Token::Arrow));
                    self.pos += 2;
                }
                b'0'..=b'9' | b'-' => {
                    let s = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos].is_ascii_digit() || self.bytes[self.pos] == b'.')
                    {
                        self.pos += 1;
                    }
                    let text = &self.src[s..self.pos];
                    let n: f64 = text
                        .parse()
                        .map_err(|_| self.error(format!("bad number '{text}'")))?;
                    out.push((s, Token::Number(n)));
                }
                c if c.is_ascii_alphabetic() || c == b'_' || c == b'/' => {
                    let s = self.pos;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos].is_ascii_alphanumeric()
                            || matches!(self.bytes[self.pos], b'_' | b'/' | b'-'))
                    {
                        self.pos += 1;
                    }
                    out.push((s, Token::Ident(self.src[s..self.pos].to_string())));
                }
                other => {
                    return Err(self.error(format!("unexpected character '{}'", other as char)));
                }
            }
        }
        Ok(out)
    }
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    idx: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.idx).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.idx).map(|(_, t)| t.clone());
        if t.is_some() {
            self.idx += 1;
        }
        t
    }

    fn pos(&self) -> usize {
        self.tokens
            .get(self.idx)
            .or_else(|| self.tokens.last())
            .map(|(p, _)| *p)
            .unwrap_or(0)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos(),
        }
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if &t == want => Ok(()),
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.error(format!("expected keyword '{kw}', found {other:?}"))),
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.idx += 1;
                return true;
            }
        }
        false
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn number(&mut self, what: &str) -> Result<f64, ParseError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn aggregate(&mut self) -> Result<AggFn, ParseError> {
        let name = self.ident("aggregate function")?.to_ascii_lowercase();
        self.expect(&Token::LParen, "'('")?;
        let agg = match name.as_str() {
            "count" => {
                self.expect(&Token::Star, "'*'")?;
                AggFn::Count
            }
            "sum" => AggFn::Sum(self.ident("field name")?),
            "avg" => AggFn::Avg(self.ident("field name")?),
            "max" => AggFn::Max(self.ident("field name")?),
            "min" => AggFn::Min(self.ident("field name")?),
            "count_distinct" => AggFn::CountDistinct(self.ident("field name")?),
            other => return Err(self.error(format!("unknown aggregate '{other}'"))),
        };
        self.expect(&Token::RParen, "')'")?;
        Ok(agg)
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        match self.next() {
            Some(Token::Str(s)) => Ok(Value::str(s)),
            Some(Token::Number(n)) => {
                if n.fract() == 0.0 {
                    Ok(Value::Int(n as i64))
                } else {
                    Ok(Value::Float(n))
                }
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            other => Err(self.error(format!("expected literal, found {other:?}"))),
        }
    }

    fn predicates(&mut self) -> Result<Vec<Predicate>, ParseError> {
        let mut preds = Vec::new();
        if self.peek() != Some(&Token::LParen) {
            return Ok(preds);
        }
        self.next(); // consume '('
        if self.peek() == Some(&Token::RParen) {
            self.next();
            return Ok(preds);
        }
        loop {
            let field = self.ident("predicate field")?;
            let op = self
                .next()
                .ok_or_else(|| self.error("expected comparison operator"))?;
            let pred = match op {
                Token::Eq => Predicate::Eq(field, self.literal()?),
                Token::Ne => Predicate::Ne(field, self.literal()?),
                Token::Gt => Predicate::Gt(field, self.number("numeric bound")?),
                Token::Lt => Predicate::Lt(field, self.number("numeric bound")?),
                other => return Err(self.error(format!("bad predicate operator {other:?}"))),
            };
            preds.push(pred);
            match self.next() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                other => return Err(self.error(format!("expected ',' or ')', found {other:?}"))),
            }
        }
        Ok(preds)
    }

    fn window(&mut self) -> Result<WindowSpec, ParseError> {
        self.expect(&Token::Dot, "'.' before window clause")?;
        self.keyword("win")?;
        self.expect(&Token::Colon, "':'")?;
        let kind = self.ident("window kind")?.to_ascii_lowercase();
        self.expect(&Token::LParen, "'('")?;
        let n = self.number("window size")?;
        self.expect(&Token::RParen, "')'")?;
        match kind.as_str() {
            "time" => Ok(WindowSpec::Time(SimDuration::from_secs_f64(n))),
            "length" => {
                if n < 1.0 || n.fract() != 0.0 {
                    return Err(self.error("length window needs a positive integer"));
                }
                Ok(WindowSpec::Length(n as usize))
            }
            other => Err(self.error(format!("unknown window kind '{other}'"))),
        }
    }

    fn having(&mut self) -> Result<Option<(AggFn, Comparison)>, ParseError> {
        if !self.try_keyword("having") {
            return Ok(None);
        }
        let agg = self.aggregate()?;
        let op = self
            .next()
            .ok_or_else(|| self.error("expected comparison after HAVING aggregate"))?;
        let bound = self.number("threshold")?;
        let cmp = match op {
            Token::Gt => Comparison::Gt(bound),
            Token::Ge => Comparison::Ge(bound),
            Token::Lt => Comparison::Lt(bound),
            Token::Le => Comparison::Le(bound),
            Token::Eq => Comparison::Eq(bound),
            other => return Err(self.error(format!("bad HAVING operator {other:?}"))),
        };
        Ok(Some((agg, cmp)))
    }
}

/// Render a [`QuerySpec`] back to EPL text. `parse(&to_epl(q)) == q`
/// for every spec expressible in the dialect (property-tested below);
/// used to log the judge's active queries in a human-auditable form.
pub fn to_epl(spec: &QuerySpec) -> String {
    let mut out = String::from("select ");
    out.push_str(&agg_text(&spec.aggregate));
    out.push_str(" from ");
    out.push_str(spec.from.as_deref().unwrap_or("_any"));
    if !spec.predicates.is_empty() {
        out.push('(');
        for (i, p) in spec.predicates.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&pred_text(p));
        }
        out.push(')');
    }
    match spec.window {
        WindowSpec::Time(d) => {
            out.push_str(&format!(".win:time({})", d.as_secs_f64()));
        }
        WindowSpec::Length(n) => {
            out.push_str(&format!(".win:length({n})"));
        }
    }
    if let Some(g) = &spec.group_by {
        out.push_str(" group by ");
        out.push_str(g);
    }
    if let Some(h) = spec.having {
        out.push_str(" having ");
        out.push_str(&agg_text(&spec.aggregate));
        let (op, bound) = match h {
            Comparison::Gt(b) => (">", b),
            Comparison::Ge(b) => (">=", b),
            Comparison::Lt(b) => ("<", b),
            Comparison::Le(b) => ("<=", b),
            Comparison::Eq(b) => ("=", b),
        };
        out.push_str(&format!(" {op} {bound}"));
    }
    out
}

fn agg_text(a: &AggFn) -> String {
    match a {
        AggFn::Count => "count(*)".to_string(),
        AggFn::Sum(f) => format!("sum({f})"),
        AggFn::Avg(f) => format!("avg({f})"),
        AggFn::Max(f) => format!("max({f})"),
        AggFn::Min(f) => format!("min({f})"),
        AggFn::CountDistinct(f) => format!("count_distinct({f})"),
    }
}

fn pred_text(p: &Predicate) -> String {
    let val = |v: &Value| -> String {
        match v {
            Value::Str(s) => format!("'{s}'"),
            other => other.to_string(),
        }
    };
    match p {
        Predicate::Eq(f, v) => format!("{f} = {}", val(v)),
        Predicate::Ne(f, v) => format!("{f} != {}", val(v)),
        Predicate::Gt(f, b) => format!("{f} > {b}"),
        Predicate::Lt(f, b) => format!("{f} < {b}"),
        // `Has` has no surface syntax; encode as an always-matchable
        // inequality against an impossible sentinel value
        Predicate::Has(f) => format!("{f} != '__no_such_value__'"),
    }
}

/// Compile a pattern string to a [`crate::pattern::FollowedBy`].
///
/// Grammar:
///
/// ```text
/// pattern := filter '->' filter 'within' seconds ['on' field]
/// filter  := event_type [ '(' predicates ')' ]
/// ```
///
/// e.g. `audit(cmd='create') -> audit(cmd='open') within 60 on src`.
pub fn parse_pattern(src: &str) -> Result<crate::pattern::FollowedBy, ParseError> {
    use crate::pattern::EventFilter;
    let tokens = Lexer::new(src).tokens()?;
    let mut p = Parser { tokens, idx: 0 };

    let leg = |p: &mut Parser| -> Result<EventFilter, ParseError> {
        let ty = p.ident("event type")?;
        let predicates = p.predicates()?;
        Ok(EventFilter {
            event_type: Some(ty),
            predicates,
        })
    };
    let first = leg(&mut p)?;
    p.expect(&Token::Arrow, "'->' between pattern legs")?;
    let second = leg(&mut p)?;
    p.keyword("within")?;
    let secs = p.number("window seconds")?;
    if secs <= 0.0 {
        return Err(p.error("pattern window must be positive"));
    }
    let key_field = if p.try_keyword("on") {
        Some(p.ident("correlation field")?)
    } else {
        None
    };
    if p.peek().is_some() {
        return Err(p.error("trailing tokens after pattern"));
    }
    Ok(crate::pattern::FollowedBy {
        first,
        second,
        within: SimDuration::from_secs_f64(secs),
        key_field,
    })
}

/// Compile an EPL string to a [`QuerySpec`].
pub fn parse(src: &str) -> Result<QuerySpec, ParseError> {
    let tokens = Lexer::new(src).tokens()?;
    let mut p = Parser { tokens, idx: 0 };

    p.keyword("select")?;
    let aggregate = p.aggregate()?;
    p.keyword("from")?;
    let from = p.ident("event type")?;
    let predicates = p.predicates()?;
    let window = p.window()?;

    let group_by = if p.try_keyword("group") {
        p.keyword("by")?;
        Some(p.ident("group-by field")?)
    } else {
        None
    };

    let having = p.having()?;
    if let Some((h_agg, _)) = &having {
        if h_agg != &aggregate {
            return Err(p.error("HAVING aggregate must match the SELECT aggregate"));
        }
    }
    if p.peek().is_some() {
        return Err(p.error("trailing tokens after query"));
    }

    Ok(QuerySpec {
        from: Some(from),
        predicates,
        window,
        group_by,
        aggregate,
        having: having.map(|(_, c)| c),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_query_parses() {
        let q = parse(
            "select count(*) from audit(cmd = 'open') . win:time(60) \
             group by src having count(*) > 10",
        )
        .unwrap();
        assert_eq!(q.from.as_deref(), Some("audit"));
        assert_eq!(q.predicates.len(), 1);
        assert_eq!(q.window, WindowSpec::Time(SimDuration::from_secs(60)));
        assert_eq!(q.group_by.as_deref(), Some("src"));
        assert_eq!(q.aggregate, AggFn::Count);
        assert_eq!(q.having, Some(Comparison::Gt(10.0)));
    }

    #[test]
    fn minimal_query() {
        let q = parse("select count(*) from block_read.win:length(100)").unwrap();
        assert_eq!(q.from.as_deref(), Some("block_read"));
        assert!(q.predicates.is_empty());
        assert_eq!(q.window, WindowSpec::Length(100));
        assert!(q.group_by.is_none());
        assert!(q.having.is_none());
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse("SELECT COUNT(*) FROM a.WIN:TIME(5) GROUP BY f").is_ok());
    }

    #[test]
    fn all_aggregates() {
        for (src, want) in [
            ("sum(bytes)", AggFn::Sum("bytes".into())),
            ("avg(bytes)", AggFn::Avg("bytes".into())),
            ("max(bytes)", AggFn::Max("bytes".into())),
            ("min(bytes)", AggFn::Min("bytes".into())),
            ("count_distinct(ip)", AggFn::CountDistinct("ip".into())),
        ] {
            let q = parse(&format!("select {src} from audit.win:time(1)")).unwrap();
            assert_eq!(q.aggregate, want, "{src}");
        }
    }

    #[test]
    fn multiple_predicates() {
        let q =
            parse("select count(*) from audit(cmd = 'open', size > 100, ok = true).win:time(9)")
                .unwrap();
        assert_eq!(q.predicates.len(), 3);
        assert!(matches!(&q.predicates[1], Predicate::Gt(f, b) if f == "size" && *b == 100.0));
        assert!(matches!(&q.predicates[2], Predicate::Eq(f, Value::Bool(true)) if f == "ok"));
    }

    #[test]
    fn having_operators() {
        for (op, want) in [
            (">", Comparison::Gt(2.0)),
            (">=", Comparison::Ge(2.0)),
            ("<", Comparison::Lt(2.0)),
            ("<=", Comparison::Le(2.0)),
            ("=", Comparison::Eq(2.0)),
        ] {
            let q = parse(&format!(
                "select count(*) from a.win:time(1) having count(*) {op} 2"
            ))
            .unwrap();
            assert_eq!(q.having, Some(want), "{op}");
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("").is_err());
        assert!(parse("select frobnicate(*) from a.win:time(1)").is_err());
        assert!(parse("select count(*) from a.win:bogus(1)").is_err());
        assert!(parse("select count(*) from a.win:length(0)").is_err());
        assert!(parse("select count(*) from a.win:time(1) extra junk").is_err());
        assert!(parse("select count(*) from a(x = 'unterminated.win:time(1)").is_err());
        let err = parse("select count(*) from a.win:time(1) having sum(x) > 2").unwrap_err();
        assert!(err.message.contains("must match"), "{err}");
    }

    #[test]
    fn parsed_query_runs() {
        use crate::engine::CepEngine;
        use crate::event::Event;
        use simcore::SimTime;
        let spec =
            parse("select count(*) from audit(cmd='open').win:time(30) group by src").unwrap();
        let mut eng = CepEngine::new();
        let q = eng.register(spec);
        for i in 0..4u64 {
            eng.push(
                &Event::new(SimTime::from_secs(i), "audit")
                    .with("cmd", "open")
                    .with("src", "/hot"),
            );
        }
        assert_eq!(eng.value_for(q, SimTime::from_secs(3), "/hot"), 4.0);
    }

    #[test]
    fn pattern_syntax_parses() {
        use crate::pattern::EventFilter;
        let p = parse_pattern("audit(cmd='create') -> audit(cmd='open') within 60 on src").unwrap();
        assert_eq!(p.within, SimDuration::from_secs(60));
        assert_eq!(p.key_field.as_deref(), Some("src"));
        let expect_leg = |cmd: &str| {
            EventFilter::of_type("audit").with(Predicate::Eq("cmd".into(), Value::str(cmd)))
        };
        assert_eq!(p.first, expect_leg("create"));
        assert_eq!(p.second, expect_leg("open"));
        // without correlation key
        let p = parse_pattern("node_down -> read_failed within 30").unwrap();
        assert!(p.key_field.is_none());
    }

    #[test]
    fn pattern_syntax_errors() {
        assert!(parse_pattern("audit within 5").is_err());
        assert!(parse_pattern("a -> b").is_err(), "missing within");
        assert!(parse_pattern("a -> b within 0").is_err());
        assert!(parse_pattern("a -> b within 5 extra").is_err());
    }

    #[test]
    fn parsed_pattern_runs_in_engine() {
        use crate::engine::CepEngine;
        use crate::event::Event;
        use simcore::SimTime;
        let mut eng = CepEngine::new();
        let pat = eng.register_pattern(
            parse_pattern("audit(cmd='create') -> audit(cmd='open') within 60 on src").unwrap(),
        );
        let mk = |t: u64, cmd: &str| {
            Event::new(SimTime::from_secs(t), "audit")
                .with("cmd", cmd)
                .with("src", "/fresh")
        };
        eng.push(&mk(0, "create"));
        eng.push(&mk(10, "open"));
        let matches = eng.drain_matches(pat);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].gap(), SimDuration::from_secs(10));
        assert!(eng.drain_matches(pat).is_empty(), "drained once");
    }

    #[test]
    fn to_epl_round_trips_known_queries() {
        for src in [
            "select count(*) from audit(cmd = 'open').win:time(60) group by src having count(*) > 10",
            "select sum(bytes) from block_read.win:length(100)",
            "select avg(bytes) from block_read(dn != 'dn3', bytes > 100).win:time(5) group by dn",
        ] {
            let q = parse(src).unwrap();
            let printed = to_epl(&q);
            let back = parse(&printed).unwrap_or_else(|e| panic!("reparse '{printed}': {e}"));
            assert_eq!(q, back, "{src}");
        }
    }

    mod roundtrip_properties {
        use super::*;
        use proptest::prelude::*;

        fn ident() -> impl Strategy<Value = String> {
            "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
        }

        fn agg() -> impl Strategy<Value = AggFn> {
            prop_oneof![
                Just(AggFn::Count),
                ident().prop_map(AggFn::Sum),
                ident().prop_map(AggFn::Avg),
                ident().prop_map(AggFn::Max),
                ident().prop_map(AggFn::Min),
                ident().prop_map(AggFn::CountDistinct),
            ]
        }

        fn pred() -> impl Strategy<Value = Predicate> {
            prop_oneof![
                (ident(), "[a-z0-9/_]{1,10}").prop_map(|(f, v)| Predicate::Eq(f, Value::str(v))),
                (ident(), -1000i64..1000).prop_map(|(f, v)| Predicate::Eq(f, Value::Int(v))),
                (ident(), "[a-z]{1,6}").prop_map(|(f, v)| Predicate::Ne(f, Value::str(v))),
                (ident(), 0.0f64..1e6).prop_map(|(f, b)| Predicate::Gt(f, b)),
                (ident(), 0.0f64..1e6).prop_map(|(f, b)| Predicate::Lt(f, b)),
            ]
        }

        fn window() -> impl Strategy<Value = WindowSpec> {
            prop_oneof![
                (1u64..100_000).prop_map(|s| WindowSpec::Time(SimDuration::from_secs(s))),
                (1usize..100_000).prop_map(WindowSpec::Length),
            ]
        }

        fn having() -> impl Strategy<Value = Option<Comparison>> {
            prop_oneof![
                Just(None),
                (0.0f64..1e6).prop_map(|b| Some(Comparison::Gt(b))),
                (0.0f64..1e6).prop_map(|b| Some(Comparison::Ge(b))),
                (0.0f64..1e6).prop_map(|b| Some(Comparison::Lt(b))),
                (0.0f64..1e6).prop_map(|b| Some(Comparison::Le(b))),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]
            #[test]
            fn parse_inverts_to_epl(
                from in ident(),
                preds in prop::collection::vec(pred(), 0..4),
                win in window(),
                group in prop::option::of(ident()),
                aggregate in agg(),
                hav in having(),
            ) {
                let spec = QuerySpec {
                    from: Some(from),
                    predicates: preds,
                    window: win,
                    group_by: group,
                    aggregate,
                    having: hav,
                };
                let text = to_epl(&spec);
                let back = parse(&text)
                    .unwrap_or_else(|e| panic!("reparse '{text}': {e}"));
                prop_assert_eq!(spec, back);
            }
        }
    }

    #[test]
    fn paths_lex_as_idents() {
        // group-by fields and event types may contain '/','_','-'
        let q = parse("select count(*) from block_read.win:time(1) group by blk_id").unwrap();
        assert_eq!(q.group_by.as_deref(), Some("blk_id"));
    }
}
