//! HDFS audit-log parsing — the paper's "log parser".
//!
//! The paper's authors "developed a log parser to analyze the HDFS audit
//! logs and translate the log records into events for the CEP system".
//! This module is that component. Two line shapes are understood,
//! mirroring what a Hadoop namenode and datanode emit:
//!
//! * namespace operations (`FSNamesystem.audit`):
//!   `12.500 FSNamesystem.audit: allowed=true ugi=alice ip=/10.0.0.7
//!    cmd=open src=/data/f dst=null perm=null` → event type `audit`;
//! * block transfers (`datanode.clienttrace`, how real datanodes log
//!   per-block reads):
//!   `12.501 datanode.clienttrace: cmd=read_block blk=blk_42 dn=dn3
//!    src=/data/f bytes=67108864` → event type `block_read`.
//!
//! The leading token is the simulation timestamp in seconds. Unknown
//! `key=value` pairs are preserved verbatim; `null` values are dropped.

use crate::event::{Event, Value};
use crate::fnv::FnvBuildHasher;
use simcore::SimTime;
use std::collections::HashSet;
use std::sync::Arc;

/// Event type emitted for namenode audit lines.
pub const AUDIT_EVENT: &str = "audit";
/// Event type emitted for datanode block-transfer lines.
pub const BLOCK_EVENT: &str = "block_read";

const AUDIT_MARKER: &str = "FSNamesystem.audit:";
const BLOCK_MARKER: &str = "datanode.clienttrace:";

/// Why a line failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum LineError {
    Empty,
    BadTimestamp(String),
    UnknownMarker(String),
    BadPair(String),
}

impl std::fmt::Display for LineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineError::Empty => write!(f, "empty line"),
            LineError::BadTimestamp(t) => write!(f, "bad timestamp '{t}'"),
            LineError::UnknownMarker(l) => write!(f, "no known log marker in '{l}'"),
            LineError::BadPair(p) => write!(f, "malformed key=value pair '{p}'"),
        }
    }
}
impl std::error::Error for LineError {}

/// Parse one audit-log line into a CEP event.
///
/// One-shot convenience over a throwaway [`LineParser`]. Callers on a
/// hot loop (the judge's audit drain) should hold a parser instead so
/// keys, type names and recurring string values are interned across
/// lines rather than re-allocated per event.
pub fn parse_line(line: &str) -> Result<Event, LineError> {
    LineParser::new().parse(line)
}

/// Cap on distinct interned strings; past it the parser stops caching
/// new ones (falling back to per-event allocation) so adversarial input
/// can't grow the pool without bound.
const INTERN_CAP: usize = 1 << 20;

/// Cap on per-key slots; keys past it intern through the shared pool.
/// Real audit streams carry well under a dozen distinct keys.
const KEY_SLOT_CAP: usize = 32;

/// One known field key plus a memo of the last value text seen under it
/// and that text's classified [`Value`]. Audit streams repeat values
/// per key for long stretches (`ugi=`, `ip=`, `cmd=`, `allowed=`), so
/// the memo turns most classifications into a single string compare.
#[derive(Debug)]
struct KeySlot {
    key: Arc<str>,
    /// False when a projection is set and this key is not in it: the
    /// whole pair is skipped without classifying or storing.
    kept: bool,
    last_raw: String,
    last_value: Option<Value>,
}

/// Direct-mapped body-memo size (power of two). The flash-crowd lines
/// that dominate an audit storm rotate over a small set of distinct
/// bodies, so a few dozen slots hold the whole working set.
const BODY_MEMO_SLOTS: usize = 64;

/// Bodies longer than this are parsed but never memoized, bounding the
/// memo's memory at `BODY_MEMO_SLOTS * BODY_MEMO_MAX_LEN` body bytes.
const BODY_MEMO_MAX_LEN: usize = 256;

/// One memoized line body and its full parse result. Parsing is a pure
/// function of the body bytes (the timestamp sits outside the marker
/// body), so replaying the cached event — refcount bumps only — is
/// byte-for-byte identical to reparsing.
#[derive(Debug)]
struct BodyMemo {
    marker: usize,
    body: String,
    event: Event,
}

/// A reusable audit-line parser with a string-intern pool.
///
/// Audit streams repeat themselves: the same handful of field keys on
/// every line, the same commands, users and block/path names across
/// millions of lines. Interning turns each recurrence into one hash
/// probe and an `Arc` refcount bump — the difference between ~13 and
/// ~2 allocations per parsed line, which is what the ≥2M events/sec
/// CEP ingest budget requires.
#[derive(Debug, Default)]
pub struct LineParser {
    pool: HashSet<Arc<str>, FnvBuildHasher>,
    audit_type: Option<Arc<str>>,
    block_type: Option<Arc<str>>,
    /// Known field keys, linear-scanned: with ≤ a dozen distinct keys a
    /// few byte compares beat a hash probe.
    slots: Vec<KeySlot>,
    /// Projection pushdown: when set, only these keys are materialized
    /// on parsed events (the consumer declares what its queries read).
    projection: Option<Vec<Arc<str>>>,
    /// Per-marker memo of the previous line's slot-index sequence.
    /// Consecutive lines of one shape repeat the same keys in the same
    /// order, so each pair usually resolves with one string compare
    /// instead of a slot scan. `[0]` = audit lines, `[1]` = block lines.
    shapes: [Vec<u32>; 2],
    /// Scratch for the shape being observed on the current line.
    shape_scratch: Vec<u32>,
    /// Last timestamp token and its parsed value. Audit streams emit
    /// bursts of lines with the identical timestamp text, so one string
    /// compare usually replaces a float parse.
    ts_memo: (String, SimTime),
    /// Direct-mapped `body → parsed event` cache (lazily sized to
    /// [`BODY_MEMO_SLOTS`]). A hit skips tokenization and
    /// classification entirely: hash, one compare, clone the fields.
    body_memo: Vec<Option<BodyMemo>>,
    /// Promote-on-second-sight filter: the body hash last seen missing
    /// in each slot. One-shot bodies (unique paths in a scan tail)
    /// never match twice, so they neither pay the insert cost nor
    /// evict the flash-crowd entries that do repeat.
    body_cand: Vec<u64>,
}

impl LineParser {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`: the pooled `Arc<str>` if seen before, a fresh one
    /// (cached while the pool is under its cap) otherwise.
    pub fn intern(&mut self, s: &str) -> Arc<str> {
        if let Some(hit) = self.pool.get(s) {
            return hit.clone();
        }
        let fresh: Arc<str> = Arc::from(s);
        if self.pool.len() < INTERN_CAP {
            self.pool.insert(fresh.clone());
        }
        fresh
    }

    /// Restrict parsed events to these field keys — projection pushdown
    /// for consumers whose queries read a known field set. Pairs under
    /// other keys are tokenized (the line is still validated) but never
    /// classified or stored. Clears any previously set projection state.
    pub fn project(&mut self, keys: &[&str]) {
        self.slots.clear();
        self.body_memo.clear();
        self.body_cand.clear();
        self.projection = Some(keys.iter().map(|k| Arc::from(*k)).collect());
    }

    fn keep(&self, key: &str) -> bool {
        self.projection
            .as_ref()
            .is_none_or(|p| p.iter().any(|k| k.as_ref() == key))
    }

    /// Parse one line, sharing strings with everything parsed before.
    pub fn parse(&mut self, line: &str) -> Result<Event, LineError> {
        let mut out = Event::new_interned(SimTime::ZERO, Arc::from(""), 8);
        self.parse_into(line, &mut out)?;
        Ok(out)
    }

    fn timestamp(&mut self, ts_str: &str) -> Result<SimTime, LineError> {
        if self.ts_memo.0 == ts_str && !ts_str.is_empty() {
            return Ok(self.ts_memo.1);
        }
        let secs: f64 = ts_str
            .parse()
            .map_err(|_| LineError::BadTimestamp(ts_str.to_string()))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(LineError::BadTimestamp(ts_str.to_string()));
        }
        let time = SimTime::from_secs_f64(secs);
        self.ts_memo.0.clear();
        self.ts_memo.0.push_str(ts_str);
        self.ts_memo.1 = time;
        Ok(time)
    }

    /// [`parse`](Self::parse) into a caller-owned scratch event — the
    /// zero-allocation form for hot loops (the judge reuses one event
    /// across its whole audit drain). On error `out` is unspecified.
    ///
    /// Tokenization is a single byte-level pass (audit lines are ASCII;
    /// multi-byte text inside a token passes through untouched, but only
    /// ASCII whitespace separates tokens).
    pub fn parse_into(&mut self, line: &str, out: &mut Event) -> Result<(), LineError> {
        simcore::prof_scope!("cep/parse");
        let line = line.trim();
        if line.is_empty() {
            return Err(LineError::Empty);
        }
        let sp = line
            .as_bytes()
            .iter()
            .position(|b| b.is_ascii_whitespace())
            .ok_or(LineError::Empty)?;
        let time = self.timestamp(&line[..sp])?;
        let rest = &line[sp + 1..];

        let (event_type, body, marker) = if let Some(body) = marker_body(rest, AUDIT_MARKER) {
            let ty = self
                .audit_type
                .get_or_insert_with(|| Arc::from(AUDIT_EVENT))
                .clone();
            (ty, body, 0usize)
        } else if let Some(body) = marker_body(rest, BLOCK_MARKER) {
            let ty = self
                .block_type
                .get_or_insert_with(|| Arc::from(BLOCK_EVENT))
                .clone();
            (ty, body, 1usize)
        } else {
            return Err(LineError::UnknownMarker(rest.to_string()));
        };

        out.reset_interned(time, event_type);
        let bytes = body.as_bytes();

        // Body memo: identical bodies parse to identical fields, and
        // the storm traffic that dominates ingest repeats a small body
        // set for long stretches. A hit replays the cached result.
        let memoizable = bytes.len() <= BODY_MEMO_MAX_LEN;
        let mut memo_idx = 0usize;
        let mut memo_hash = 0u64;
        if memoizable {
            if self.body_memo.is_empty() {
                self.body_memo.resize_with(BODY_MEMO_SLOTS, || None);
                self.body_cand.resize(BODY_MEMO_SLOTS, 0);
            }
            memo_hash = body_hash(bytes) ^ (marker as u64).wrapping_mul(0x9E37_79B9);
            memo_idx = memo_hash as usize & (BODY_MEMO_SLOTS - 1);
            if let Some(m) = &self.body_memo[memo_idx] {
                if m.marker == marker && m.body == body {
                    out.clone_fields_from(&m.event);
                    return Ok(());
                }
            }
        }

        let mut i = 0;
        // Shape memo bookkeeping: `pos` walks the previous line's slot
        // sequence while it keeps matching; `usable` stays true while
        // every pair resolves to a slot index (so the observed sequence
        // can replace the memo).
        let mut pos = 0usize;
        let mut shape_hit = true;
        let mut shape_usable = true;
        self.shape_scratch.clear();
        while i < bytes.len() {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i == bytes.len() {
                break;
            }
            let start = i;
            let mut eq = usize::MAX;
            while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
                if bytes[i] == b'=' && eq == usize::MAX {
                    eq = i;
                }
                i += 1;
            }
            if eq == usize::MAX || eq == start {
                return Err(LineError::BadPair(body[start..i].to_string()));
            }
            let key = &body[start..eq];
            let value = &body[eq + 1..i];
            if value == "null" {
                continue;
            }
            let expected = if shape_hit {
                self.shapes[marker].get(pos).copied()
            } else {
                None
            };
            let si = match expected {
                Some(e)
                    if self
                        .slots
                        .get(e as usize)
                        .is_some_and(|s| s.key.as_ref() == key) =>
                {
                    pos += 1;
                    Some(e as usize)
                }
                _ => {
                    shape_hit = false;
                    match self.slots.iter().position(|s| s.key.as_ref() == key) {
                        Some(si) => Some(si),
                        None if self.slots.len() < KEY_SLOT_CAP => {
                            let kept = self.keep(key);
                            let key = self.intern(key);
                            self.slots.push(KeySlot {
                                key,
                                kept,
                                last_raw: String::new(),
                                last_value: None,
                            });
                            Some(self.slots.len() - 1)
                        }
                        None => None,
                    }
                }
            };
            match si {
                Some(si) => {
                    if shape_usable {
                        self.shape_scratch.push(si as u32);
                    }
                    if !self.slots[si].kept {
                        continue;
                    }
                    if self.slots[si].last_raw == value {
                        if let Some(v) = self.slots[si].last_value.clone() {
                            out.set_interned(self.slots[si].key.clone(), v);
                            continue;
                        }
                    }
                    let parsed = self.classify(value);
                    let slot = &mut self.slots[si];
                    slot.last_raw.clear();
                    slot.last_raw.push_str(value);
                    slot.last_value = Some(parsed.clone());
                    out.set_interned(slot.key.clone(), parsed);
                }
                // Slot table full: intern through the shared pool.
                None => {
                    shape_usable = false;
                    if !self.keep(key) {
                        continue;
                    }
                    let parsed = self.classify(value);
                    let key = self.intern(key);
                    out.set_interned(key, parsed);
                }
            }
        }
        if !shape_hit {
            if shape_usable {
                std::mem::swap(&mut self.shapes[marker], &mut self.shape_scratch);
            } else {
                self.shapes[marker].clear();
            }
        }
        if memoizable {
            if self.body_cand[memo_idx] == memo_hash {
                self.body_memo[memo_idx] = Some(BodyMemo {
                    marker,
                    body: body.to_string(),
                    event: out.clone(),
                });
            } else {
                self.body_cand[memo_idx] = memo_hash;
            }
        }
        Ok(())
    }

    /// Classify one field value: int, then float, then bool literal,
    /// then interned string. The first byte gates the numeric attempts —
    /// only `[0-9+-.]` and the `inf`/`nan` spellings (`i`/`n`, either
    /// case) can start a successful Rust numeric parse, so values like
    /// paths and commands skip two guaranteed-to-fail parses.
    fn classify(&mut self, value: &str) -> Value {
        let numeric_looking = matches!(
            value.as_bytes().first(),
            Some(b'0'..=b'9' | b'+' | b'-' | b'.' | b'i' | b'I' | b'n' | b'N')
        );
        if numeric_looking {
            if let Ok(i) = value.parse::<i64>() {
                return Value::Int(i);
            }
            if let Ok(f) = value.parse::<f64>() {
                return Value::Float(f);
            }
        }
        if value == "true" {
            return Value::Bool(true);
        }
        if value == "false" {
            return Value::Bool(false);
        }
        Value::Str(self.intern(value))
    }
}

/// Hash a line body eight bytes at a time (FxHash-style multiply-mix).
/// The byte-at-a-time FNV pool hasher is fine for short keys but too
/// slow for ~100-byte bodies on the per-line fast path.
fn body_hash(bytes: &[u8]) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let mut h = bytes.len() as u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("exact 8-byte chunk"));
        h = (h.rotate_left(29) ^ w).wrapping_mul(K);
    }
    let mut tail = 0u64;
    for &b in chunks.remainder() {
        tail = (tail << 8) | u64::from(b);
    }
    (h.rotate_left(29) ^ tail).wrapping_mul(K)
}

fn marker_body<'a>(rest: &'a str, marker: &str) -> Option<&'a str> {
    // Fast path: well-formed lines put the marker right after the
    // timestamp, so a prefix test beats the substring scan.
    if let Some(body) = rest.strip_prefix(marker) {
        return Some(body.trim_start());
    }
    rest.find(marker)
        .map(|idx| rest[idx + marker.len()..].trim_start())
}

/// Format an audit event back into the canonical namenode line — the
/// simulator's audit sink uses this so that the *textual* log is the
/// interface between HDFS and ERMS, exactly as in the paper.
pub fn format_audit_line(
    time: SimTime,
    user: &str,
    ip: &str,
    cmd: &str,
    src: &str,
    dst: Option<&str>,
) -> String {
    format!(
        "{:.6} {} allowed=true ugi={} ip={} cmd={} src={} dst={} perm=null",
        time.as_secs_f64(),
        AUDIT_MARKER,
        user,
        ip,
        cmd,
        src,
        dst.unwrap_or("null"),
    )
}

/// Format a datanode block-transfer line.
pub fn format_block_line(
    time: SimTime,
    blk: &str,
    datanode: &str,
    src: &str,
    bytes: u64,
) -> String {
    format!(
        "{:.6} {} cmd=read_block blk={} dn={} src={} bytes={}",
        time.as_secs_f64(),
        BLOCK_MARKER,
        blk,
        datanode,
        src,
        bytes,
    )
}

/// Parse a whole log, skipping blank lines; returns events plus the
/// number of malformed lines (a real parser must tolerate noise).
pub fn parse_log(text: &str) -> (Vec<Event>, usize) {
    let mut events = Vec::new();
    let mut bad = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(e) => events.push(e),
            Err(_) => bad += 1,
        }
    }
    (events, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_line_round_trip() {
        let line = format_audit_line(
            SimTime::from_millis(12_500),
            "alice",
            "/10.0.0.7",
            "open",
            "/data/f",
            None,
        );
        let e = parse_line(&line).unwrap();
        assert_eq!(e.event_type.as_ref(), AUDIT_EVENT);
        assert_eq!(e.time, SimTime::from_millis(12_500));
        assert_eq!(e.get("cmd").unwrap().as_str(), Some("open"));
        assert_eq!(e.get("src").unwrap().as_str(), Some("/data/f"));
        assert_eq!(e.get("ugi").unwrap().as_str(), Some("alice"));
        assert_eq!(e.get("allowed").unwrap().as_bool(), Some(true));
        assert!(e.get("dst").is_none(), "null values are dropped");
        assert!(e.get("perm").is_none());
    }

    #[test]
    fn block_line_round_trip() {
        let line = format_block_line(SimTime::from_secs(99), "blk_42", "dn3", "/data/f", 67108864);
        let e = parse_line(&line).unwrap();
        assert_eq!(e.event_type.as_ref(), BLOCK_EVENT);
        assert_eq!(e.get("blk").unwrap().as_str(), Some("blk_42"));
        assert_eq!(e.get("dn").unwrap().as_str(), Some("dn3"));
        assert_eq!(e.get("bytes").unwrap().as_i64(), Some(67108864));
    }

    #[test]
    fn rename_carries_dst() {
        let line = format_audit_line(
            SimTime::from_secs(1),
            "bob",
            "/10.0.0.1",
            "rename",
            "/a",
            Some("/b"),
        );
        let e = parse_line(&line).unwrap();
        assert_eq!(e.get("dst").unwrap().as_str(), Some("/b"));
    }

    #[test]
    fn malformed_lines_error() {
        assert_eq!(parse_line(""), Err(LineError::Empty));
        assert!(matches!(
            parse_line("abc FSNamesystem.audit: cmd=open"),
            Err(LineError::BadTimestamp(_))
        ));
        assert!(matches!(
            parse_line("-5 FSNamesystem.audit: cmd=open"),
            Err(LineError::BadTimestamp(_))
        ));
        assert!(matches!(
            parse_line("1.0 SomethingElse: cmd=open"),
            Err(LineError::UnknownMarker(_))
        ));
        assert!(matches!(
            parse_line("1.0 FSNamesystem.audit: notapair"),
            Err(LineError::BadPair(_))
        ));
    }

    #[test]
    fn parse_log_tolerates_noise() {
        let text = format!(
            "{}\n\ngarbage line here\n{}\n",
            format_audit_line(SimTime::from_secs(1), "u", "/1", "open", "/f", None),
            format_block_line(SimTime::from_secs(2), "blk_1", "dn0", "/f", 64),
        );
        let (events, bad) = parse_log(&text);
        assert_eq!(events.len(), 2);
        assert_eq!(bad, 1);
    }

    #[test]
    fn numeric_fields_become_numbers() {
        let e = parse_line("3.5 datanode.clienttrace: bytes=100 ratio=0.5 name=abc").unwrap();
        assert_eq!(e.get("bytes").unwrap().as_i64(), Some(100));
        assert_eq!(e.get("ratio").unwrap().as_f64(), Some(0.5));
        assert_eq!(e.get("name").unwrap().as_str(), Some("abc"));
    }

    #[test]
    fn feeds_cep_engine_end_to_end() {
        use crate::engine::CepEngine;
        use crate::epl;
        // The exact pipeline of the paper: audit text → parser → CEP.
        let mut log = String::new();
        for i in 0..6u64 {
            log.push_str(&format_audit_line(
                SimTime::from_secs(i),
                "u",
                "/10.0.0.2",
                "open",
                "/hot/file",
                None,
            ));
            log.push('\n');
        }
        let (events, bad) = parse_log(&log);
        assert_eq!(bad, 0);
        let mut eng = CepEngine::new();
        let q = eng.register(
            epl::parse("select count(*) from audit(cmd='open').win:time(60) group by src").unwrap(),
        );
        for e in &events {
            eng.push(e);
        }
        assert_eq!(eng.value_for(q, SimTime::from_secs(5), "/hot/file"), 6.0);
    }
}
