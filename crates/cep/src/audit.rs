//! HDFS audit-log parsing — the paper's "log parser".
//!
//! The paper's authors "developed a log parser to analyze the HDFS audit
//! logs and translate the log records into events for the CEP system".
//! This module is that component. Two line shapes are understood,
//! mirroring what a Hadoop namenode and datanode emit:
//!
//! * namespace operations (`FSNamesystem.audit`):
//!   `12.500 FSNamesystem.audit: allowed=true ugi=alice ip=/10.0.0.7
//!    cmd=open src=/data/f dst=null perm=null` → event type `audit`;
//! * block transfers (`datanode.clienttrace`, how real datanodes log
//!   per-block reads):
//!   `12.501 datanode.clienttrace: cmd=read_block blk=blk_42 dn=dn3
//!    src=/data/f bytes=67108864` → event type `block_read`.
//!
//! The leading token is the simulation timestamp in seconds. Unknown
//! `key=value` pairs are preserved verbatim; `null` values are dropped.

use crate::event::Event;
use simcore::SimTime;

/// Event type emitted for namenode audit lines.
pub const AUDIT_EVENT: &str = "audit";
/// Event type emitted for datanode block-transfer lines.
pub const BLOCK_EVENT: &str = "block_read";

const AUDIT_MARKER: &str = "FSNamesystem.audit:";
const BLOCK_MARKER: &str = "datanode.clienttrace:";

/// Why a line failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum LineError {
    Empty,
    BadTimestamp(String),
    UnknownMarker(String),
    BadPair(String),
}

impl std::fmt::Display for LineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineError::Empty => write!(f, "empty line"),
            LineError::BadTimestamp(t) => write!(f, "bad timestamp '{t}'"),
            LineError::UnknownMarker(l) => write!(f, "no known log marker in '{l}'"),
            LineError::BadPair(p) => write!(f, "malformed key=value pair '{p}'"),
        }
    }
}
impl std::error::Error for LineError {}

/// Parse one audit-log line into a CEP event.
pub fn parse_line(line: &str) -> Result<Event, LineError> {
    let line = line.trim();
    if line.is_empty() {
        return Err(LineError::Empty);
    }
    let (ts_str, rest) = line
        .split_once(char::is_whitespace)
        .ok_or(LineError::Empty)?;
    let secs: f64 = ts_str
        .parse()
        .map_err(|_| LineError::BadTimestamp(ts_str.to_string()))?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(LineError::BadTimestamp(ts_str.to_string()));
    }
    let time = SimTime::from_secs_f64(secs);

    let (event_type, body) = if let Some(body) = marker_body(rest, AUDIT_MARKER) {
        (AUDIT_EVENT, body)
    } else if let Some(body) = marker_body(rest, BLOCK_MARKER) {
        (BLOCK_EVENT, body)
    } else {
        return Err(LineError::UnknownMarker(rest.to_string()));
    };

    let mut event = Event::new(time, event_type);
    for pair in body.split_whitespace() {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| LineError::BadPair(pair.to_string()))?;
        if key.is_empty() {
            return Err(LineError::BadPair(pair.to_string()));
        }
        if value == "null" {
            continue;
        }
        if let Ok(i) = value.parse::<i64>() {
            event.set(key, i);
        } else if let Ok(f) = value.parse::<f64>() {
            event.set(key, f);
        } else if value == "true" || value == "false" {
            event.set(key, value == "true");
        } else {
            event.set(key, value);
        }
    }
    Ok(event)
}

fn marker_body<'a>(rest: &'a str, marker: &str) -> Option<&'a str> {
    rest.find(marker)
        .map(|idx| rest[idx + marker.len()..].trim_start())
}

/// Format an audit event back into the canonical namenode line — the
/// simulator's audit sink uses this so that the *textual* log is the
/// interface between HDFS and ERMS, exactly as in the paper.
pub fn format_audit_line(
    time: SimTime,
    user: &str,
    ip: &str,
    cmd: &str,
    src: &str,
    dst: Option<&str>,
) -> String {
    format!(
        "{:.6} {} allowed=true ugi={} ip={} cmd={} src={} dst={} perm=null",
        time.as_secs_f64(),
        AUDIT_MARKER,
        user,
        ip,
        cmd,
        src,
        dst.unwrap_or("null"),
    )
}

/// Format a datanode block-transfer line.
pub fn format_block_line(
    time: SimTime,
    blk: &str,
    datanode: &str,
    src: &str,
    bytes: u64,
) -> String {
    format!(
        "{:.6} {} cmd=read_block blk={} dn={} src={} bytes={}",
        time.as_secs_f64(),
        BLOCK_MARKER,
        blk,
        datanode,
        src,
        bytes,
    )
}

/// Parse a whole log, skipping blank lines; returns events plus the
/// number of malformed lines (a real parser must tolerate noise).
pub fn parse_log(text: &str) -> (Vec<Event>, usize) {
    let mut events = Vec::new();
    let mut bad = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(e) => events.push(e),
            Err(_) => bad += 1,
        }
    }
    (events, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_line_round_trip() {
        let line = format_audit_line(
            SimTime::from_millis(12_500),
            "alice",
            "/10.0.0.7",
            "open",
            "/data/f",
            None,
        );
        let e = parse_line(&line).unwrap();
        assert_eq!(e.event_type.as_ref(), AUDIT_EVENT);
        assert_eq!(e.time, SimTime::from_millis(12_500));
        assert_eq!(e.get("cmd").unwrap().as_str(), Some("open"));
        assert_eq!(e.get("src").unwrap().as_str(), Some("/data/f"));
        assert_eq!(e.get("ugi").unwrap().as_str(), Some("alice"));
        assert_eq!(e.get("allowed").unwrap().as_bool(), Some(true));
        assert!(e.get("dst").is_none(), "null values are dropped");
        assert!(e.get("perm").is_none());
    }

    #[test]
    fn block_line_round_trip() {
        let line = format_block_line(SimTime::from_secs(99), "blk_42", "dn3", "/data/f", 67108864);
        let e = parse_line(&line).unwrap();
        assert_eq!(e.event_type.as_ref(), BLOCK_EVENT);
        assert_eq!(e.get("blk").unwrap().as_str(), Some("blk_42"));
        assert_eq!(e.get("dn").unwrap().as_str(), Some("dn3"));
        assert_eq!(e.get("bytes").unwrap().as_i64(), Some(67108864));
    }

    #[test]
    fn rename_carries_dst() {
        let line = format_audit_line(
            SimTime::from_secs(1),
            "bob",
            "/10.0.0.1",
            "rename",
            "/a",
            Some("/b"),
        );
        let e = parse_line(&line).unwrap();
        assert_eq!(e.get("dst").unwrap().as_str(), Some("/b"));
    }

    #[test]
    fn malformed_lines_error() {
        assert_eq!(parse_line(""), Err(LineError::Empty));
        assert!(matches!(
            parse_line("abc FSNamesystem.audit: cmd=open"),
            Err(LineError::BadTimestamp(_))
        ));
        assert!(matches!(
            parse_line("-5 FSNamesystem.audit: cmd=open"),
            Err(LineError::BadTimestamp(_))
        ));
        assert!(matches!(
            parse_line("1.0 SomethingElse: cmd=open"),
            Err(LineError::UnknownMarker(_))
        ));
        assert!(matches!(
            parse_line("1.0 FSNamesystem.audit: notapair"),
            Err(LineError::BadPair(_))
        ));
    }

    #[test]
    fn parse_log_tolerates_noise() {
        let text = format!(
            "{}\n\ngarbage line here\n{}\n",
            format_audit_line(SimTime::from_secs(1), "u", "/1", "open", "/f", None),
            format_block_line(SimTime::from_secs(2), "blk_1", "dn0", "/f", 64),
        );
        let (events, bad) = parse_log(&text);
        assert_eq!(events.len(), 2);
        assert_eq!(bad, 1);
    }

    #[test]
    fn numeric_fields_become_numbers() {
        let e = parse_line("3.5 datanode.clienttrace: bytes=100 ratio=0.5 name=abc").unwrap();
        assert_eq!(e.get("bytes").unwrap().as_i64(), Some(100));
        assert_eq!(e.get("ratio").unwrap().as_f64(), Some(0.5));
        assert_eq!(e.get("name").unwrap().as_str(), Some("abc"));
    }

    #[test]
    fn feeds_cep_engine_end_to_end() {
        use crate::engine::CepEngine;
        use crate::epl;
        // The exact pipeline of the paper: audit text → parser → CEP.
        let mut log = String::new();
        for i in 0..6u64 {
            log.push_str(&format_audit_line(
                SimTime::from_secs(i),
                "u",
                "/10.0.0.2",
                "open",
                "/hot/file",
                None,
            ));
            log.push('\n');
        }
        let (events, bad) = parse_log(&log);
        assert_eq!(bad, 0);
        let mut eng = CepEngine::new();
        let q = eng.register(
            epl::parse("select count(*) from audit(cmd='open').win:time(60) group by src").unwrap(),
        );
        for e in &events {
            eng.push(e);
        }
        assert_eq!(eng.value_for(q, SimTime::from_secs(5), "/hot/file"), 6.0);
    }
}
