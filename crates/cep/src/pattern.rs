//! Event-sequence patterns (correlation).
//!
//! The paper's CEP engine "identifies the most meaningful events from
//! event clouds, analyzes their correlation, and takes action in real
//! time". Windowed aggregation (the [`crate::query`] module) covers the
//! counting rules; this module covers *sequences*: "an `A` event followed
//! by a `B` event within `t`, correlated on a key" — e.g. a file
//! `create` followed by a burst-opening `open` on the same path (a
//! fresh-data popularity spike), or a datanode decommission followed by
//! reads of blocks it held.
//!
//! Matching semantics: every unexpired `A` pairs with the first
//! subsequent `B` that shares its correlation key (each `A` fires at most
//! once; a `B` may complete several pending `A`s arriving in one batch of
//! distinct keys, but consumes at most one `A` per key — the common
//! "first match, no reuse" CEP policy).

use crate::event::Event;
use crate::query::Predicate;
use simcore::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Filter for one leg of a sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct EventFilter {
    /// Event type; `None` matches any.
    pub event_type: Option<String>,
    pub predicates: Vec<Predicate>,
}

impl EventFilter {
    pub fn of_type(t: impl Into<String>) -> Self {
        EventFilter {
            event_type: Some(t.into()),
            predicates: Vec::new(),
        }
    }

    pub fn with(mut self, p: Predicate) -> Self {
        self.predicates.push(p);
        self
    }

    pub fn matches(&self, e: &Event) -> bool {
        if let Some(t) = &self.event_type {
            if e.event_type.as_ref() != t {
                return false;
            }
        }
        self.predicates.iter().all(|p| p.matches(e))
    }
}

/// `first` followed by `second` within `within`, correlated on `key_field`.
#[derive(Debug, Clone, PartialEq)]
pub struct FollowedBy {
    pub first: EventFilter,
    pub second: EventFilter,
    pub within: SimDuration,
    /// Field whose value must be equal on both events; `None` correlates
    /// any A with any B.
    pub key_field: Option<String>,
}

/// A completed sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternMatch {
    pub first: Event,
    pub second: Event,
}

impl PatternMatch {
    pub fn gap(&self) -> SimDuration {
        self.second.time.since(self.first.time)
    }
}

/// Incremental matcher for one [`FollowedBy`] pattern.
#[derive(Debug)]
pub struct PatternState {
    spec: FollowedBy,
    /// Pending unmatched `A` events, oldest first.
    pending: VecDeque<Event>,
    matches_emitted: u64,
}

impl PatternState {
    pub fn new(spec: FollowedBy) -> Self {
        PatternState {
            spec,
            pending: VecDeque::new(),
            matches_emitted: 0,
        }
    }

    pub fn spec(&self) -> &FollowedBy {
        &self.spec
    }
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
    pub fn matches_emitted(&self) -> u64 {
        self.matches_emitted
    }

    fn expire(&mut self, now: SimTime) {
        let within = self.spec.within;
        while let Some(front) = self.pending.front() {
            if front.time + within < now {
                self.pending.pop_front();
            } else {
                break;
            }
        }
    }

    fn keys_equal(&self, a: &Event, b: &Event) -> bool {
        match &self.spec.key_field {
            None => true,
            Some(k) => match (a.get(k), b.get(k)) {
                (Some(x), Some(y)) => x.loosely_eq(y),
                _ => false,
            },
        }
    }

    /// Offer an event (non-decreasing time); returns completed matches.
    pub fn offer(&mut self, event: &Event) -> Vec<PatternMatch> {
        self.expire(event.time);
        let mut out = Vec::new();
        // B leg first: an event may satisfy both legs, but it cannot
        // complete itself (strictly-later semantics would drop same-time
        // matches; we allow same-time-or-later pairs from *earlier* As)
        if self.spec.second.matches(event) {
            if let Some(pos) = self.pending.iter().position(|a| self.keys_equal(a, event)) {
                let first = self.pending.remove(pos).expect("position valid");
                self.matches_emitted += 1;
                out.push(PatternMatch {
                    first,
                    second: event.clone(),
                });
            }
        }
        if self.spec.first.matches(event) {
            self.pending.push_back(event.clone());
        }
        out
    }
}

impl checkpoint::Checkpointable for PatternState {
    // The spec is rebuilt by re-registration on restore; only the pending
    // `A` queue and the emitted-match counter are runtime state.
    fn save_state(&self) -> checkpoint::Value {
        use checkpoint::codec::MapBuilder;
        MapBuilder::new()
            .seq(
                "pending",
                self.pending.iter().map(crate::event::ck::event).collect(),
            )
            .u64("matches_emitted", self.matches_emitted)
            .build()
    }

    fn load_state(&mut self, state: &checkpoint::Value) -> Result<(), checkpoint::CheckpointError> {
        use checkpoint::codec as c;
        self.pending = c::get_seq(state, "pending")?
            .iter()
            .map(crate::event::ck::event_back)
            .collect::<Result<_, _>>()?;
        self.matches_emitted = c::get_u64(state, "matches_emitted")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Value;

    fn ev(t: u64, ty: &str, path: &str) -> Event {
        Event::new(SimTime::from_secs(t), ty).with("src", path)
    }

    fn create_then_open(within: u64) -> PatternState {
        PatternState::new(FollowedBy {
            first: EventFilter::of_type("audit")
                .with(Predicate::Eq("cmd".into(), Value::str("create"))),
            second: EventFilter::of_type("audit")
                .with(Predicate::Eq("cmd".into(), Value::str("open"))),
            within: SimDuration::from_secs(within),
            key_field: Some("src".into()),
        })
    }

    fn audit(t: u64, cmd: &str, path: &str) -> Event {
        ev(t, "audit", path).with("cmd", cmd)
    }

    #[test]
    fn matches_within_window_on_same_key() {
        let mut p = create_then_open(60);
        assert!(p.offer(&audit(0, "create", "/a")).is_empty());
        let m = p.offer(&audit(30, "open", "/a"));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].gap(), SimDuration::from_secs(30));
        assert_eq!(p.matches_emitted(), 1);
        assert_eq!(p.pending_len(), 0, "A consumed by its match");
    }

    #[test]
    fn different_keys_do_not_match() {
        let mut p = create_then_open(60);
        p.offer(&audit(0, "create", "/a"));
        assert!(p.offer(&audit(10, "open", "/b")).is_empty());
        assert_eq!(p.pending_len(), 1, "A for /a still waiting");
    }

    #[test]
    fn expiry_drops_stale_as() {
        let mut p = create_then_open(60);
        p.offer(&audit(0, "create", "/a"));
        // 61s later: the A has expired
        assert!(p.offer(&audit(61, "open", "/a")).is_empty());
        assert_eq!(p.pending_len(), 0);
    }

    #[test]
    fn boundary_time_still_matches() {
        let mut p = create_then_open(60);
        p.offer(&audit(0, "create", "/a"));
        let m = p.offer(&audit(60, "open", "/a"));
        assert_eq!(m.len(), 1, "within is inclusive");
    }

    #[test]
    fn each_a_fires_once_oldest_first() {
        let mut p = create_then_open(600);
        p.offer(&audit(0, "create", "/a"));
        // an A for the same key queued again (e.g. re-create)
        p.offer(&audit(5, "create", "/a"));
        let m1 = p.offer(&audit(10, "open", "/a"));
        assert_eq!(m1.len(), 1);
        assert_eq!(m1[0].first.time, SimTime::from_secs(0), "oldest A first");
        let m2 = p.offer(&audit(20, "open", "/a"));
        assert_eq!(m2.len(), 1);
        assert_eq!(m2[0].first.time, SimTime::from_secs(5));
        assert!(p.offer(&audit(30, "open", "/a")).is_empty(), "no As left");
    }

    #[test]
    fn uncorrelated_pattern_matches_any_pair() {
        let mut p = PatternState::new(FollowedBy {
            first: EventFilter::of_type("node_down"),
            second: EventFilter::of_type("read_failed"),
            within: SimDuration::from_secs(300),
            key_field: None,
        });
        p.offer(&Event::new(SimTime::from_secs(0), "node_down").with("dn", "dn3"));
        let m = p.offer(&Event::new(SimTime::from_secs(9), "read_failed").with("blk", "blk_1"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn filters_apply_to_both_legs() {
        let mut p = create_then_open(60);
        // wrong cmd on the A leg: never queued
        p.offer(&audit(0, "delete", "/a"));
        assert_eq!(p.pending_len(), 0);
        // wrong type on the B leg: ignored
        p.offer(&audit(0, "create", "/a"));
        assert!(p
            .offer(&Event::new(SimTime::from_secs(1), "block_read").with("src", "/a"))
            .is_empty());
        assert_eq!(p.pending_len(), 1);
    }

    #[test]
    fn expiry_boundary_is_inclusive_then_exclusive() {
        // front.time + within < now is the eviction rule: an A is still
        // live when now == A.time + within, and gone one second later.
        let mut p = create_then_open(60);
        p.offer(&audit(0, "create", "/a"));
        // a non-matching event exactly at the boundary must not evict
        assert!(p.offer(&audit(60, "delete", "/other")).is_empty());
        assert_eq!(p.pending_len(), 1, "A survives until exactly t+within");
        // one second past the boundary the A is expired
        assert!(p.offer(&audit(61, "open", "/a")).is_empty());
        assert_eq!(p.pending_len(), 0, "A dropped past t+within");
    }

    #[test]
    fn b_batch_completes_distinct_keys_at_most_one_each() {
        let mut p = create_then_open(600);
        // two As per key, three distinct keys
        for path in ["/a", "/b", "/c"] {
            p.offer(&audit(0, "create", path));
            p.offer(&audit(1, "create", path));
        }
        assert_eq!(p.pending_len(), 6);
        // a batch of Bs arriving together, one per key: each completes
        // exactly one pending A (the oldest for its key), never both
        let mut completed = Vec::new();
        for path in ["/a", "/b", "/c"] {
            completed.extend(p.offer(&audit(10, "open", path)));
        }
        assert_eq!(completed.len(), 3, "one match per distinct key");
        for m in &completed {
            assert_eq!(m.first.time, SimTime::from_secs(0), "oldest A per key");
        }
        assert_eq!(p.pending_len(), 3, "second A of each key still waits");
        assert_eq!(p.matches_emitted(), 3);
    }

    #[test]
    fn checkpoint_round_trips_pending_state() {
        use checkpoint::Checkpointable;
        let mut p = create_then_open(600);
        p.offer(&audit(0, "create", "/a"));
        p.offer(&audit(5, "create", "/b"));
        p.offer(&audit(10, "open", "/a"));
        assert_eq!((p.pending_len(), p.matches_emitted()), (1, 1));

        let saved = p.save_state();
        let mut restored = create_then_open(600);
        restored.load_state(&saved).unwrap();
        assert_eq!(restored.pending_len(), 1);
        assert_eq!(restored.matches_emitted(), 1);

        // both matchers see the same future and produce identical output
        let m_live = p.offer(&audit(20, "open", "/b"));
        let m_back = restored.offer(&audit(20, "open", "/b"));
        assert_eq!(m_live, m_back);
        assert_eq!(m_back.len(), 1);
        assert_eq!(m_back[0].first.time, SimTime::from_secs(5));
    }

    #[test]
    fn event_matching_both_legs_does_not_self_match() {
        // A == B filter: an event must not complete itself
        let filt = EventFilter::of_type("tick");
        let mut p = PatternState::new(FollowedBy {
            first: filt.clone(),
            second: filt,
            within: SimDuration::from_secs(100),
            key_field: None,
        });
        assert!(p
            .offer(&Event::new(SimTime::from_secs(0), "tick"))
            .is_empty());
        // the second tick pairs with the first
        let m = p.offer(&Event::new(SimTime::from_secs(1), "tick"));
        assert_eq!(m.len(), 1);
        assert_eq!(p.pending_len(), 1, "second tick now waits as an A");
    }
}
