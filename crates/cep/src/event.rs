//! Timestamped events with typed fields.
//!
//! Events are schemaless: an event type name plus a small field map.
//! Audit-log streams have few distinct keys, so a sorted `Vec` beats a
//! hash map for both memory and lookup at these sizes.

use simcore::SimTime;
use std::fmt;
use std::sync::Arc;

/// A field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
    /// Strings are `Arc`ed: paths recur across thousands of events and
    /// group-by keys clone them freely.
    Str(Arc<str>),
    Bool(bool),
}

impl Value {
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Loose equality used by query predicates: numeric values compare
    /// across Int/Float, everything else requires matching variants.
    pub fn loosely_eq(&self, other: &Value) -> bool {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a == b,
            _ => self == other,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A CEP event: a type name, a timestamp and fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub time: SimTime,
    pub event_type: Arc<str>,
    fields: Vec<(Arc<str>, Value)>,
}

impl Event {
    pub fn new(time: SimTime, event_type: impl AsRef<str>) -> Self {
        Event {
            time,
            event_type: Arc::from(event_type.as_ref()),
            fields: Vec::new(),
        }
    }

    /// [`new`](Self::new) for hot paths: takes an already-interned type
    /// name (a refcount bump, not a fresh allocation) and pre-sizes the
    /// field vector. The audit-line parser feeds millions of events per
    /// second through here.
    pub fn new_interned(time: SimTime, event_type: Arc<str>, field_capacity: usize) -> Self {
        Event {
            time,
            event_type,
            fields: Vec::with_capacity(field_capacity),
        }
    }

    /// Reset in place for reuse as a scratch buffer: swaps time and
    /// type, clears the fields but keeps their allocation. A parser
    /// loop refilling one event per line allocates nothing at steady
    /// state.
    pub fn reset_interned(&mut self, time: SimTime, event_type: Arc<str>) {
        self.time = time;
        self.event_type = event_type;
        self.fields.clear();
    }

    /// Replace this event's fields with clones of another event's —
    /// refcount bumps into this event's existing buffer, no fresh
    /// string allocations. The parser's line memo replays cached parse
    /// results through here.
    pub fn clone_fields_from(&mut self, src: &Event) {
        self.fields.clear();
        self.fields.extend(src.fields.iter().cloned());
    }

    /// [`set`](Self::set) with an already-interned key: skips the
    /// per-call `Arc::from` the string-keyed setter pays on insert.
    pub fn set_interned(&mut self, key: Arc<str>, value: Value) {
        match self
            .fields
            .binary_search_by(|(k, _)| k.as_ref().cmp(key.as_ref()))
        {
            Ok(i) => self.fields[i].1 = value,
            Err(i) => self.fields.insert(i, (key, value)),
        }
    }

    /// Builder-style field setter; overwrites an existing key.
    pub fn with(mut self, key: impl AsRef<str>, value: impl Into<Value>) -> Self {
        self.set(key, value);
        self
    }

    pub fn set(&mut self, key: impl AsRef<str>, value: impl Into<Value>) {
        let key = key.as_ref();
        let value = value.into();
        match self.fields.binary_search_by(|(k, _)| k.as_ref().cmp(key)) {
            Ok(i) => self.fields[i].1 = value,
            Err(i) => self.fields.insert(i, (Arc::from(key), value)),
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields
            .binary_search_by(|(k, _)| k.as_ref().cmp(key))
            .ok()
            .map(|i| &self.fields[i].1)
    }

    pub fn fields(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(k, v)| (k.as_ref(), v))
    }

    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }
}

/// Checkpoint codec for events. Fields are private to this module, so
/// the window/pattern/engine snapshot code funnels through here.
pub(crate) mod ck {
    use super::{Event, Value};
    use checkpoint::codec as c;
    use checkpoint::{CheckpointError, Value as Ck};

    /// Encode one field value as a `[tag, payload]` pair. Floats go
    /// through raw bits so round trips are bit-exact.
    fn field_value(v: &Value) -> Ck {
        match v {
            Value::Int(i) => Ck::Seq(vec![Ck::Str("i".into()), Ck::I64(*i)]),
            Value::Float(f) => Ck::Seq(vec![Ck::Str("f".into()), Ck::U64(f.to_bits())]),
            Value::Str(s) => Ck::Seq(vec![Ck::Str("s".into()), Ck::Str(s.to_string())]),
            Value::Bool(b) => Ck::Seq(vec![Ck::Str("b".into()), Ck::Bool(*b)]),
        }
    }

    /// JSON keeps no signedness: a non-negative `I64` parses back as
    /// `U64`, so the decoder accepts both.
    fn as_i64(v: &Ck, field: &str) -> Result<i64, CheckpointError> {
        match v {
            Ck::I64(n) => Ok(*n),
            Ck::U64(n) => i64::try_from(*n).map_err(|_| CheckpointError::TypeMismatch {
                field: field.to_string(),
                expected: "i64",
            }),
            _ => Err(CheckpointError::TypeMismatch {
                field: field.to_string(),
                expected: "i64",
            }),
        }
    }

    fn field_value_back(v: &Ck) -> Result<Value, CheckpointError> {
        let pair = c::as_seq(v, "field value")?;
        if pair.len() != 2 {
            return Err(CheckpointError::Corrupt(
                "event field value is not a [tag, payload] pair".into(),
            ));
        }
        Ok(match c::as_str(&pair[0], "field tag")? {
            "i" => Value::Int(as_i64(&pair[1], "int field")?),
            "f" => Value::Float(f64::from_bits(c::as_u64(&pair[1], "float field")?)),
            "s" => Value::str(c::as_str(&pair[1], "str field")?),
            "b" => Value::Bool(c::as_bool(&pair[1], "bool field")?),
            other => {
                return Err(CheckpointError::Corrupt(format!(
                    "unknown event field tag `{other}`"
                )))
            }
        })
    }

    pub(crate) fn event(e: &Event) -> Ck {
        c::MapBuilder::new()
            .time("time", e.time)
            .str("type", &e.event_type)
            .seq(
                "fields",
                e.fields
                    .iter()
                    .map(|(k, v)| Ck::Seq(vec![Ck::Str(k.to_string()), field_value(v)]))
                    .collect(),
            )
            .build()
    }

    pub(crate) fn event_back(v: &Ck) -> Result<Event, CheckpointError> {
        let mut e = Event::new(c::get_time(v, "time")?, c::get_str(v, "type")?);
        for fv in c::get_seq(v, "fields")? {
            let pair = c::as_seq(fv, "fields[]")?;
            if pair.len() != 2 {
                return Err(CheckpointError::Corrupt(
                    "event field is not a [key, value] pair".into(),
                ));
            }
            e.set(
                c::as_str(&pair[0], "field key")?,
                field_value_back(&pair[1])?,
            );
        }
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_and_gets() {
        let e = Event::new(SimTime::from_secs(5), "audit")
            .with("cmd", "open")
            .with("src", "/data/a")
            .with("size", 42i64);
        assert_eq!(e.event_type.as_ref(), "audit");
        assert_eq!(e.get("cmd").unwrap().as_str(), Some("open"));
        assert_eq!(e.get("size").unwrap().as_i64(), Some(42));
        assert!(e.get("missing").is_none());
        assert_eq!(e.num_fields(), 3);
    }

    #[test]
    fn set_overwrites() {
        let mut e = Event::new(SimTime::ZERO, "t").with("k", 1i64);
        e.set("k", 2i64);
        assert_eq!(e.get("k").unwrap().as_i64(), Some(2));
        assert_eq!(e.num_fields(), 1);
    }

    #[test]
    fn fields_iterate_sorted() {
        let e = Event::new(SimTime::ZERO, "t")
            .with("zebra", 1i64)
            .with("alpha", 2i64)
            .with("mid", 3i64);
        let keys: Vec<&str> = e.fields().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["alpha", "mid", "zebra"]);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::from("abc").as_str(), Some("abc"));
    }

    #[test]
    fn loose_equality_spans_numeric_types() {
        assert!(Value::Int(3).loosely_eq(&Value::Float(3.0)));
        assert!(!Value::Int(3).loosely_eq(&Value::Float(3.5)));
        assert!(Value::str("a").loosely_eq(&Value::str("a")));
        assert!(!Value::str("a").loosely_eq(&Value::Int(0)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::str("p").to_string(), "p");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn checkpoint_codec_round_trips_all_value_kinds() {
        let e = Event::new(SimTime::from_secs(7), "audit")
            .with("b", true)
            .with("f", -0.1f64)
            .with("i", -3i64)
            .with("s", "/data/a");
        let json = serde_json::to_string(&ck::event(&e)).unwrap();
        let back = ck::event_back(&serde_json::parse_value(&json).unwrap()).unwrap();
        assert_eq!(back, e);
        assert_eq!(
            back.get("f").unwrap().as_f64().unwrap().to_bits(),
            (-0.1f64).to_bits()
        );
    }
}
