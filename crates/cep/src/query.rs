//! Continuous queries.
//!
//! A [`QuerySpec`] is the declarative shape
//! `FROM type(predicates…) .win:… [GROUP BY field] SELECT agg(field)
//! [HAVING agg ⋄ threshold]`; [`QueryState`] is its incremental runtime:
//! it owns a window, applies the filter on arrival and computes grouped
//! aggregates on demand. ERMS's data judge runs a handful of these over
//! the audit stream (accesses per file, accesses per block, accesses per
//! datanode).

use crate::event::{Event, Value};
use crate::fnv::FnvBuildHasher;
use crate::window::Window;
use simcore::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

/// Group-key → slot-index map, hashed with the cheap FNV hasher —
/// group probes happen once per accepted event on the ingest hot path.
type GroupIndex = HashMap<Arc<str>, u32, FnvBuildHasher>;

/// Window clause of a query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowSpec {
    Time(SimDuration),
    Length(usize),
}

impl WindowSpec {
    pub fn instantiate(self) -> Window {
        match self {
            WindowSpec::Time(d) => Window::time(d),
            WindowSpec::Length(n) => Window::length(n),
        }
    }
}

/// A filter on one event field.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    Eq(String, Value),
    Ne(String, Value),
    Gt(String, f64),
    Lt(String, f64),
    /// Field exists (any value).
    Has(String),
}

impl Predicate {
    pub fn matches(&self, event: &Event) -> bool {
        match self {
            Predicate::Eq(k, v) => event.get(k).is_some_and(|x| x.loosely_eq(v)),
            Predicate::Ne(k, v) => event.get(k).is_some_and(|x| !x.loosely_eq(v)),
            Predicate::Gt(k, t) => event.get(k).and_then(Value::as_f64).is_some_and(|x| x > *t),
            Predicate::Lt(k, t) => event.get(k).and_then(Value::as_f64).is_some_and(|x| x < *t),
            Predicate::Has(k) => event.get(k).is_some(),
        }
    }
}

/// Aggregate function over the windowed events of one group.
#[derive(Debug, Clone, PartialEq)]
pub enum AggFn {
    Count,
    Sum(String),
    Avg(String),
    Max(String),
    Min(String),
    /// Count of distinct values of a field (e.g. distinct client IPs).
    CountDistinct(String),
}

impl AggFn {
    /// Whether [`QueryState`] can maintain this aggregate as running
    /// per-group counters under window push/evict. `Max`/`Min`/
    /// `CountDistinct` are not invertible under eviction (removing the
    /// current max tells you nothing about the runner-up) and fall back
    /// to a window rescan on read.
    pub fn is_incremental(&self) -> bool {
        matches!(self, AggFn::Count | AggFn::Sum(_) | AggFn::Avg(_))
    }

    /// The event field the aggregate reads, if any.
    fn field(&self) -> Option<&str> {
        match self {
            AggFn::Count => None,
            AggFn::Sum(f)
            | AggFn::Avg(f)
            | AggFn::Max(f)
            | AggFn::Min(f)
            | AggFn::CountDistinct(f) => Some(f),
        }
    }

    pub fn apply<'a>(&self, events: impl Iterator<Item = &'a Event>) -> f64 {
        match self {
            AggFn::Count => events.count() as f64,
            AggFn::Sum(f) => events.filter_map(|e| e.get(f)?.as_f64()).sum(),
            AggFn::Avg(f) => {
                let vals: Vec<f64> = events.filter_map(|e| e.get(f)?.as_f64()).collect();
                if vals.is_empty() {
                    0.0
                } else {
                    vals.iter().sum::<f64>() / vals.len() as f64
                }
            }
            AggFn::Max(f) => events
                .filter_map(|e| e.get(f)?.as_f64())
                .fold(f64::NEG_INFINITY, f64::max),
            AggFn::Min(f) => events
                .filter_map(|e| e.get(f)?.as_f64())
                .fold(f64::INFINITY, f64::min),
            AggFn::CountDistinct(f) => {
                let mut seen: Vec<String> = events
                    .filter_map(|e| e.get(f).map(|v| v.to_string()))
                    .collect();
                seen.sort_unstable();
                seen.dedup();
                seen.len() as f64
            }
        }
    }
}

/// HAVING-clause comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Comparison {
    Gt(f64),
    Ge(f64),
    Lt(f64),
    Le(f64),
    Eq(f64),
}

impl Comparison {
    pub fn test(self, x: f64) -> bool {
        match self {
            Comparison::Gt(t) => x > t,
            Comparison::Ge(t) => x >= t,
            Comparison::Lt(t) => x < t,
            Comparison::Le(t) => x <= t,
            Comparison::Eq(t) => (x - t).abs() < f64::EPSILON,
        }
    }
}

/// Declarative query description.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Event type to consume; `None` consumes every type.
    pub from: Option<String>,
    pub predicates: Vec<Predicate>,
    pub window: WindowSpec,
    pub group_by: Option<String>,
    pub aggregate: AggFn,
    pub having: Option<Comparison>,
}

impl QuerySpec {
    /// Count events of `event_type` per `group_field` within a sliding
    /// time window — the workhorse shape for ERMS's judge.
    pub fn count_per_group(
        event_type: impl Into<String>,
        group_field: impl Into<String>,
        window: SimDuration,
    ) -> Self {
        QuerySpec {
            from: Some(event_type.into()),
            predicates: Vec::new(),
            window: WindowSpec::Time(window),
            group_by: Some(group_field.into()),
            aggregate: AggFn::Count,
            having: None,
        }
    }

    pub fn accepts(&self, event: &Event) -> bool {
        if let Some(ty) = &self.from {
            if event.event_type.as_ref() != ty {
                return false;
            }
        }
        self.predicates.iter().all(|p| p.matches(event))
    }
}

/// Output row of a query: group key (empty string for ungrouped) and
/// aggregate value.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    pub key: Arc<str>,
    pub value: f64,
}

/// Running per-group counters, maintained on window push *and* evict.
///
/// `Count` reads `events` (integer-exact under increment/decrement);
/// `Sum`/`Avg` read `sum`/`numeric`. Incremental float sums can drift
/// from a rescan by rounding after many evictions, but a group whose
/// last event leaves the window is dropped from the map entirely, so
/// decayed groups read exactly `0.0` and never leak memory.
#[derive(Debug, Clone, Copy, Default)]
struct GroupAgg {
    /// Events of this group currently in the window.
    events: u64,
    /// Events whose aggregate field parsed as a number.
    numeric: u64,
    /// Running sum of the aggregate field.
    sum: f64,
}

impl GroupAgg {
    fn add(&mut self, num: Option<f64>) {
        self.events += 1;
        if let Some(x) = num {
            self.numeric += 1;
            self.sum += x;
        }
    }

    fn remove(&mut self, num: Option<f64>) {
        self.events = self.events.saturating_sub(1);
        if let Some(x) = num {
            self.numeric = self.numeric.saturating_sub(1);
            self.sum -= x;
        }
    }

    fn value(&self, agg: &AggFn) -> f64 {
        match agg {
            AggFn::Count => self.events as f64,
            AggFn::Sum(_) => self.sum,
            AggFn::Avg(_) => {
                if self.numeric == 0 {
                    0.0
                } else {
                    self.sum / self.numeric as f64
                }
            }
            // Non-incremental aggregates never read GroupAgg.
            _ => unreachable!("GroupAgg::value on non-incremental aggregate"),
        }
    }
}

/// One live group: its key and running aggregates. Slots are reused
/// through a free list once the group's last windowed event departs.
#[derive(Debug)]
struct GroupSlot {
    key: Arc<str>,
    agg: GroupAgg,
}

/// Pointer-keyed group-probe memo size (power of two). The hot keys on
/// an audit storm are a handful of interned `Arc`s, so `Arc::ptr_eq`
/// resolves most probes without hashing the key bytes.
const GROUP_MEMO_SLOTS: usize = 16;

/// Per-query group bookkeeping: dense slots addressed by `u32` index,
/// a key → index hash map, and a pointer-keyed memo over it.
///
/// Windowed entries remember their group *index*, so eviction — once
/// per accepted event at steady state — updates counters by direct
/// indexing instead of rehashing the key string, and holds no `Arc`
/// refcount per entry. Only a group's death (last event leaving the
/// window) pays a map removal.
#[derive(Debug, Default)]
struct GroupTable {
    index: GroupIndex,
    slots: Vec<GroupSlot>,
    free: Vec<u32>,
    /// Direct-mapped `(key, index)` memo keyed by the key's heap
    /// address. Entries hold the `Arc` so a hit can never alias a
    /// recycled allocation; freeing a slot invalidates its entries.
    memo: Vec<Option<(Arc<str>, u32)>>,
}

impl GroupTable {
    /// Slot index for an arriving event's group key, allocating one for
    /// a first-seen key. String keys go through the pointer memo.
    fn index_of(&mut self, v: &Value) -> u32 {
        match v {
            Value::Str(s) => {
                if self.memo.is_empty() {
                    self.memo.resize(GROUP_MEMO_SLOTS, None);
                }
                let at = (Arc::as_ptr(s) as *const u8 as usize >> 4) & (GROUP_MEMO_SLOTS - 1);
                if let Some((k, idx)) = &self.memo[at] {
                    if Arc::ptr_eq(k, s) {
                        return *idx;
                    }
                }
                let idx = self.index_of_key(s);
                self.memo[at] = Some((s.clone(), idx));
                idx
            }
            other => self.index_of_key(&Arc::from(other.to_string().as_str())),
        }
    }

    fn index_of_key(&mut self, key: &Arc<str>) -> u32 {
        if let Some(&idx) = self.index.get(key.as_ref()) {
            return idx;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = GroupSlot {
                    key: key.clone(),
                    agg: GroupAgg::default(),
                };
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("fewer than 2^32 live groups");
                self.slots.push(GroupSlot {
                    key: key.clone(),
                    agg: GroupAgg::default(),
                });
                idx
            }
        };
        self.index.insert(key.clone(), idx);
        idx
    }

    /// Slot index for a key already in the table — no allocation, no
    /// memo. The full-event eviction path resolves departing keys here.
    fn lookup(&self, v: &Value) -> Option<u32> {
        match v {
            Value::Str(s) => self.index.get(s.as_ref()).copied(),
            other => self.index.get(other.to_string().as_str()).copied(),
        }
    }

    fn add(&mut self, idx: u32, num: Option<f64>) {
        self.slots[idx as usize].agg.add(num);
    }

    /// Reverse one departing event; a group hitting zero events is
    /// removed from the map and its slot recycled.
    fn remove(&mut self, idx: u32, num: Option<f64>) {
        let slot = &mut self.slots[idx as usize];
        slot.agg.remove(num);
        if slot.agg.events == 0 {
            self.index.remove(slot.key.as_ref());
            for m in self.memo.iter_mut() {
                if matches!(m, Some((_, i)) if *i == idx) {
                    *m = None;
                }
            }
            self.free.push(idx);
        }
    }

    fn key_of(&self, idx: u32) -> &Arc<str> {
        &self.slots[idx as usize].key
    }

    fn get(&self, key: &str) -> Option<&GroupAgg> {
        self.index
            .get(key)
            .map(|&idx| &self.slots[idx as usize].agg)
    }

    fn iter(&self) -> impl Iterator<Item = (&Arc<str>, &GroupAgg)> {
        self.index
            .iter()
            .map(|(k, &idx)| (k, &self.slots[idx as usize].agg))
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn clear(&mut self) {
        self.index.clear();
        self.slots.clear();
        self.free.clear();
        self.memo.clear();
    }
}

/// One windowed entry of an incremental query: exactly what eviction
/// needs to reverse the running aggregates — entry time, group slot
/// index, aggregate-field sample. A few dozen bytes instead of a
/// cloned event, and no refcount traffic per entry.
#[derive(Debug, Clone)]
struct SlimEntry {
    time: SimTime,
    group: Option<u32>,
    num: Option<f64>,
}

/// Windowed storage of one query.
///
/// Incremental aggregates (`Count`/`Sum`/`Avg`) never re-read stored
/// events — eviction only reverses counters — so they keep a
/// [`SlimEntry`] per event instead of cloning the whole event into the
/// window: no per-event allocation on push, no field lookup on evict.
/// The non-invertible aggregates keep full events for their
/// rescan-on-read path.
#[derive(Debug)]
enum Store {
    Events(Window),
    Slim {
        spec: WindowSpec,
        buf: VecDeque<SlimEntry>,
    },
}

/// Incremental runtime of one query.
///
/// For `Count`/`Sum`/`Avg` the state keeps per-group running aggregates
/// (updated as events enter and leave the window), so
/// [`rows`](Self::rows) is O(live groups · log groups) and
/// [`value_for`](Self::value_for) is
/// O(1) — not O(window) with a `to_string` per event. The
/// non-invertible aggregates (`Max`/`Min`/`CountDistinct`) keep the
/// rescan-on-read path.
#[derive(Debug)]
pub struct QueryState {
    pub spec: QuerySpec,
    store: Store,
    /// Per-group running aggregates, indexed slots + key map.
    groups: GroupTable,
    /// Whole-window aggregate (serves ungrouped queries).
    total: GroupAgg,
}

impl QueryState {
    pub fn new(spec: QuerySpec) -> Self {
        let store = if spec.aggregate.is_incremental() {
            if let WindowSpec::Length(n) = spec.window {
                assert!(n > 0, "length window needs capacity >= 1");
            }
            Store::Slim {
                spec: spec.window,
                buf: VecDeque::new(),
            }
        } else {
            Store::Events(spec.window.instantiate())
        };
        QueryState {
            spec,
            store,
            groups: GroupTable::default(),
            total: GroupAgg::default(),
        }
    }

    /// The full-event window (non-incremental aggregates only).
    fn window(&self) -> &Window {
        match &self.store {
            Store::Events(w) => w,
            Store::Slim { .. } => unreachable!("slim store never serves a window rescan"),
        }
    }

    /// Offer an event; returns true if it entered the window.
    pub fn offer(&mut self, event: &Event) -> bool {
        if !self.spec.accepts(event) {
            return false;
        }
        let num = self
            .spec
            .aggregate
            .field()
            .and_then(|f| event.get(f).and_then(Value::as_f64));
        let group = self
            .spec
            .group_by
            .as_deref()
            .and_then(|f| event.get(f))
            .map(|v| self.groups.index_of(v));
        self.total.add(num);
        if let Some(gi) = group {
            self.groups.add(gi, num);
        }
        match &mut self.store {
            Store::Events(w) => {
                let (groups, spec, total) = (&mut self.groups, &self.spec, &mut self.total);
                w.push_with(event.clone(), |evicted| {
                    Self::evict_event(groups, total, spec, &evicted);
                });
            }
            Store::Slim { spec: wspec, buf } => {
                let (groups, total) = (&mut self.groups, &mut self.total);
                match wspec {
                    WindowSpec::Time(span) => {
                        // Same boundary rule as Window::push_with: evict
                        // strictly-older-than now - span, keep boundary.
                        let cutoff = event.time.since(SimTime::ZERO);
                        buf.push_back(SlimEntry {
                            time: event.time,
                            group,
                            num,
                        });
                        while let Some(front) = buf.front() {
                            if front.time.since(SimTime::ZERO) + *span < cutoff {
                                let e = buf.pop_front().expect("front exists");
                                Self::evict_slim(groups, total, e);
                            } else {
                                break;
                            }
                        }
                    }
                    WindowSpec::Length(capacity) => {
                        if buf.len() == *capacity {
                            let e = buf.pop_front().expect("front exists");
                            Self::evict_slim(groups, total, e);
                        }
                        buf.push_back(SlimEntry {
                            time: event.time,
                            group,
                            num,
                        });
                    }
                }
            }
        }
        true
    }

    /// Decrement the running aggregates for an event leaving a
    /// full-event window.
    fn evict_event(
        groups: &mut GroupTable,
        total: &mut GroupAgg,
        spec: &QuerySpec,
        evicted: &Event,
    ) {
        let num = spec
            .aggregate
            .field()
            .and_then(|f| evicted.get(f).and_then(Value::as_f64));
        let group = spec
            .group_by
            .as_deref()
            .and_then(|f| evicted.get(f))
            .and_then(|v| groups.lookup(v));
        Self::evict_slim(
            groups,
            total,
            SlimEntry {
                time: evicted.time,
                group,
                num,
            },
        );
    }

    /// Decrement the running aggregates for one departing entry.
    fn evict_slim(groups: &mut GroupTable, total: &mut GroupAgg, entry: SlimEntry) {
        total.remove(entry.num);
        if let Some(gi) = entry.group {
            groups.remove(gi, entry.num);
        }
    }

    /// Expire stale events at `now`, keeping the running aggregates in
    /// step with the window.
    fn decay(&mut self, now: SimTime) {
        match &mut self.store {
            Store::Events(w) => {
                let (groups, spec, total) = (&mut self.groups, &self.spec, &mut self.total);
                w.expire_with(now, |evicted| {
                    Self::evict_event(groups, total, spec, &evicted);
                });
            }
            Store::Slim {
                spec: WindowSpec::Time(span),
                buf,
            } => {
                let cutoff = now.since(SimTime::ZERO);
                while let Some(front) = buf.front() {
                    if front.time.since(SimTime::ZERO) + *span < cutoff {
                        let e = buf.pop_front().expect("front exists");
                        Self::evict_slim(&mut self.groups, &mut self.total, e);
                    } else {
                        break;
                    }
                }
            }
            // Length windows never expire by time.
            Store::Slim { .. } => {}
        }
    }

    /// Evaluate grouped aggregates at `now`, applying HAVING.
    /// Rows come out sorted by group key for determinism.
    pub fn rows(&mut self, now: SimTime) -> Vec<GroupRow> {
        self.decay(now);
        let mut rows = Vec::new();
        let incremental = self.spec.aggregate.is_incremental();
        match &self.spec.group_by {
            None => {
                let v = if incremental {
                    self.total.value(&self.spec.aggregate)
                } else {
                    self.spec.aggregate.apply(self.window().iter())
                };
                if self.spec.having.is_none_or(|h| h.test(v)) {
                    rows.push(GroupRow {
                        key: Arc::from(""),
                        value: v,
                    });
                }
            }
            Some(_) if incremental => {
                for (key, agg) in self.groups.iter() {
                    let v = agg.value(&self.spec.aggregate);
                    if self.spec.having.is_none_or(|h| h.test(v)) {
                        rows.push(GroupRow {
                            key: key.clone(),
                            value: v,
                        });
                    }
                }
                // The hash map iterates in arbitrary order; sort to keep
                // the documented deterministic row order.
                rows.sort_unstable_by(|a, b| a.key.cmp(&b.key));
            }
            Some(field) => {
                let mut groups: BTreeMap<String, Vec<&Event>> = BTreeMap::new();
                for e in self.window().iter() {
                    if let Some(v) = e.get(field) {
                        groups.entry(v.to_string()).or_default().push(e);
                    }
                }
                for (key, events) in groups {
                    let v = self.spec.aggregate.apply(events.into_iter());
                    if self.spec.having.is_none_or(|h| h.test(v)) {
                        rows.push(GroupRow {
                            key: Arc::from(key.as_str()),
                            value: v,
                        });
                    }
                }
            }
        }
        rows
    }

    /// Aggregate value for one specific group key at `now` (no HAVING).
    ///
    /// For an ungrouped query the single row lives under the empty key
    /// (matching [`rows`](Self::rows)): `value_for(now, "")` returns the
    /// whole-window aggregate and any other key reads `0.0`, exactly as
    /// if the row did not exist.
    pub fn value_for(&mut self, now: SimTime, key: &str) -> f64 {
        self.decay(now);
        let field = match &self.spec.group_by {
            Some(f) => f,
            None => {
                if !key.is_empty() {
                    return 0.0;
                }
                return if self.spec.aggregate.is_incremental() {
                    self.total.value(&self.spec.aggregate)
                } else {
                    self.spec.aggregate.apply(self.window().iter())
                };
            }
        };
        if self.spec.aggregate.is_incremental() {
            return self
                .groups
                .get(key)
                .map(|g| g.value(&self.spec.aggregate))
                .unwrap_or(0.0);
        }
        let events = self
            .window()
            .iter()
            .filter(|e| e.get(field).is_some_and(|v| v.to_string() == key));
        self.spec.aggregate.apply(events)
    }

    pub fn window_len(&self) -> usize {
        match &self.store {
            Store::Events(w) => w.len(),
            Store::Slim { buf, .. } => buf.len(),
        }
    }

    /// Live groups currently tracked by the running aggregates.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

impl checkpoint::Checkpointable for QueryState {
    // The spec is NOT serialized: restore rebuilds the engine through the
    // same registration calls and only hydrates runtime state. The
    // running aggregates ARE serialized (not recomputed from the window)
    // because incremental float sums can drift from a rescan — a restored
    // run must continue from the drifted values the live run holds.
    fn save_state(&self) -> checkpoint::Value {
        use checkpoint::codec::MapBuilder;
        use checkpoint::Value;
        let agg = |g: &GroupAgg| {
            vec![
                Value::U64(g.events),
                Value::U64(g.numeric),
                Value::U64(g.sum.to_bits()),
            ]
        };
        let window = match &self.store {
            Store::Events(w) => w.save_state(),
            Store::Slim { buf, .. } => MapBuilder::new()
                .str("kind", "slim")
                .seq(
                    "buf",
                    buf.iter()
                        .map(|e| {
                            // Fixed 5-slot shape: [time, has_key, key,
                            // has_num, num_bits] — floats as raw bits so
                            // round trips are bit-exact. Group indices
                            // are a runtime detail; the wire format
                            // carries the key string.
                            let key = e
                                .group
                                .map(|gi| self.groups.key_of(gi).as_ref())
                                .unwrap_or("");
                            Value::Seq(vec![
                                Value::U64(e.time.as_nanos()),
                                Value::Bool(e.group.is_some()),
                                Value::Str(key.to_string()),
                                Value::Bool(e.num.is_some()),
                                Value::U64(e.num.unwrap_or(0.0).to_bits()),
                            ])
                        })
                        .collect(),
                )
                .build(),
        };
        // The group map iterates in hash order; serialize sorted so a
        // snapshot re-saves to identical bytes.
        let mut groups: Vec<(&Arc<str>, &GroupAgg)> = self.groups.iter().collect();
        groups.sort_unstable_by(|a, b| a.0.cmp(b.0));
        MapBuilder::new()
            .put("window", window)
            .seq(
                "groups",
                groups
                    .into_iter()
                    .map(|(k, g)| {
                        let mut row = vec![Value::Str(k.to_string())];
                        row.extend(agg(g));
                        Value::Seq(row)
                    })
                    .collect(),
            )
            .seq("total", agg(&self.total))
            .build()
    }

    fn load_state(&mut self, state: &checkpoint::Value) -> Result<(), checkpoint::CheckpointError> {
        use checkpoint::codec as c;
        fn agg_back(
            parts: &[serde::Value],
            at: usize,
        ) -> Result<GroupAgg, checkpoint::CheckpointError> {
            Ok(GroupAgg {
                events: c::as_u64(&parts[at], "agg events")?,
                numeric: c::as_u64(&parts[at + 1], "agg numeric")?,
                sum: f64::from_bits(c::as_u64(&parts[at + 2], "agg sum")?),
            })
        }
        // Groups load first: slim window entries resolve their group
        // slot index against the rebuilt table.
        self.groups.clear();
        for row in c::get_seq(state, "groups")? {
            let parts = c::as_seq(row, "groups[]")?;
            if parts.len() != 4 {
                return Err(checkpoint::CheckpointError::Corrupt(
                    "group row is not [key, events, numeric, sum]".into(),
                ));
            }
            let key: Arc<str> = Arc::from(c::as_str(&parts[0], "group key")?);
            let idx = self.groups.index_of_key(&key);
            self.groups.slots[idx as usize].agg = agg_back(parts, 1)?;
        }
        match &mut self.store {
            Store::Events(w) => w.load_state(c::get(state, "window")?)?,
            Store::Slim { buf, .. } => {
                let window = c::get(state, "window")?;
                if c::get_str(window, "kind")? != "slim" {
                    return Err(checkpoint::CheckpointError::Corrupt(
                        "incremental query expects a slim window section".into(),
                    ));
                }
                buf.clear();
                for row in c::get_seq(window, "buf")? {
                    let parts = c::as_seq(row, "slim buf[]")?;
                    if parts.len() != 5 {
                        return Err(checkpoint::CheckpointError::Corrupt(
                            "slim entry is not [time, has_key, key, has_num, num]".into(),
                        ));
                    }
                    let group = if c::as_bool(&parts[1], "slim has_key")? {
                        let key: Arc<str> = Arc::from(c::as_str(&parts[2], "slim key")?);
                        Some(self.groups.index_of_key(&key))
                    } else {
                        None
                    };
                    let num = if c::as_bool(&parts[3], "slim has_num")? {
                        Some(f64::from_bits(c::as_u64(&parts[4], "slim num")?))
                    } else {
                        None
                    };
                    buf.push_back(SlimEntry {
                        time: SimTime::from_nanos(c::as_u64(&parts[0], "slim time")?),
                        group,
                        num,
                    });
                }
            }
        }
        let total = c::get_seq(state, "total")?;
        if total.len() != 3 {
            return Err(checkpoint::CheckpointError::Corrupt(
                "total is not [events, numeric, sum]".into(),
            ));
        }
        self.total = agg_back(total, 0)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(t: u64, path: &str) -> Event {
        Event::new(SimTime::from_secs(t), "audit")
            .with("cmd", "open")
            .with("src", path)
    }

    #[test]
    fn predicate_matching() {
        let e = access(1, "/a").with("size", 10i64);
        assert!(Predicate::Eq("cmd".into(), Value::str("open")).matches(&e));
        assert!(!Predicate::Eq("cmd".into(), Value::str("create")).matches(&e));
        assert!(Predicate::Ne("cmd".into(), Value::str("create")).matches(&e));
        assert!(Predicate::Gt("size".into(), 5.0).matches(&e));
        assert!(!Predicate::Lt("size".into(), 5.0).matches(&e));
        assert!(Predicate::Has("src".into()).matches(&e));
        assert!(!Predicate::Has("dst".into()).matches(&e));
        // missing field never matches comparisons
        assert!(!Predicate::Gt("nope".into(), 0.0).matches(&e));
    }

    #[test]
    fn count_per_group_within_window() {
        let spec = QuerySpec::count_per_group("audit", "src", SimDuration::from_secs(10));
        let mut q = QueryState::new(spec);
        for (t, p) in [(0, "/a"), (1, "/a"), (2, "/b"), (8, "/a"), (20, "/b")] {
            q.offer(&access(t, p));
        }
        // now = 20: only events with t + 10 >= 20 remain → t=20 (/b)
        let rows = q.rows(SimTime::from_secs(20));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key.as_ref(), "/b");
        assert_eq!(rows[0].value, 1.0);
    }

    #[test]
    fn rows_sorted_by_key() {
        let spec = QuerySpec::count_per_group("audit", "src", SimDuration::from_secs(100));
        let mut q = QueryState::new(spec);
        for p in ["/z", "/a", "/m", "/a"] {
            q.offer(&access(1, p));
        }
        let rows = q.rows(SimTime::from_secs(1));
        let keys: Vec<&str> = rows.iter().map(|r| r.key.as_ref()).collect();
        assert_eq!(keys, vec!["/a", "/m", "/z"]);
        assert_eq!(rows[0].value, 2.0);
    }

    #[test]
    fn having_filters_rows() {
        let mut spec = QuerySpec::count_per_group("audit", "src", SimDuration::from_secs(100));
        spec.having = Some(Comparison::Ge(2.0));
        let mut q = QueryState::new(spec);
        for p in ["/a", "/a", "/b"] {
            q.offer(&access(1, p));
        }
        let rows = q.rows(SimTime::from_secs(1));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key.as_ref(), "/a");
    }

    #[test]
    fn type_and_predicate_filter_on_offer() {
        let mut spec = QuerySpec::count_per_group("audit", "src", SimDuration::from_secs(100));
        spec.predicates
            .push(Predicate::Eq("cmd".into(), Value::str("open")));
        let mut q = QueryState::new(spec);
        assert!(q.offer(&access(0, "/a")));
        let wrong_type = Event::new(SimTime::ZERO, "block_read").with("src", "/a");
        assert!(!q.offer(&wrong_type));
        let wrong_cmd = Event::new(SimTime::ZERO, "audit")
            .with("cmd", "delete")
            .with("src", "/a");
        assert!(!q.offer(&wrong_cmd));
        assert_eq!(q.window_len(), 1);
    }

    #[test]
    fn aggregates() {
        let evs: Vec<Event> = [1.0, 2.0, 3.0, 2.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| Event::new(SimTime::from_secs(i as u64), "m").with("v", v))
            .collect();
        assert_eq!(AggFn::Count.apply(evs.iter()), 4.0);
        assert_eq!(AggFn::Sum("v".into()).apply(evs.iter()), 8.0);
        assert_eq!(AggFn::Avg("v".into()).apply(evs.iter()), 2.0);
        assert_eq!(AggFn::Max("v".into()).apply(evs.iter()), 3.0);
        assert_eq!(AggFn::Min("v".into()).apply(evs.iter()), 1.0);
        assert_eq!(AggFn::CountDistinct("v".into()).apply(evs.iter()), 3.0);
        assert_eq!(AggFn::Avg("v".into()).apply(std::iter::empty()), 0.0);
    }

    #[test]
    fn value_for_specific_group() {
        let spec = QuerySpec::count_per_group("audit", "src", SimDuration::from_secs(100));
        let mut q = QueryState::new(spec);
        for p in ["/a", "/a", "/b"] {
            q.offer(&access(1, p));
        }
        assert_eq!(q.value_for(SimTime::from_secs(1), "/a"), 2.0);
        assert_eq!(q.value_for(SimTime::from_secs(1), "/b"), 1.0);
        assert_eq!(q.value_for(SimTime::from_secs(1), "/c"), 0.0);
    }

    #[test]
    fn ungrouped_query_single_row() {
        let spec = QuerySpec {
            from: Some("audit".into()),
            predicates: vec![],
            window: WindowSpec::Length(2),
            group_by: None,
            aggregate: AggFn::Count,
            having: None,
        };
        let mut q = QueryState::new(spec);
        for t in 0..5 {
            q.offer(&access(t, "/a"));
        }
        let rows = q.rows(SimTime::from_secs(4));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].value, 2.0, "length window caps at 2");
    }

    #[test]
    fn ungrouped_value_for_matches_rows_key() {
        // The ungrouped row lives under "" — value_for must agree with
        // rows() on both the empty key and every other key.
        let spec = QuerySpec {
            from: Some("audit".into()),
            predicates: vec![],
            window: WindowSpec::Time(SimDuration::from_secs(100)),
            group_by: None,
            aggregate: AggFn::Count,
            having: None,
        };
        let mut q = QueryState::new(spec);
        for t in 0..4 {
            q.offer(&access(t, "/a"));
        }
        let now = SimTime::from_secs(4);
        let rows = q.rows(now);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key.as_ref(), "");
        assert_eq!(q.value_for(now, ""), rows[0].value);
        // A key that names no row reads 0.0, not the global aggregate.
        assert_eq!(q.value_for(now, "/a"), 0.0);
        assert_eq!(q.value_for(now, "/missing"), 0.0);
    }

    #[test]
    fn incremental_counts_track_eviction_churn() {
        // Drive a time window through pushes and silent decay; the
        // running aggregates must match a brute-force recount at every
        // step.
        let span = SimDuration::from_secs(10);
        let spec = QuerySpec::count_per_group("audit", "src", span);
        let mut q = QueryState::new(spec);
        let mut log: Vec<(u64, &str)> = Vec::new();
        let schedule: &[(u64, &str)] = &[
            (0, "/a"),
            (1, "/b"),
            (2, "/a"),
            (8, "/c"),
            (11, "/a"),
            (13, "/b"),
            (25, "/c"),
            (26, "/c"),
        ];
        for &(t, p) in schedule {
            q.offer(&access(t, p));
            log.push((t, p));
            let now = SimTime::from_secs(t);
            for key in ["/a", "/b", "/c", "/d"] {
                let expect = log
                    .iter()
                    .filter(|&&(et, ep)| ep == key && et + 10 >= t)
                    .count() as f64;
                assert_eq!(q.value_for(now, key), expect, "key {key} at t={t}");
            }
            let live: std::collections::BTreeSet<&str> = log
                .iter()
                .filter(|&&(et, _)| et + 10 >= t)
                .map(|&(_, p)| p)
                .collect();
            assert_eq!(q.group_count(), live.len(), "live groups at t={t}");
            let rows = q.rows(now);
            assert_eq!(rows.len(), live.len());
        }
        // Decay everything without pushing: groups drain to zero.
        assert_eq!(q.value_for(SimTime::from_secs(1000), "/c"), 0.0);
        assert_eq!(q.group_count(), 0);
        assert!(q.rows(SimTime::from_secs(1000)).is_empty());
    }

    #[test]
    fn incremental_sum_and_avg_survive_eviction() {
        let mk = |t: u64, key: &str, v: f64| {
            Event::new(SimTime::from_secs(t), "m")
                .with("k", key)
                .with("v", v)
        };
        for agg in [AggFn::Sum("v".into()), AggFn::Avg("v".into())] {
            let spec = QuerySpec {
                from: Some("m".into()),
                predicates: vec![],
                window: WindowSpec::Time(SimDuration::from_secs(10)),
                group_by: Some("k".into()),
                aggregate: agg.clone(),
                having: None,
            };
            let mut q = QueryState::new(spec);
            q.offer(&mk(0, "/a", 4.0));
            q.offer(&mk(1, "/a", 2.0));
            q.offer(&mk(2, "/b", 7.0));
            let now = SimTime::from_secs(2);
            let (a, b) = match agg {
                AggFn::Sum(_) => (6.0, 7.0),
                _ => (3.0, 7.0),
            };
            assert_eq!(q.value_for(now, "/a"), a);
            assert_eq!(q.value_for(now, "/b"), b);
            // t=12 evicts t=0 and t=1 (strictly older than now - span).
            let later = SimTime::from_secs(12);
            assert_eq!(q.value_for(later, "/a"), 0.0);
            assert_eq!(q.value_for(later, "/b"), 7.0);
        }
    }

    #[test]
    fn non_incremental_aggregates_rescan_after_eviction() {
        // Max is not invertible under eviction; the fallback rescan must
        // recover the runner-up once the max leaves the window.
        let mk = |t: u64, v: f64| {
            Event::new(SimTime::from_secs(t), "m")
                .with("k", "/a")
                .with("v", v)
        };
        let spec = QuerySpec {
            from: Some("m".into()),
            predicates: vec![],
            window: WindowSpec::Time(SimDuration::from_secs(10)),
            group_by: Some("k".into()),
            aggregate: AggFn::Max("v".into()),
            having: None,
        };
        let mut q = QueryState::new(spec);
        q.offer(&mk(0, 9.0));
        q.offer(&mk(5, 3.0));
        assert_eq!(q.value_for(SimTime::from_secs(5), "/a"), 9.0);
        assert_eq!(q.value_for(SimTime::from_secs(11), "/a"), 3.0);
    }

    #[test]
    fn length_window_eviction_updates_groups() {
        let spec = QuerySpec {
            from: Some("audit".into()),
            predicates: vec![],
            window: WindowSpec::Length(2),
            group_by: Some("src".into()),
            aggregate: AggFn::Count,
            having: None,
        };
        let mut q = QueryState::new(spec);
        q.offer(&access(0, "/a"));
        q.offer(&access(1, "/a"));
        q.offer(&access(2, "/b")); // evicts the t=0 "/a"
        let now = SimTime::from_secs(2);
        assert_eq!(q.value_for(now, "/a"), 1.0);
        assert_eq!(q.value_for(now, "/b"), 1.0);
        assert_eq!(q.group_count(), 2);
    }

    #[test]
    fn comparison_tests() {
        assert!(Comparison::Gt(1.0).test(2.0));
        assert!(!Comparison::Gt(1.0).test(1.0));
        assert!(Comparison::Ge(1.0).test(1.0));
        assert!(Comparison::Lt(1.0).test(0.5));
        assert!(Comparison::Le(1.0).test(1.0));
        assert!(Comparison::Eq(2.0).test(2.0));
    }
}
