//! Continuous queries.
//!
//! A [`QuerySpec`] is the declarative shape
//! `FROM type(predicates…) .win:… [GROUP BY field] SELECT agg(field)
//! [HAVING agg ⋄ threshold]`; [`QueryState`] is its incremental runtime:
//! it owns a window, applies the filter on arrival and computes grouped
//! aggregates on demand. ERMS's data judge runs a handful of these over
//! the audit stream (accesses per file, accesses per block, accesses per
//! datanode).

use crate::event::{Event, Value};
use crate::window::Window;
use simcore::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Window clause of a query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowSpec {
    Time(SimDuration),
    Length(usize),
}

impl WindowSpec {
    pub fn instantiate(self) -> Window {
        match self {
            WindowSpec::Time(d) => Window::time(d),
            WindowSpec::Length(n) => Window::length(n),
        }
    }
}

/// A filter on one event field.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    Eq(String, Value),
    Ne(String, Value),
    Gt(String, f64),
    Lt(String, f64),
    /// Field exists (any value).
    Has(String),
}

impl Predicate {
    pub fn matches(&self, event: &Event) -> bool {
        match self {
            Predicate::Eq(k, v) => event.get(k).is_some_and(|x| x.loosely_eq(v)),
            Predicate::Ne(k, v) => event.get(k).is_some_and(|x| !x.loosely_eq(v)),
            Predicate::Gt(k, t) => event.get(k).and_then(Value::as_f64).is_some_and(|x| x > *t),
            Predicate::Lt(k, t) => event.get(k).and_then(Value::as_f64).is_some_and(|x| x < *t),
            Predicate::Has(k) => event.get(k).is_some(),
        }
    }
}

/// Aggregate function over the windowed events of one group.
#[derive(Debug, Clone, PartialEq)]
pub enum AggFn {
    Count,
    Sum(String),
    Avg(String),
    Max(String),
    Min(String),
    /// Count of distinct values of a field (e.g. distinct client IPs).
    CountDistinct(String),
}

impl AggFn {
    /// Whether [`QueryState`] can maintain this aggregate as running
    /// per-group counters under window push/evict. `Max`/`Min`/
    /// `CountDistinct` are not invertible under eviction (removing the
    /// current max tells you nothing about the runner-up) and fall back
    /// to a window rescan on read.
    pub fn is_incremental(&self) -> bool {
        matches!(self, AggFn::Count | AggFn::Sum(_) | AggFn::Avg(_))
    }

    /// The event field the aggregate reads, if any.
    fn field(&self) -> Option<&str> {
        match self {
            AggFn::Count => None,
            AggFn::Sum(f)
            | AggFn::Avg(f)
            | AggFn::Max(f)
            | AggFn::Min(f)
            | AggFn::CountDistinct(f) => Some(f),
        }
    }

    pub fn apply<'a>(&self, events: impl Iterator<Item = &'a Event>) -> f64 {
        match self {
            AggFn::Count => events.count() as f64,
            AggFn::Sum(f) => events.filter_map(|e| e.get(f)?.as_f64()).sum(),
            AggFn::Avg(f) => {
                let vals: Vec<f64> = events.filter_map(|e| e.get(f)?.as_f64()).collect();
                if vals.is_empty() {
                    0.0
                } else {
                    vals.iter().sum::<f64>() / vals.len() as f64
                }
            }
            AggFn::Max(f) => events
                .filter_map(|e| e.get(f)?.as_f64())
                .fold(f64::NEG_INFINITY, f64::max),
            AggFn::Min(f) => events
                .filter_map(|e| e.get(f)?.as_f64())
                .fold(f64::INFINITY, f64::min),
            AggFn::CountDistinct(f) => {
                let mut seen: Vec<String> = events
                    .filter_map(|e| e.get(f).map(|v| v.to_string()))
                    .collect();
                seen.sort_unstable();
                seen.dedup();
                seen.len() as f64
            }
        }
    }
}

/// HAVING-clause comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Comparison {
    Gt(f64),
    Ge(f64),
    Lt(f64),
    Le(f64),
    Eq(f64),
}

impl Comparison {
    pub fn test(self, x: f64) -> bool {
        match self {
            Comparison::Gt(t) => x > t,
            Comparison::Ge(t) => x >= t,
            Comparison::Lt(t) => x < t,
            Comparison::Le(t) => x <= t,
            Comparison::Eq(t) => (x - t).abs() < f64::EPSILON,
        }
    }
}

/// Declarative query description.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Event type to consume; `None` consumes every type.
    pub from: Option<String>,
    pub predicates: Vec<Predicate>,
    pub window: WindowSpec,
    pub group_by: Option<String>,
    pub aggregate: AggFn,
    pub having: Option<Comparison>,
}

impl QuerySpec {
    /// Count events of `event_type` per `group_field` within a sliding
    /// time window — the workhorse shape for ERMS's judge.
    pub fn count_per_group(
        event_type: impl Into<String>,
        group_field: impl Into<String>,
        window: SimDuration,
    ) -> Self {
        QuerySpec {
            from: Some(event_type.into()),
            predicates: Vec::new(),
            window: WindowSpec::Time(window),
            group_by: Some(group_field.into()),
            aggregate: AggFn::Count,
            having: None,
        }
    }

    pub fn accepts(&self, event: &Event) -> bool {
        if let Some(ty) = &self.from {
            if event.event_type.as_ref() != ty {
                return false;
            }
        }
        self.predicates.iter().all(|p| p.matches(event))
    }
}

/// Output row of a query: group key (empty string for ungrouped) and
/// aggregate value.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    pub key: Arc<str>,
    pub value: f64,
}

/// Running per-group counters, maintained on window push *and* evict.
///
/// `Count` reads `events` (integer-exact under increment/decrement);
/// `Sum`/`Avg` read `sum`/`numeric`. Incremental float sums can drift
/// from a rescan by rounding after many evictions, but a group whose
/// last event leaves the window is dropped from the map entirely, so
/// decayed groups read exactly `0.0` and never leak memory.
#[derive(Debug, Clone, Copy, Default)]
struct GroupAgg {
    /// Events of this group currently in the window.
    events: u64,
    /// Events whose aggregate field parsed as a number.
    numeric: u64,
    /// Running sum of the aggregate field.
    sum: f64,
}

impl GroupAgg {
    fn add(&mut self, event: &Event, agg_field: Option<&str>) {
        self.events += 1;
        if let Some(x) = agg_field.and_then(|f| event.get(f).and_then(Value::as_f64)) {
            self.numeric += 1;
            self.sum += x;
        }
    }

    fn remove(&mut self, event: &Event, agg_field: Option<&str>) {
        self.events = self.events.saturating_sub(1);
        if let Some(x) = agg_field.and_then(|f| event.get(f).and_then(Value::as_f64)) {
            self.numeric = self.numeric.saturating_sub(1);
            self.sum -= x;
        }
    }

    fn value(&self, agg: &AggFn) -> f64 {
        match agg {
            AggFn::Count => self.events as f64,
            AggFn::Sum(_) => self.sum,
            AggFn::Avg(_) => {
                if self.numeric == 0 {
                    0.0
                } else {
                    self.sum / self.numeric as f64
                }
            }
            // Non-incremental aggregates never read GroupAgg.
            _ => unreachable!("GroupAgg::value on non-incremental aggregate"),
        }
    }
}

/// Intern a group-key [`Value`] as an `Arc<str>`. String values share
/// the event's existing allocation (a refcount bump); other value kinds
/// pay one small formatting allocation on entry/exit of the window
/// instead of one per event per lookup as the old rescan path did.
fn intern_key(v: &Value) -> Arc<str> {
    match v {
        Value::Str(s) => s.clone(),
        other => Arc::from(other.to_string().as_str()),
    }
}

/// Incremental runtime of one query.
///
/// For `Count`/`Sum`/`Avg` the state keeps per-group running aggregates
/// (updated as events enter and leave the window), so
/// [`rows`](Self::rows) is O(live groups) and
/// [`value_for`](Self::value_for) is
/// O(log groups) — not O(window) with a `to_string` per event. The
/// non-invertible aggregates (`Max`/`Min`/`CountDistinct`) keep the
/// rescan-on-read path.
#[derive(Debug)]
pub struct QueryState {
    pub spec: QuerySpec,
    window: Window,
    /// Per-group running aggregates, keyed by interned group key.
    groups: BTreeMap<Arc<str>, GroupAgg>,
    /// Whole-window aggregate (serves ungrouped queries).
    total: GroupAgg,
}

impl QueryState {
    pub fn new(spec: QuerySpec) -> Self {
        let window = spec.window.instantiate();
        QueryState {
            spec,
            window,
            groups: BTreeMap::new(),
            total: GroupAgg::default(),
        }
    }

    /// Offer an event; returns true if it entered the window.
    pub fn offer(&mut self, event: &Event) -> bool {
        if !self.spec.accepts(event) {
            return false;
        }
        let agg_field = self.spec.aggregate.field();
        self.total.add(event, agg_field);
        if let Some(field) = &self.spec.group_by {
            if let Some(v) = event.get(field) {
                self.groups
                    .entry(intern_key(v))
                    .or_default()
                    .add(event, agg_field);
            }
        }
        let (groups, spec, total) = (&mut self.groups, &self.spec, &mut self.total);
        self.window.push_with(event.clone(), |evicted| {
            Self::on_evict(groups, total, spec, &evicted);
        });
        true
    }

    /// Decrement the running aggregates for an event leaving the window.
    fn on_evict(
        groups: &mut BTreeMap<Arc<str>, GroupAgg>,
        total: &mut GroupAgg,
        spec: &QuerySpec,
        evicted: &Event,
    ) {
        let agg_field = spec.aggregate.field();
        total.remove(evicted, agg_field);
        if let Some(field) = &spec.group_by {
            if let Some(v) = evicted.get(field) {
                let key = intern_key(v);
                if let Some(g) = groups.get_mut(key.as_ref()) {
                    g.remove(evicted, agg_field);
                    if g.events == 0 {
                        groups.remove(key.as_ref());
                    }
                }
            }
        }
    }

    /// Expire stale events at `now`, keeping the running aggregates in
    /// step with the window.
    fn decay(&mut self, now: SimTime) {
        let (groups, spec, total) = (&mut self.groups, &self.spec, &mut self.total);
        self.window.expire_with(now, |evicted| {
            Self::on_evict(groups, total, spec, &evicted);
        });
    }

    /// Evaluate grouped aggregates at `now`, applying HAVING.
    /// Rows come out sorted by group key for determinism.
    pub fn rows(&mut self, now: SimTime) -> Vec<GroupRow> {
        self.decay(now);
        let mut rows = Vec::new();
        let incremental = self.spec.aggregate.is_incremental();
        match &self.spec.group_by {
            None => {
                let v = if incremental {
                    self.total.value(&self.spec.aggregate)
                } else {
                    self.spec.aggregate.apply(self.window.iter())
                };
                if self.spec.having.is_none_or(|h| h.test(v)) {
                    rows.push(GroupRow {
                        key: Arc::from(""),
                        value: v,
                    });
                }
            }
            Some(_) if incremental => {
                for (key, agg) in &self.groups {
                    let v = agg.value(&self.spec.aggregate);
                    if self.spec.having.is_none_or(|h| h.test(v)) {
                        rows.push(GroupRow {
                            key: key.clone(),
                            value: v,
                        });
                    }
                }
            }
            Some(field) => {
                let mut groups: BTreeMap<String, Vec<&Event>> = BTreeMap::new();
                for e in self.window.iter() {
                    if let Some(v) = e.get(field) {
                        groups.entry(v.to_string()).or_default().push(e);
                    }
                }
                for (key, events) in groups {
                    let v = self.spec.aggregate.apply(events.into_iter());
                    if self.spec.having.is_none_or(|h| h.test(v)) {
                        rows.push(GroupRow {
                            key: Arc::from(key.as_str()),
                            value: v,
                        });
                    }
                }
            }
        }
        rows
    }

    /// Aggregate value for one specific group key at `now` (no HAVING).
    ///
    /// For an ungrouped query the single row lives under the empty key
    /// (matching [`rows`](Self::rows)): `value_for(now, "")` returns the
    /// whole-window aggregate and any other key reads `0.0`, exactly as
    /// if the row did not exist.
    pub fn value_for(&mut self, now: SimTime, key: &str) -> f64 {
        self.decay(now);
        let field = match &self.spec.group_by {
            Some(f) => f,
            None => {
                if !key.is_empty() {
                    return 0.0;
                }
                return if self.spec.aggregate.is_incremental() {
                    self.total.value(&self.spec.aggregate)
                } else {
                    self.spec.aggregate.apply(self.window.iter())
                };
            }
        };
        if self.spec.aggregate.is_incremental() {
            return self
                .groups
                .get(key)
                .map(|g| g.value(&self.spec.aggregate))
                .unwrap_or(0.0);
        }
        let events = self
            .window
            .iter()
            .filter(|e| e.get(field).is_some_and(|v| v.to_string() == key));
        self.spec.aggregate.apply(events)
    }

    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Live groups currently tracked by the running aggregates.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

impl checkpoint::Checkpointable for QueryState {
    // The spec is NOT serialized: restore rebuilds the engine through the
    // same registration calls and only hydrates runtime state. The
    // running aggregates ARE serialized (not recomputed from the window)
    // because incremental float sums can drift from a rescan — a restored
    // run must continue from the drifted values the live run holds.
    fn save_state(&self) -> checkpoint::Value {
        use checkpoint::codec::MapBuilder;
        use checkpoint::Value;
        let agg = |g: &GroupAgg| {
            vec![
                Value::U64(g.events),
                Value::U64(g.numeric),
                Value::U64(g.sum.to_bits()),
            ]
        };
        MapBuilder::new()
            .put("window", self.window.save_state())
            .seq(
                "groups",
                self.groups
                    .iter()
                    .map(|(k, g)| {
                        let mut row = vec![Value::Str(k.to_string())];
                        row.extend(agg(g));
                        Value::Seq(row)
                    })
                    .collect(),
            )
            .seq("total", agg(&self.total))
            .build()
    }

    fn load_state(&mut self, state: &checkpoint::Value) -> Result<(), checkpoint::CheckpointError> {
        use checkpoint::codec as c;
        fn agg_back(
            parts: &[serde::Value],
            at: usize,
        ) -> Result<GroupAgg, checkpoint::CheckpointError> {
            Ok(GroupAgg {
                events: c::as_u64(&parts[at], "agg events")?,
                numeric: c::as_u64(&parts[at + 1], "agg numeric")?,
                sum: f64::from_bits(c::as_u64(&parts[at + 2], "agg sum")?),
            })
        }
        self.window.load_state(c::get(state, "window")?)?;
        self.groups.clear();
        for row in c::get_seq(state, "groups")? {
            let parts = c::as_seq(row, "groups[]")?;
            if parts.len() != 4 {
                return Err(checkpoint::CheckpointError::Corrupt(
                    "group row is not [key, events, numeric, sum]".into(),
                ));
            }
            let key: Arc<str> = Arc::from(c::as_str(&parts[0], "group key")?);
            self.groups.insert(key, agg_back(parts, 1)?);
        }
        let total = c::get_seq(state, "total")?;
        if total.len() != 3 {
            return Err(checkpoint::CheckpointError::Corrupt(
                "total is not [events, numeric, sum]".into(),
            ));
        }
        self.total = agg_back(total, 0)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(t: u64, path: &str) -> Event {
        Event::new(SimTime::from_secs(t), "audit")
            .with("cmd", "open")
            .with("src", path)
    }

    #[test]
    fn predicate_matching() {
        let e = access(1, "/a").with("size", 10i64);
        assert!(Predicate::Eq("cmd".into(), Value::str("open")).matches(&e));
        assert!(!Predicate::Eq("cmd".into(), Value::str("create")).matches(&e));
        assert!(Predicate::Ne("cmd".into(), Value::str("create")).matches(&e));
        assert!(Predicate::Gt("size".into(), 5.0).matches(&e));
        assert!(!Predicate::Lt("size".into(), 5.0).matches(&e));
        assert!(Predicate::Has("src".into()).matches(&e));
        assert!(!Predicate::Has("dst".into()).matches(&e));
        // missing field never matches comparisons
        assert!(!Predicate::Gt("nope".into(), 0.0).matches(&e));
    }

    #[test]
    fn count_per_group_within_window() {
        let spec = QuerySpec::count_per_group("audit", "src", SimDuration::from_secs(10));
        let mut q = QueryState::new(spec);
        for (t, p) in [(0, "/a"), (1, "/a"), (2, "/b"), (8, "/a"), (20, "/b")] {
            q.offer(&access(t, p));
        }
        // now = 20: only events with t + 10 >= 20 remain → t=20 (/b)
        let rows = q.rows(SimTime::from_secs(20));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key.as_ref(), "/b");
        assert_eq!(rows[0].value, 1.0);
    }

    #[test]
    fn rows_sorted_by_key() {
        let spec = QuerySpec::count_per_group("audit", "src", SimDuration::from_secs(100));
        let mut q = QueryState::new(spec);
        for p in ["/z", "/a", "/m", "/a"] {
            q.offer(&access(1, p));
        }
        let rows = q.rows(SimTime::from_secs(1));
        let keys: Vec<&str> = rows.iter().map(|r| r.key.as_ref()).collect();
        assert_eq!(keys, vec!["/a", "/m", "/z"]);
        assert_eq!(rows[0].value, 2.0);
    }

    #[test]
    fn having_filters_rows() {
        let mut spec = QuerySpec::count_per_group("audit", "src", SimDuration::from_secs(100));
        spec.having = Some(Comparison::Ge(2.0));
        let mut q = QueryState::new(spec);
        for p in ["/a", "/a", "/b"] {
            q.offer(&access(1, p));
        }
        let rows = q.rows(SimTime::from_secs(1));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key.as_ref(), "/a");
    }

    #[test]
    fn type_and_predicate_filter_on_offer() {
        let mut spec = QuerySpec::count_per_group("audit", "src", SimDuration::from_secs(100));
        spec.predicates
            .push(Predicate::Eq("cmd".into(), Value::str("open")));
        let mut q = QueryState::new(spec);
        assert!(q.offer(&access(0, "/a")));
        let wrong_type = Event::new(SimTime::ZERO, "block_read").with("src", "/a");
        assert!(!q.offer(&wrong_type));
        let wrong_cmd = Event::new(SimTime::ZERO, "audit")
            .with("cmd", "delete")
            .with("src", "/a");
        assert!(!q.offer(&wrong_cmd));
        assert_eq!(q.window_len(), 1);
    }

    #[test]
    fn aggregates() {
        let evs: Vec<Event> = [1.0, 2.0, 3.0, 2.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| Event::new(SimTime::from_secs(i as u64), "m").with("v", v))
            .collect();
        assert_eq!(AggFn::Count.apply(evs.iter()), 4.0);
        assert_eq!(AggFn::Sum("v".into()).apply(evs.iter()), 8.0);
        assert_eq!(AggFn::Avg("v".into()).apply(evs.iter()), 2.0);
        assert_eq!(AggFn::Max("v".into()).apply(evs.iter()), 3.0);
        assert_eq!(AggFn::Min("v".into()).apply(evs.iter()), 1.0);
        assert_eq!(AggFn::CountDistinct("v".into()).apply(evs.iter()), 3.0);
        assert_eq!(AggFn::Avg("v".into()).apply(std::iter::empty()), 0.0);
    }

    #[test]
    fn value_for_specific_group() {
        let spec = QuerySpec::count_per_group("audit", "src", SimDuration::from_secs(100));
        let mut q = QueryState::new(spec);
        for p in ["/a", "/a", "/b"] {
            q.offer(&access(1, p));
        }
        assert_eq!(q.value_for(SimTime::from_secs(1), "/a"), 2.0);
        assert_eq!(q.value_for(SimTime::from_secs(1), "/b"), 1.0);
        assert_eq!(q.value_for(SimTime::from_secs(1), "/c"), 0.0);
    }

    #[test]
    fn ungrouped_query_single_row() {
        let spec = QuerySpec {
            from: Some("audit".into()),
            predicates: vec![],
            window: WindowSpec::Length(2),
            group_by: None,
            aggregate: AggFn::Count,
            having: None,
        };
        let mut q = QueryState::new(spec);
        for t in 0..5 {
            q.offer(&access(t, "/a"));
        }
        let rows = q.rows(SimTime::from_secs(4));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].value, 2.0, "length window caps at 2");
    }

    #[test]
    fn ungrouped_value_for_matches_rows_key() {
        // The ungrouped row lives under "" — value_for must agree with
        // rows() on both the empty key and every other key.
        let spec = QuerySpec {
            from: Some("audit".into()),
            predicates: vec![],
            window: WindowSpec::Time(SimDuration::from_secs(100)),
            group_by: None,
            aggregate: AggFn::Count,
            having: None,
        };
        let mut q = QueryState::new(spec);
        for t in 0..4 {
            q.offer(&access(t, "/a"));
        }
        let now = SimTime::from_secs(4);
        let rows = q.rows(now);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key.as_ref(), "");
        assert_eq!(q.value_for(now, ""), rows[0].value);
        // A key that names no row reads 0.0, not the global aggregate.
        assert_eq!(q.value_for(now, "/a"), 0.0);
        assert_eq!(q.value_for(now, "/missing"), 0.0);
    }

    #[test]
    fn incremental_counts_track_eviction_churn() {
        // Drive a time window through pushes and silent decay; the
        // running aggregates must match a brute-force recount at every
        // step.
        let span = SimDuration::from_secs(10);
        let spec = QuerySpec::count_per_group("audit", "src", span);
        let mut q = QueryState::new(spec);
        let mut log: Vec<(u64, &str)> = Vec::new();
        let schedule: &[(u64, &str)] = &[
            (0, "/a"),
            (1, "/b"),
            (2, "/a"),
            (8, "/c"),
            (11, "/a"),
            (13, "/b"),
            (25, "/c"),
            (26, "/c"),
        ];
        for &(t, p) in schedule {
            q.offer(&access(t, p));
            log.push((t, p));
            let now = SimTime::from_secs(t);
            for key in ["/a", "/b", "/c", "/d"] {
                let expect = log
                    .iter()
                    .filter(|&&(et, ep)| ep == key && et + 10 >= t)
                    .count() as f64;
                assert_eq!(q.value_for(now, key), expect, "key {key} at t={t}");
            }
            let live: std::collections::BTreeSet<&str> = log
                .iter()
                .filter(|&&(et, _)| et + 10 >= t)
                .map(|&(_, p)| p)
                .collect();
            assert_eq!(q.group_count(), live.len(), "live groups at t={t}");
            let rows = q.rows(now);
            assert_eq!(rows.len(), live.len());
        }
        // Decay everything without pushing: groups drain to zero.
        assert_eq!(q.value_for(SimTime::from_secs(1000), "/c"), 0.0);
        assert_eq!(q.group_count(), 0);
        assert!(q.rows(SimTime::from_secs(1000)).is_empty());
    }

    #[test]
    fn incremental_sum_and_avg_survive_eviction() {
        let mk = |t: u64, key: &str, v: f64| {
            Event::new(SimTime::from_secs(t), "m")
                .with("k", key)
                .with("v", v)
        };
        for agg in [AggFn::Sum("v".into()), AggFn::Avg("v".into())] {
            let spec = QuerySpec {
                from: Some("m".into()),
                predicates: vec![],
                window: WindowSpec::Time(SimDuration::from_secs(10)),
                group_by: Some("k".into()),
                aggregate: agg.clone(),
                having: None,
            };
            let mut q = QueryState::new(spec);
            q.offer(&mk(0, "/a", 4.0));
            q.offer(&mk(1, "/a", 2.0));
            q.offer(&mk(2, "/b", 7.0));
            let now = SimTime::from_secs(2);
            let (a, b) = match agg {
                AggFn::Sum(_) => (6.0, 7.0),
                _ => (3.0, 7.0),
            };
            assert_eq!(q.value_for(now, "/a"), a);
            assert_eq!(q.value_for(now, "/b"), b);
            // t=12 evicts t=0 and t=1 (strictly older than now - span).
            let later = SimTime::from_secs(12);
            assert_eq!(q.value_for(later, "/a"), 0.0);
            assert_eq!(q.value_for(later, "/b"), 7.0);
        }
    }

    #[test]
    fn non_incremental_aggregates_rescan_after_eviction() {
        // Max is not invertible under eviction; the fallback rescan must
        // recover the runner-up once the max leaves the window.
        let mk = |t: u64, v: f64| {
            Event::new(SimTime::from_secs(t), "m")
                .with("k", "/a")
                .with("v", v)
        };
        let spec = QuerySpec {
            from: Some("m".into()),
            predicates: vec![],
            window: WindowSpec::Time(SimDuration::from_secs(10)),
            group_by: Some("k".into()),
            aggregate: AggFn::Max("v".into()),
            having: None,
        };
        let mut q = QueryState::new(spec);
        q.offer(&mk(0, 9.0));
        q.offer(&mk(5, 3.0));
        assert_eq!(q.value_for(SimTime::from_secs(5), "/a"), 9.0);
        assert_eq!(q.value_for(SimTime::from_secs(11), "/a"), 3.0);
    }

    #[test]
    fn length_window_eviction_updates_groups() {
        let spec = QuerySpec {
            from: Some("audit".into()),
            predicates: vec![],
            window: WindowSpec::Length(2),
            group_by: Some("src".into()),
            aggregate: AggFn::Count,
            having: None,
        };
        let mut q = QueryState::new(spec);
        q.offer(&access(0, "/a"));
        q.offer(&access(1, "/a"));
        q.offer(&access(2, "/b")); // evicts the t=0 "/a"
        let now = SimTime::from_secs(2);
        assert_eq!(q.value_for(now, "/a"), 1.0);
        assert_eq!(q.value_for(now, "/b"), 1.0);
        assert_eq!(q.group_count(), 2);
    }

    #[test]
    fn comparison_tests() {
        assert!(Comparison::Gt(1.0).test(2.0));
        assert!(!Comparison::Gt(1.0).test(1.0));
        assert!(Comparison::Ge(1.0).test(1.0));
        assert!(Comparison::Lt(1.0).test(0.5));
        assert!(Comparison::Le(1.0).test(1.0));
        assert!(Comparison::Eq(2.0).test(2.0));
    }
}
