//! Continuous queries.
//!
//! A [`QuerySpec`] is the declarative shape
//! `FROM type(predicates…) .win:… [GROUP BY field] SELECT agg(field)
//! [HAVING agg ⋄ threshold]`; [`QueryState`] is its incremental runtime:
//! it owns a window, applies the filter on arrival and computes grouped
//! aggregates on demand. ERMS's data judge runs a handful of these over
//! the audit stream (accesses per file, accesses per block, accesses per
//! datanode).

use crate::event::{Event, Value};
use crate::window::Window;
use simcore::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Window clause of a query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowSpec {
    Time(SimDuration),
    Length(usize),
}

impl WindowSpec {
    pub fn instantiate(self) -> Window {
        match self {
            WindowSpec::Time(d) => Window::time(d),
            WindowSpec::Length(n) => Window::length(n),
        }
    }
}

/// A filter on one event field.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    Eq(String, Value),
    Ne(String, Value),
    Gt(String, f64),
    Lt(String, f64),
    /// Field exists (any value).
    Has(String),
}

impl Predicate {
    pub fn matches(&self, event: &Event) -> bool {
        match self {
            Predicate::Eq(k, v) => event.get(k).is_some_and(|x| x.loosely_eq(v)),
            Predicate::Ne(k, v) => event.get(k).is_some_and(|x| !x.loosely_eq(v)),
            Predicate::Gt(k, t) => event.get(k).and_then(Value::as_f64).is_some_and(|x| x > *t),
            Predicate::Lt(k, t) => event.get(k).and_then(Value::as_f64).is_some_and(|x| x < *t),
            Predicate::Has(k) => event.get(k).is_some(),
        }
    }
}

/// Aggregate function over the windowed events of one group.
#[derive(Debug, Clone, PartialEq)]
pub enum AggFn {
    Count,
    Sum(String),
    Avg(String),
    Max(String),
    Min(String),
    /// Count of distinct values of a field (e.g. distinct client IPs).
    CountDistinct(String),
}

impl AggFn {
    pub fn apply<'a>(&self, events: impl Iterator<Item = &'a Event>) -> f64 {
        match self {
            AggFn::Count => events.count() as f64,
            AggFn::Sum(f) => events.filter_map(|e| e.get(f)?.as_f64()).sum(),
            AggFn::Avg(f) => {
                let vals: Vec<f64> = events.filter_map(|e| e.get(f)?.as_f64()).collect();
                if vals.is_empty() {
                    0.0
                } else {
                    vals.iter().sum::<f64>() / vals.len() as f64
                }
            }
            AggFn::Max(f) => events
                .filter_map(|e| e.get(f)?.as_f64())
                .fold(f64::NEG_INFINITY, f64::max),
            AggFn::Min(f) => events
                .filter_map(|e| e.get(f)?.as_f64())
                .fold(f64::INFINITY, f64::min),
            AggFn::CountDistinct(f) => {
                let mut seen: Vec<String> = events
                    .filter_map(|e| e.get(f).map(|v| v.to_string()))
                    .collect();
                seen.sort_unstable();
                seen.dedup();
                seen.len() as f64
            }
        }
    }
}

/// HAVING-clause comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Comparison {
    Gt(f64),
    Ge(f64),
    Lt(f64),
    Le(f64),
    Eq(f64),
}

impl Comparison {
    pub fn test(self, x: f64) -> bool {
        match self {
            Comparison::Gt(t) => x > t,
            Comparison::Ge(t) => x >= t,
            Comparison::Lt(t) => x < t,
            Comparison::Le(t) => x <= t,
            Comparison::Eq(t) => (x - t).abs() < f64::EPSILON,
        }
    }
}

/// Declarative query description.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Event type to consume; `None` consumes every type.
    pub from: Option<String>,
    pub predicates: Vec<Predicate>,
    pub window: WindowSpec,
    pub group_by: Option<String>,
    pub aggregate: AggFn,
    pub having: Option<Comparison>,
}

impl QuerySpec {
    /// Count events of `event_type` per `group_field` within a sliding
    /// time window — the workhorse shape for ERMS's judge.
    pub fn count_per_group(
        event_type: impl Into<String>,
        group_field: impl Into<String>,
        window: SimDuration,
    ) -> Self {
        QuerySpec {
            from: Some(event_type.into()),
            predicates: Vec::new(),
            window: WindowSpec::Time(window),
            group_by: Some(group_field.into()),
            aggregate: AggFn::Count,
            having: None,
        }
    }

    pub fn accepts(&self, event: &Event) -> bool {
        if let Some(ty) = &self.from {
            if event.event_type.as_ref() != ty {
                return false;
            }
        }
        self.predicates.iter().all(|p| p.matches(event))
    }
}

/// Output row of a query: group key (empty string for ungrouped) and
/// aggregate value.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    pub key: Arc<str>,
    pub value: f64,
}

/// Incremental runtime of one query.
#[derive(Debug)]
pub struct QueryState {
    pub spec: QuerySpec,
    window: Window,
}

impl QueryState {
    pub fn new(spec: QuerySpec) -> Self {
        let window = spec.window.instantiate();
        QueryState { spec, window }
    }

    /// Offer an event; returns true if it entered the window.
    pub fn offer(&mut self, event: &Event) -> bool {
        if !self.spec.accepts(event) {
            return false;
        }
        self.window.push(event.clone());
        true
    }

    /// Evaluate grouped aggregates at `now`, applying HAVING.
    /// Rows come out sorted by group key for determinism.
    pub fn rows(&mut self, now: SimTime) -> Vec<GroupRow> {
        self.window.expire(now);
        let mut rows = Vec::new();
        match &self.spec.group_by {
            None => {
                let v = self.spec.aggregate.apply(self.window.iter());
                if self.spec.having.is_none_or(|h| h.test(v)) {
                    rows.push(GroupRow {
                        key: Arc::from(""),
                        value: v,
                    });
                }
            }
            Some(field) => {
                let mut groups: BTreeMap<String, Vec<&Event>> = BTreeMap::new();
                for e in self.window.iter() {
                    if let Some(v) = e.get(field) {
                        groups.entry(v.to_string()).or_default().push(e);
                    }
                }
                for (key, events) in groups {
                    let v = self.spec.aggregate.apply(events.into_iter());
                    if self.spec.having.is_none_or(|h| h.test(v)) {
                        rows.push(GroupRow {
                            key: Arc::from(key.as_str()),
                            value: v,
                        });
                    }
                }
            }
        }
        rows
    }

    /// Aggregate value for one specific group key at `now` (no HAVING).
    pub fn value_for(&mut self, now: SimTime, key: &str) -> f64 {
        self.window.expire(now);
        let field = match &self.spec.group_by {
            Some(f) => f,
            None => return self.spec.aggregate.apply(self.window.iter()),
        };
        let events = self
            .window
            .iter()
            .filter(|e| e.get(field).is_some_and(|v| v.to_string() == key));
        self.spec.aggregate.apply(events)
    }

    pub fn window_len(&self) -> usize {
        self.window.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(t: u64, path: &str) -> Event {
        Event::new(SimTime::from_secs(t), "audit")
            .with("cmd", "open")
            .with("src", path)
    }

    #[test]
    fn predicate_matching() {
        let e = access(1, "/a").with("size", 10i64);
        assert!(Predicate::Eq("cmd".into(), Value::str("open")).matches(&e));
        assert!(!Predicate::Eq("cmd".into(), Value::str("create")).matches(&e));
        assert!(Predicate::Ne("cmd".into(), Value::str("create")).matches(&e));
        assert!(Predicate::Gt("size".into(), 5.0).matches(&e));
        assert!(!Predicate::Lt("size".into(), 5.0).matches(&e));
        assert!(Predicate::Has("src".into()).matches(&e));
        assert!(!Predicate::Has("dst".into()).matches(&e));
        // missing field never matches comparisons
        assert!(!Predicate::Gt("nope".into(), 0.0).matches(&e));
    }

    #[test]
    fn count_per_group_within_window() {
        let spec = QuerySpec::count_per_group("audit", "src", SimDuration::from_secs(10));
        let mut q = QueryState::new(spec);
        for (t, p) in [(0, "/a"), (1, "/a"), (2, "/b"), (8, "/a"), (20, "/b")] {
            q.offer(&access(t, p));
        }
        // now = 20: only events with t + 10 >= 20 remain → t=20 (/b)
        let rows = q.rows(SimTime::from_secs(20));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key.as_ref(), "/b");
        assert_eq!(rows[0].value, 1.0);
    }

    #[test]
    fn rows_sorted_by_key() {
        let spec = QuerySpec::count_per_group("audit", "src", SimDuration::from_secs(100));
        let mut q = QueryState::new(spec);
        for p in ["/z", "/a", "/m", "/a"] {
            q.offer(&access(1, p));
        }
        let rows = q.rows(SimTime::from_secs(1));
        let keys: Vec<&str> = rows.iter().map(|r| r.key.as_ref()).collect();
        assert_eq!(keys, vec!["/a", "/m", "/z"]);
        assert_eq!(rows[0].value, 2.0);
    }

    #[test]
    fn having_filters_rows() {
        let mut spec = QuerySpec::count_per_group("audit", "src", SimDuration::from_secs(100));
        spec.having = Some(Comparison::Ge(2.0));
        let mut q = QueryState::new(spec);
        for p in ["/a", "/a", "/b"] {
            q.offer(&access(1, p));
        }
        let rows = q.rows(SimTime::from_secs(1));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key.as_ref(), "/a");
    }

    #[test]
    fn type_and_predicate_filter_on_offer() {
        let mut spec = QuerySpec::count_per_group("audit", "src", SimDuration::from_secs(100));
        spec.predicates
            .push(Predicate::Eq("cmd".into(), Value::str("open")));
        let mut q = QueryState::new(spec);
        assert!(q.offer(&access(0, "/a")));
        let wrong_type = Event::new(SimTime::ZERO, "block_read").with("src", "/a");
        assert!(!q.offer(&wrong_type));
        let wrong_cmd = Event::new(SimTime::ZERO, "audit")
            .with("cmd", "delete")
            .with("src", "/a");
        assert!(!q.offer(&wrong_cmd));
        assert_eq!(q.window_len(), 1);
    }

    #[test]
    fn aggregates() {
        let evs: Vec<Event> = [1.0, 2.0, 3.0, 2.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| Event::new(SimTime::from_secs(i as u64), "m").with("v", v))
            .collect();
        assert_eq!(AggFn::Count.apply(evs.iter()), 4.0);
        assert_eq!(AggFn::Sum("v".into()).apply(evs.iter()), 8.0);
        assert_eq!(AggFn::Avg("v".into()).apply(evs.iter()), 2.0);
        assert_eq!(AggFn::Max("v".into()).apply(evs.iter()), 3.0);
        assert_eq!(AggFn::Min("v".into()).apply(evs.iter()), 1.0);
        assert_eq!(AggFn::CountDistinct("v".into()).apply(evs.iter()), 3.0);
        assert_eq!(AggFn::Avg("v".into()).apply(std::iter::empty()), 0.0);
    }

    #[test]
    fn value_for_specific_group() {
        let spec = QuerySpec::count_per_group("audit", "src", SimDuration::from_secs(100));
        let mut q = QueryState::new(spec);
        for p in ["/a", "/a", "/b"] {
            q.offer(&access(1, p));
        }
        assert_eq!(q.value_for(SimTime::from_secs(1), "/a"), 2.0);
        assert_eq!(q.value_for(SimTime::from_secs(1), "/b"), 1.0);
        assert_eq!(q.value_for(SimTime::from_secs(1), "/c"), 0.0);
    }

    #[test]
    fn ungrouped_query_single_row() {
        let spec = QuerySpec {
            from: Some("audit".into()),
            predicates: vec![],
            window: WindowSpec::Length(2),
            group_by: None,
            aggregate: AggFn::Count,
            having: None,
        };
        let mut q = QueryState::new(spec);
        for t in 0..5 {
            q.offer(&access(t, "/a"));
        }
        let rows = q.rows(SimTime::from_secs(4));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].value, 2.0, "length window caps at 2");
    }

    #[test]
    fn comparison_tests() {
        assert!(Comparison::Gt(1.0).test(2.0));
        assert!(!Comparison::Gt(1.0).test(1.0));
        assert!(Comparison::Ge(1.0).test(1.0));
        assert!(Comparison::Lt(1.0).test(0.5));
        assert!(Comparison::Le(1.0).test(1.0));
        assert!(Comparison::Eq(2.0).test(2.0));
    }
}
