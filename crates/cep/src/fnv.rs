//! FNV-1a hashing for the ingest hot path.
//!
//! `std`'s default SipHash is keyed against hash-flooding, but its
//! per-hash setup cost dominates when the keys are short strings hashed
//! millions of times per second (intern-pool probes, per-group
//! aggregate lookups). FNV-1a is a few shifts and multiplies per byte
//! with zero setup. Flooding resistance is not needed here: the intern
//! pool is size-capped and group keys come from the simulator's own
//! namespace, not an adversary.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit FNV-1a streaming hasher.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// `BuildHasher` plugging [`FnvHasher`] into `HashMap`/`HashSet`.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn matches_known_fnv1a_vectors() {
        fn fnv(s: &str) -> u64 {
            let mut h = FnvHasher::default();
            h.write(s.as_bytes());
            h.finish()
        }
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv("foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn usable_as_set_hasher() {
        let mut set: HashSet<&str, FnvBuildHasher> = HashSet::default();
        set.insert("/data/a");
        set.insert("/data/b");
        assert!(set.contains("/data/a"));
        assert!(!set.contains("/data/c"));
    }
}
