//! Sliding windows.
//!
//! The paper singles out the two classic CEP windows: "The length window
//! instructs the system to only keep the last N events. The time window
//! enables us to limit the number of events within a specified time
//! interval." Both are implemented over a `VecDeque`; eviction is O(1)
//! amortised per arrival.

use crate::event::Event;
use simcore::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A sliding window of events.
#[derive(Debug, Clone)]
pub enum Window {
    /// Keep events newer than `now - span`.
    Time {
        span: SimDuration,
        buf: VecDeque<Event>,
    },
    /// Keep the most recent `capacity` events.
    Length {
        capacity: usize,
        buf: VecDeque<Event>,
    },
}

impl Window {
    pub fn time(span: SimDuration) -> Self {
        Window::Time {
            span,
            buf: VecDeque::new(),
        }
    }

    pub fn length(capacity: usize) -> Self {
        assert!(capacity > 0, "length window needs capacity >= 1");
        Window::Length {
            capacity,
            buf: VecDeque::with_capacity(capacity),
        }
    }

    /// Insert an event (assumed to arrive in non-decreasing time order)
    /// and evict everything that falls out of the window.
    pub fn push(&mut self, event: Event) {
        self.push_with(event, |_| {});
    }

    /// [`push`](Self::push), handing every evicted event to `on_evict`
    /// so callers that maintain running aggregates can decrement them
    /// instead of rescanning the window.
    pub fn push_with(&mut self, event: Event, mut on_evict: impl FnMut(Event)) {
        match self {
            Window::Time { span, buf } => {
                let now = event.time;
                buf.push_back(event);
                let cutoff = now.since(SimTime::ZERO); // now as duration from 0
                                                       // evict strictly-older-than (now - span); keep boundary events
                while let Some(front) = buf.front() {
                    if front.time.since(SimTime::ZERO) + *span < cutoff {
                        on_evict(buf.pop_front().expect("front exists"));
                    } else {
                        break;
                    }
                }
            }
            Window::Length { capacity, buf } => {
                if buf.len() == *capacity {
                    on_evict(buf.pop_front().expect("front exists"));
                }
                buf.push_back(event);
            }
        }
    }

    /// Advance time without inserting, evicting expired events (the
    /// engine calls this before reading a time window so counts decay
    /// even when a stream goes quiet).
    pub fn expire(&mut self, now: SimTime) {
        self.expire_with(now, |_| {});
    }

    /// [`expire`](Self::expire) with an eviction callback, mirroring
    /// [`push_with`](Self::push_with).
    pub fn expire_with(&mut self, now: SimTime, mut on_evict: impl FnMut(Event)) {
        if let Window::Time { span, buf } = self {
            let cutoff = now.since(SimTime::ZERO);
            while let Some(front) = buf.front() {
                if front.time.since(SimTime::ZERO) + *span < cutoff {
                    on_evict(buf.pop_front().expect("front exists"));
                } else {
                    break;
                }
            }
        }
    }

    pub fn len(&self) -> usize {
        self.buf().len()
    }
    pub fn is_empty(&self) -> bool {
        self.buf().is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf().iter()
    }

    fn buf(&self) -> &VecDeque<Event> {
        match self {
            Window::Time { buf, .. } | Window::Length { buf, .. } => buf,
        }
    }
}

impl checkpoint::Checkpointable for Window {
    fn save_state(&self) -> checkpoint::Value {
        use checkpoint::codec::MapBuilder;
        let events = |buf: &VecDeque<Event>| buf.iter().map(crate::event::ck::event).collect();
        match self {
            Window::Time { span, buf } => MapBuilder::new()
                .str("kind", "time")
                .u64("span", span.as_nanos())
                .seq("buf", events(buf))
                .build(),
            Window::Length { capacity, buf } => MapBuilder::new()
                .str("kind", "length")
                .u64("capacity", *capacity as u64)
                .seq("buf", events(buf))
                .build(),
        }
    }

    fn load_state(&mut self, state: &checkpoint::Value) -> Result<(), checkpoint::CheckpointError> {
        use checkpoint::codec as c;
        let buf: VecDeque<Event> = c::get_seq(state, "buf")?
            .iter()
            .map(crate::event::ck::event_back)
            .collect::<Result<_, _>>()?;
        *self = match c::get_str(state, "kind")? {
            "time" => Window::Time {
                span: SimDuration::from_nanos(c::get_u64(state, "span")?),
                buf,
            },
            "length" => Window::Length {
                capacity: c::get_usize(state, "capacity")?,
                buf,
            },
            other => {
                return Err(checkpoint::CheckpointError::Corrupt(format!(
                    "unknown window kind `{other}`"
                )))
            }
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> Event {
        Event::new(SimTime::from_secs(t), "e").with("t", t as i64)
    }

    #[test]
    fn time_window_evicts_old_events() {
        let mut w = Window::time(SimDuration::from_secs(10));
        for t in [0u64, 3, 6, 9, 12, 15] {
            w.push(ev(t));
        }
        // now = 15; keep events with time + 10 >= 15, i.e. t >= 5
        let times: Vec<i64> = w
            .iter()
            .map(|e| e.get("t").unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(times, vec![6, 9, 12, 15]);
    }

    #[test]
    fn time_window_keeps_boundary_event() {
        let mut w = Window::time(SimDuration::from_secs(10));
        w.push(ev(0));
        w.push(ev(10));
        assert_eq!(w.len(), 2, "event exactly span old stays");
        w.push(ev(11));
        assert_eq!(w.len(), 2, "t=0 evicted at now=11");
    }

    #[test]
    fn expire_without_insert() {
        let mut w = Window::time(SimDuration::from_secs(5));
        w.push(ev(0));
        w.push(ev(2));
        w.expire(SimTime::from_secs(100));
        assert!(w.is_empty());
    }

    #[test]
    fn length_window_keeps_last_n() {
        let mut w = Window::length(3);
        for t in 0..10u64 {
            w.push(ev(t));
        }
        let times: Vec<i64> = w
            .iter()
            .map(|e| e.get("t").unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(times, vec![7, 8, 9]);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn length_window_expire_is_noop() {
        let mut w = Window::length(2);
        w.push(ev(1));
        w.expire(SimTime::from_secs(1000));
        assert_eq!(w.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        Window::length(0);
    }

    #[test]
    fn push_with_reports_time_evictions() {
        let mut w = Window::time(SimDuration::from_secs(10));
        let mut evicted = Vec::new();
        for t in [0u64, 3, 6, 15] {
            w.push_with(ev(t), |e| {
                evicted.push(e.get("t").unwrap().as_i64().unwrap());
            });
        }
        // now = 15 evicts t=0 and t=3 (t + 10 < 15); t=6 stays (boundary-inclusive)
        assert_eq!(evicted, vec![0, 3]);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn push_with_reports_length_evictions() {
        let mut w = Window::length(2);
        let mut evicted = Vec::new();
        for t in 0..4u64 {
            w.push_with(ev(t), |e| {
                evicted.push(e.get("t").unwrap().as_i64().unwrap());
            });
        }
        assert_eq!(evicted, vec![0, 1]);
    }

    #[test]
    fn expire_with_reports_evictions() {
        let mut w = Window::time(SimDuration::from_secs(5));
        w.push(ev(0));
        w.push(ev(2));
        let mut evicted = Vec::new();
        w.expire_with(SimTime::from_secs(100), |e| {
            evicted.push(e.get("t").unwrap().as_i64().unwrap());
        });
        assert_eq!(evicted, vec![0, 2]);
        assert!(w.is_empty());
    }
}
