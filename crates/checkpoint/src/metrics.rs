//! Codec for [`simcore::MetricsRegistry`].
//!
//! `simcore` sits below this crate in the dependency DAG, so — unlike
//! the substrate codecs that live with their owning crates — the
//! registry's [`Checkpointable`] impl lives here, built entirely on the
//! registry's public accessors. Counters, gauges and histograms all
//! round-trip; floats go through [`crate::codec::f64_bits`] so a restored
//! registry's `snapshot_json` is byte-identical to the saved one's,
//! which is what lets the resume-equivalence guard extend from traces
//! to metric dumps.

use crate::codec as c;
use crate::{CheckpointError, Checkpointable, Value};
use simcore::telemetry::MetricHistogram;
use simcore::MetricsRegistry;

impl Checkpointable for MetricsRegistry {
    fn save_state(&self) -> Value {
        let counters = Value::Map(
            self.counters()
                .map(|(k, v)| (k.to_string(), Value::U64(v)))
                .collect(),
        );
        let gauges = Value::Map(
            self.gauges()
                .map(|(k, v)| (k.to_string(), c::f64_bits(v)))
                .collect(),
        );
        let histograms = Value::Map(
            self.histograms()
                .map(|(k, h)| {
                    let v = c::MapBuilder::new()
                        .u64("count", h.count)
                        .f64b("sum", h.sum)
                        .f64b("min", h.min)
                        .f64b("max", h.max)
                        .seq(
                            "buckets",
                            h.buckets().iter().map(|&b| Value::U64(b)).collect(),
                        )
                        .build();
                    (k.to_string(), v)
                })
                .collect(),
        );
        c::MapBuilder::new()
            .put("counters", counters)
            .put("gauges", gauges)
            .put("histograms", histograms)
            .build()
    }

    fn load_state(&mut self, state: &Value) -> Result<(), CheckpointError> {
        let mut fresh = MetricsRegistry::default();
        for (k, v) in c::as_map(c::get(state, "counters")?, "counters")? {
            fresh.restore_counter(k, c::as_u64(v, k)?);
        }
        for (k, v) in c::as_map(c::get(state, "gauges")?, "gauges")? {
            fresh.restore_gauge(k, c::as_f64_bits(v, k)?);
        }
        for (k, v) in c::as_map(c::get(state, "histograms")?, "histograms")? {
            let buckets = c::get_seq(v, "buckets")?
                .iter()
                .map(|b| c::as_u64(b, "buckets"))
                .collect::<Result<Vec<u64>, _>>()?;
            fresh.restore_histogram(
                k,
                MetricHistogram::from_parts(
                    c::get_u64(v, "count")?,
                    c::get_f64b(v, "sum")?,
                    c::get_f64b(v, "min")?,
                    c::get_f64b(v, "max")?,
                    buckets,
                ),
            );
        }
        *self = fresh;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;

    #[test]
    fn registry_round_trips_byte_identically_through_json() {
        let mut reg = MetricsRegistry::default();
        reg.counter_add("erms.hot_verdicts", 17);
        reg.counter_add("hdfs.reads", 900);
        reg.gauge_set("erms.energy", -0.125);
        reg.gauge_set("weird", f64::NAN);
        for v in [0.5, 2.0, 2.0, 66.0, 1e9] {
            reg.observe("hdfs.read_latency", v);
        }

        let json = serde_json::to_string(&reg.save_state()).unwrap();
        let back = serde_json::parse_value(&json).unwrap();
        let mut restored = MetricsRegistry::default();
        restored.load_state(&back).unwrap();

        let now = SimTime::from_secs(99);
        assert_eq!(restored.snapshot_json(now), reg.snapshot_json(now));
        // NaN gauge survived bit-exactly (snapshot renders it as null,
        // so check the bits directly).
        assert_eq!(
            restored.gauge("weird").unwrap().to_bits(),
            reg.gauge("weird").unwrap().to_bits()
        );
    }

    #[test]
    fn load_replaces_rather_than_merges() {
        let mut reg = MetricsRegistry::default();
        reg.counter_add("stale.counter", 1);
        let empty = MetricsRegistry::default();
        reg.load_state(&empty.save_state()).unwrap();
        assert!(reg.is_empty(), "restore overwrites pre-existing metrics");
    }

    #[test]
    fn load_rejects_malformed_state() {
        let mut reg = MetricsRegistry::default();
        assert!(reg.load_state(&Value::Null).is_err());
        let missing = c::MapBuilder::new()
            .put("counters", Value::Map(vec![]))
            .build();
        assert!(matches!(
            reg.load_state(&missing),
            Err(CheckpointError::MissingField(_))
        ));
    }
}
