//! Typed errors for snapshot save/load.

use std::fmt;

/// Why a snapshot could not be saved or loaded.
///
/// Marked `#[non_exhaustive]`: future format revisions may add failure
/// modes (e.g. section-level versioning) without a breaking release.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The snapshot declares a format version this build cannot read.
    UnknownVersion { found: u32, supported: u32 },
    /// A section the restore path needs is absent.
    MissingSection(String),
    /// A field inside a section is absent.
    MissingField(String),
    /// A field exists but holds the wrong shape.
    TypeMismatch {
        field: String,
        expected: &'static str,
    },
    /// The document is not valid JSON / not a snapshot envelope.
    Parse(String),
    /// Reading or writing the snapshot file failed.
    Io(String),
    /// The snapshot is internally inconsistent (e.g. an index points
    /// past the data it indexes).
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::UnknownVersion { found, supported } => write!(
                f,
                "snapshot format version {found} not supported (this build reads ≤ {supported})"
            ),
            CheckpointError::MissingSection(name) => write!(f, "missing section `{name}`"),
            CheckpointError::MissingField(name) => write!(f, "missing field `{name}`"),
            CheckpointError::TypeMismatch { field, expected } => {
                write!(f, "field `{field}`: expected {expected}")
            }
            CheckpointError::Parse(msg) => write!(f, "snapshot parse error: {msg}"),
            CheckpointError::Io(msg) => write!(f, "snapshot I/O error: {msg}"),
            CheckpointError::Corrupt(msg) => write!(f, "snapshot corrupt: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}
