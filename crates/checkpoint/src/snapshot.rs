//! The versioned snapshot envelope.
//!
//! A snapshot is one JSON document:
//!
//! ```json
//! {
//!   "version": 1,
//!   "meta": { "scenario": "faults-small", "seed": 42, "tick": 10 },
//!   "sections": { "cluster": { ... }, "manager": { ... }, ... }
//! }
//! ```
//!
//! `version` is checked *first* on load: a snapshot written by a newer
//! format fails with [`CheckpointError::UnknownVersion`] before anything
//! else is touched — never a panic. `meta` names the scenario and seed
//! the snapshot belongs to; the runner rebuilds the static configuration
//! from that identity (configs are code, not snapshot payload).
//! `sections` maps component names to the opaque [`Value`] each
//! [`Checkpointable`](crate::Checkpointable) impl produced.

use crate::codec;
use crate::error::CheckpointError;
use serde::Value;
use std::collections::BTreeMap;
use std::path::Path;

/// The snapshot format this build writes and the newest it reads.
pub const FORMAT_VERSION: u32 = 1;

/// Identity of the run a snapshot belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Scenario name; the resume path rebuilds configuration from it.
    pub scenario: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Control-loop tick at which the snapshot was taken.
    pub tick: u64,
}

/// A complete, versioned snapshot of a run.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub version: u32,
    pub meta: SnapshotMeta,
    sections: BTreeMap<String, Value>,
}

impl Snapshot {
    /// An empty snapshot at the current [`FORMAT_VERSION`].
    pub fn new(meta: SnapshotMeta) -> Self {
        Snapshot {
            version: FORMAT_VERSION,
            meta,
            sections: BTreeMap::new(),
        }
    }

    /// Add (or replace) a named component section.
    pub fn insert_section(&mut self, name: &str, state: Value) {
        self.sections.insert(name.to_string(), state);
    }

    /// Fetch a required section.
    pub fn section(&self, name: &str) -> Result<&Value, CheckpointError> {
        self.sections
            .get(name)
            .ok_or_else(|| CheckpointError::MissingSection(name.to_string()))
    }

    /// Names of the sections present, sorted.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.keys().map(String::as_str)
    }

    /// Serialise to the JSON envelope (compact, deterministic: sections
    /// are sorted by name, floats inside are bit-encoded).
    pub fn to_json(&self) -> String {
        let meta = Value::Map(vec![
            ("scenario".into(), Value::Str(self.meta.scenario.clone())),
            ("seed".into(), Value::U64(self.meta.seed)),
            ("tick".into(), Value::U64(self.meta.tick)),
        ]);
        let sections = Value::Map(
            self.sections
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        );
        let doc = Value::Map(vec![
            ("version".into(), Value::U64(u64::from(self.version))),
            ("meta".into(), meta),
            ("sections".into(), sections),
        ]);
        serde_json::to_string(&doc).expect("value tree always prints")
    }

    /// Parse a snapshot, checking the format version before anything
    /// else.
    pub fn from_json(s: &str) -> Result<Self, CheckpointError> {
        let doc = serde_json::parse_value(s).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        let version = codec::get_u32(&doc, "version")?;
        if version > FORMAT_VERSION || version == 0 {
            return Err(CheckpointError::UnknownVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let meta_v = codec::get(&doc, "meta")?;
        let meta = SnapshotMeta {
            scenario: codec::get_str(meta_v, "scenario")?.to_string(),
            seed: codec::get_u64(meta_v, "seed")?,
            tick: codec::get_u64(meta_v, "tick")?,
        };
        let sections_v = codec::get(&doc, "sections")?;
        let sections = codec::as_map(sections_v, "sections")?
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        Ok(Snapshot {
            version,
            meta,
            sections,
        })
    }

    /// Write the snapshot to a file.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json())
            .map_err(|e| CheckpointError::Io(format!("write {}: {e}", path.display())))
    }

    /// Read a snapshot back from a file.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| CheckpointError::Io(format!("read {}: {e}", path.display())))?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::MapBuilder;

    fn meta() -> SnapshotMeta {
        SnapshotMeta {
            scenario: "unit".into(),
            seed: 7,
            tick: 3,
        }
    }

    #[test]
    fn envelope_round_trips() {
        let mut s = Snapshot::new(meta());
        s.insert_section("a", MapBuilder::new().u64("x", 1).build());
        s.insert_section("b", MapBuilder::new().f64b("y", -2.5).build());
        let json = s.to_json();
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(back.version, FORMAT_VERSION);
        assert_eq!(back.meta, meta());
        assert_eq!(back.section_names().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(codec::get_u64(back.section("a").unwrap(), "x").unwrap(), 1);
        assert_eq!(
            codec::get_f64b(back.section("b").unwrap(), "y").unwrap(),
            -2.5
        );
        assert!(matches!(
            back.section("missing"),
            Err(CheckpointError::MissingSection(_))
        ));
    }

    #[test]
    fn unknown_version_is_a_typed_error_not_a_panic() {
        let mut s = Snapshot::new(meta());
        s.insert_section("a", MapBuilder::new().build());
        let json = s.to_json().replace("\"version\":1", "\"version\":99");
        match Snapshot::from_json(&json) {
            Err(CheckpointError::UnknownVersion { found, supported }) => {
                assert_eq!(found, 99);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected UnknownVersion, got {other:?}"),
        }
        // version 0 is reserved / invalid
        let json0 = s.to_json().replace("\"version\":1", "\"version\":0");
        assert!(matches!(
            Snapshot::from_json(&json0),
            Err(CheckpointError::UnknownVersion { .. })
        ));
    }

    #[test]
    fn garbage_is_a_parse_error() {
        assert!(matches!(
            Snapshot::from_json("not json"),
            Err(CheckpointError::Parse(_))
        ));
        assert!(matches!(
            Snapshot::from_json("{\"no\":\"version\"}"),
            Err(CheckpointError::MissingField(_))
        ));
    }

    #[test]
    fn file_round_trip_and_io_errors() {
        let dir = std::env::temp_dir().join("checkpoint-crate-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let mut s = Snapshot::new(meta());
        s.insert_section("a", MapBuilder::new().u64("x", 9).build());
        s.write_file(&path).unwrap();
        let back = Snapshot::read_file(&path).unwrap();
        assert_eq!(codec::get_u64(back.section("a").unwrap(), "x").unwrap(), 9);
        assert!(matches!(
            Snapshot::read_file(dir.join("absent.json")),
            Err(CheckpointError::Io(_))
        ));
    }
}
