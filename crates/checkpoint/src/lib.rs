//! Deterministic checkpoint/restore for the ERMS stack.
//!
//! The paper keeps a Condor task log precisely so elastic actions "could
//! rollback automatically" and "replay all operations" (PAPER §III.E).
//! This crate turns that from a quote into a capability: a versioned,
//! self-describing snapshot format that captures the *entire*
//! deterministic state of a run — simulator clock and event queue, RNG
//! streams, cluster (namespace, block map, in-flight flows), CEP windows
//! and aggregates, the Condor scheduler with its journal, and the ERMS
//! manager's control state — so a run can be persisted mid-flight and
//! resumed bit-for-bit.
//!
//! # Architecture
//!
//! Serialisation goes through the workspace serde stand-in's [`Value`]
//! tree. The vendored derive only handles simple shapes, so every
//! stateful type writes a hand-rolled codec via the [`Checkpointable`]
//! trait, implemented *in the owning crate* (the codecs need private
//! fields). `simcore` sits below this crate in the dependency DAG, so
//! its types expose state accessors
//! ([`DetRng::state`](simcore::rng::DetRng::state),
//! [`EventQueue::snapshot`](simcore::EventQueue::snapshot), …) and the
//! codecs live with their callers instead.
//!
//! Restore is **rebuild-then-hydrate**: the caller reconstructs each
//! component through its normal constructor (closures, trait objects and
//! telemetry handles are not serialisable and are *re-attached*, not
//! restored), then [`Checkpointable::load_state`] overwrites the dynamic
//! state. Static configuration is deliberately *not* captured — a
//! snapshot names its scenario in [`SnapshotMeta`] and the runner
//! rebuilds the config from code, so a snapshot can never smuggle in a
//! config that disagrees with the scenario it claims to be.
//!
//! # Bit-exactness
//!
//! Every `f64` in a snapshot is encoded as its raw IEEE-754 bits
//! ([`codec::f64_bits`]) so a save/load round trip through JSON never
//! re-parses a float. That is what makes the resume-equivalence guard
//! possible: a run resumed from a snapshot emits a telemetry suffix that
//! concatenates with the pre-snapshot prefix into the byte-identical
//! straight-through trace.

pub mod codec;
pub mod error;
pub mod metrics;
pub mod snapshot;

pub use error::CheckpointError;
pub use serde::Value;
pub use snapshot::{Snapshot, SnapshotMeta, FORMAT_VERSION};

/// A component whose dynamic state can be captured into a [`Value`] and
/// later hydrated back into a freshly constructed instance.
///
/// Implementations live in the crate that owns the type (the codecs
/// need private fields). `load_state` must be *total* over the values
/// `save_state` produces and return a typed error — never panic — on
/// anything else.
pub trait Checkpointable {
    /// Capture the component's complete dynamic state.
    fn save_state(&self) -> Value;

    /// Overwrite this instance's dynamic state with a captured one.
    ///
    /// The instance should be freshly built by the same constructor
    /// path (same config, same seed-independent wiring) that produced
    /// the saved one; static wiring is not part of the state.
    fn load_state(&mut self, state: &Value) -> Result<(), CheckpointError>;
}
