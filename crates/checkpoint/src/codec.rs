//! Hand-codec helpers over the serde stand-in's [`Value`] tree.
//!
//! The vendored derive handles only simple named-field structs, so every
//! [`Checkpointable`](crate::Checkpointable) impl writes its codec by
//! hand. These helpers keep that code short and give every failure a
//! typed [`CheckpointError`] that names the offending field.
//!
//! Floats are **never** stored as JSON numbers: [`f64_bits`] encodes the
//! raw IEEE-754 bits as a `u64` so round trips are bit-exact. Times go
//! through nanoseconds.

use crate::error::CheckpointError;
use serde::Value;
use simcore::{SimDuration, SimTime};

// ------------------------------------------------------------- building

/// Fluent builder for a `Value::Map` section.
#[derive(Default)]
pub struct MapBuilder {
    entries: Vec<(String, Value)>,
}

impl MapBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn put(mut self, key: &str, v: Value) -> Self {
        self.entries.push((key.to_string(), v));
        self
    }

    pub fn u64(self, key: &str, x: u64) -> Self {
        self.put(key, Value::U64(x))
    }

    pub fn bool(self, key: &str, x: bool) -> Self {
        self.put(key, Value::Bool(x))
    }

    pub fn str(self, key: &str, s: &str) -> Self {
        self.put(key, Value::Str(s.to_string()))
    }

    /// Store an `f64` as its raw bits.
    pub fn f64b(self, key: &str, x: f64) -> Self {
        self.put(key, f64_bits(x))
    }

    pub fn time(self, key: &str, t: SimTime) -> Self {
        self.u64(key, t.as_nanos())
    }

    pub fn seq(self, key: &str, items: Vec<Value>) -> Self {
        self.put(key, Value::Seq(items))
    }

    pub fn build(self) -> Value {
        Value::Map(self.entries)
    }
}

/// Bit-exact `f64` encoding.
pub fn f64_bits(x: f64) -> Value {
    Value::U64(x.to_bits())
}

/// Encode any iterator of items through a per-item encoder.
pub fn seq_of<T>(items: impl IntoIterator<Item = T>, f: impl Fn(T) -> Value) -> Value {
    Value::Seq(items.into_iter().map(f).collect())
}

// -------------------------------------------------------------- reading

/// Fetch a map entry, failing with the field's name.
pub fn get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, CheckpointError> {
    v.get(key)
        .ok_or_else(|| CheckpointError::MissingField(key.to_string()))
}

pub fn as_u64(v: &Value, field: &str) -> Result<u64, CheckpointError> {
    match v {
        Value::U64(n) => Ok(*n),
        Value::I64(n) if *n >= 0 => Ok(*n as u64),
        _ => Err(mismatch(field, "u64")),
    }
}

pub fn as_bool(v: &Value, field: &str) -> Result<bool, CheckpointError> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(mismatch(field, "bool")),
    }
}

pub fn as_str<'a>(v: &'a Value, field: &str) -> Result<&'a str, CheckpointError> {
    v.as_str().ok_or_else(|| mismatch(field, "string"))
}

pub fn as_seq<'a>(v: &'a Value, field: &str) -> Result<&'a [Value], CheckpointError> {
    v.as_seq().ok_or_else(|| mismatch(field, "sequence"))
}

pub fn as_map<'a>(v: &'a Value, field: &str) -> Result<&'a [(String, Value)], CheckpointError> {
    v.as_map().ok_or_else(|| mismatch(field, "map"))
}

/// Decode an `f64` stored as raw bits.
pub fn as_f64_bits(v: &Value, field: &str) -> Result<f64, CheckpointError> {
    as_u64(v, field).map(f64::from_bits)
}

// Keyed convenience forms: `get_*` = `get` + `as_*`.

pub fn get_u64(v: &Value, key: &str) -> Result<u64, CheckpointError> {
    as_u64(get(v, key)?, key)
}

pub fn get_u32(v: &Value, key: &str) -> Result<u32, CheckpointError> {
    narrow(get_u64(v, key)?, key, "u32")
}

pub fn get_u16(v: &Value, key: &str) -> Result<u16, CheckpointError> {
    narrow(get_u64(v, key)?, key, "u16")
}

pub fn get_u8(v: &Value, key: &str) -> Result<u8, CheckpointError> {
    narrow(get_u64(v, key)?, key, "u8")
}

pub fn get_usize(v: &Value, key: &str) -> Result<usize, CheckpointError> {
    narrow(get_u64(v, key)?, key, "usize")
}

pub fn get_bool(v: &Value, key: &str) -> Result<bool, CheckpointError> {
    as_bool(get(v, key)?, key)
}

pub fn get_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, CheckpointError> {
    as_str(get(v, key)?, key)
}

pub fn get_seq<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], CheckpointError> {
    as_seq(get(v, key)?, key)
}

pub fn get_f64b(v: &Value, key: &str) -> Result<f64, CheckpointError> {
    as_f64_bits(get(v, key)?, key)
}

pub fn get_time(v: &Value, key: &str) -> Result<SimTime, CheckpointError> {
    get_u64(v, key).map(SimTime::from_nanos)
}

pub fn get_duration(v: &Value, key: &str) -> Result<SimDuration, CheckpointError> {
    get_u64(v, key).map(SimDuration::from_nanos)
}

fn narrow<T: TryFrom<u64>>(
    n: u64,
    field: &str,
    expected: &'static str,
) -> Result<T, CheckpointError> {
    T::try_from(n).map_err(|_| mismatch(field, expected))
}

fn mismatch(field: &str, expected: &'static str) -> CheckpointError {
    CheckpointError::TypeMismatch {
        field: field.to_string(),
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_builder_round_trips_through_getters() {
        let v = MapBuilder::new()
            .u64("n", 7)
            .bool("flag", true)
            .str("name", "x")
            .f64b("rate", -0.125)
            .time("at", SimTime::from_secs(3))
            .seq("items", vec![Value::U64(1), Value::U64(2)])
            .build();
        assert_eq!(get_u64(&v, "n").unwrap(), 7);
        assert!(get_bool(&v, "flag").unwrap());
        assert_eq!(get_str(&v, "name").unwrap(), "x");
        assert_eq!(
            get_f64b(&v, "rate").unwrap().to_bits(),
            (-0.125f64).to_bits()
        );
        assert_eq!(get_time(&v, "at").unwrap(), SimTime::from_secs(3));
        assert_eq!(get_seq(&v, "items").unwrap().len(), 2);
    }

    #[test]
    fn errors_name_the_field() {
        let v = MapBuilder::new().u64("n", 1).build();
        assert_eq!(
            get_u64(&v, "missing"),
            Err(CheckpointError::MissingField("missing".into()))
        );
        assert_eq!(
            get_bool(&v, "n"),
            Err(CheckpointError::TypeMismatch {
                field: "n".into(),
                expected: "bool"
            })
        );
        assert!(get_u8(&v, "n").is_ok());
        let big = MapBuilder::new().u64("n", 300).build();
        assert!(get_u8(&big, "n").is_err());
    }

    #[test]
    fn f64_bits_survive_json_even_for_nan_and_negatives() {
        for x in [0.0, -0.0, 1.5, -1234.75, f64::NAN, f64::INFINITY] {
            let v = MapBuilder::new().f64b("x", x).build();
            let json = serde_json::to_string(&v).unwrap();
            let back = serde_json::parse_value(&json).unwrap();
            assert_eq!(get_f64b(&back, "x").unwrap().to_bits(), x.to_bits());
        }
    }
}
