//! Erasure patterns, decode errors and recovery planning.
//!
//! Besides decoding, ERMS needs to *plan* recoveries: when a stripe
//! degrades, the Condor substrate schedules a decode task whose I/O cost
//! depends on how many surviving shards must be read. For Reed–Solomon
//! any `k` survivors do; for XOR-based codes Khan et al. (FAST'12, the
//! paper's reference \[10\]) showed reading a well-chosen subset minimises
//! recovery I/O — [`crate::xor`] implements that planner and this module
//! carries the shared vocabulary.

use serde::{Deserialize, Serialize};

/// Why a decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Caller passed the wrong number of shard slots.
    WrongShardCount { expected: usize, actual: usize },
    /// Shards in one stripe must all have the same length.
    ShardLengthMismatch,
    /// Fewer survivors than data shards.
    TooFewShards { needed: usize, available: usize },
    /// The survivor-selection matrix failed to invert (cannot happen for
    /// the Vandermonde-derived generator; kept for defensive decoding).
    SingularDecodeMatrix,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::WrongShardCount { expected, actual } => {
                write!(f, "expected {expected} shards, got {actual}")
            }
            DecodeError::ShardLengthMismatch => write!(f, "shard lengths differ"),
            DecodeError::TooFewShards { needed, available } => {
                write!(
                    f,
                    "need {needed} shards to decode, only {available} survive"
                )
            }
            DecodeError::SingularDecodeMatrix => write!(f, "decode matrix is singular"),
        }
    }
}
impl std::error::Error for DecodeError {}

/// Which shards of a stripe are erased.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErasurePattern {
    total: usize,
    erased: Vec<bool>,
}

impl ErasurePattern {
    pub fn none(total: usize) -> Self {
        ErasurePattern {
            total,
            erased: vec![false; total],
        }
    }

    pub fn from_indices(total: usize, erased: &[usize]) -> Self {
        let mut p = ErasurePattern::none(total);
        for &i in erased {
            assert!(i < total, "erasure index out of range");
            p.erased[i] = true;
        }
        p
    }

    pub fn total(&self) -> usize {
        self.total
    }
    pub fn is_erased(&self, i: usize) -> bool {
        self.erased[i]
    }
    pub fn erase(&mut self, i: usize) {
        self.erased[i] = true;
    }
    pub fn erased_count(&self) -> usize {
        self.erased.iter().filter(|&&e| e).count()
    }
    pub fn erased_indices(&self) -> Vec<usize> {
        (0..self.total).filter(|&i| self.erased[i]).collect()
    }
    pub fn surviving_indices(&self) -> Vec<usize> {
        (0..self.total).filter(|&i| !self.erased[i]).collect()
    }

    /// Can an `RS(k, m)` stripe with this pattern still decode?
    pub fn recoverable_with(&self, k: usize) -> bool {
        self.total - self.erased_count() >= k
    }
}

/// A plan for recovering one erased shard: which survivors to read and
/// the (simulated) bytes of I/O that implies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryPlan {
    /// Index of the shard being rebuilt.
    pub target: usize,
    /// Survivor shard indices that must be read.
    pub read_from: Vec<usize>,
}

impl RecoveryPlan {
    /// Bytes read from survivors to rebuild one shard of `shard_len` bytes.
    pub fn read_bytes(&self, shard_len: u64) -> u64 {
        self.read_from.len() as u64 * shard_len
    }
}

/// Reed–Solomon's (trivial) recovery plan: read any `k` survivors —
/// we pick the lowest-indexed ones, matching what the decoder does.
pub fn rs_recovery_plan(pattern: &ErasurePattern, k: usize, target: usize) -> Option<RecoveryPlan> {
    if !pattern.is_erased(target) || !pattern.recoverable_with(k) {
        return None;
    }
    let read_from: Vec<usize> = pattern.surviving_indices().into_iter().take(k).collect();
    Some(RecoveryPlan { target, read_from })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_accounting() {
        let mut p = ErasurePattern::none(6);
        assert_eq!(p.erased_count(), 0);
        p.erase(1);
        p.erase(4);
        assert!(p.is_erased(1));
        assert!(!p.is_erased(0));
        assert_eq!(p.erased_indices(), vec![1, 4]);
        assert_eq!(p.surviving_indices(), vec![0, 2, 3, 5]);
    }

    #[test]
    fn from_indices_matches_manual() {
        let p = ErasurePattern::from_indices(5, &[0, 3]);
        assert_eq!(p.erased_indices(), vec![0, 3]);
        assert_eq!(p.total(), 5);
    }

    #[test]
    fn recoverability_threshold() {
        // RS(4,2): survive >= 4 of 6
        let p = ErasurePattern::from_indices(6, &[0, 5]);
        assert!(p.recoverable_with(4));
        let p = ErasurePattern::from_indices(6, &[0, 1, 5]);
        assert!(!p.recoverable_with(4));
    }

    #[test]
    fn rs_plan_reads_exactly_k() {
        let p = ErasurePattern::from_indices(6, &[2]);
        let plan = rs_recovery_plan(&p, 4, 2).unwrap();
        assert_eq!(plan.read_from.len(), 4);
        assert!(!plan.read_from.contains(&2));
        assert_eq!(plan.read_bytes(1024), 4096);
    }

    #[test]
    fn rs_plan_refuses_bad_targets() {
        let p = ErasurePattern::from_indices(6, &[2]);
        assert!(rs_recovery_plan(&p, 4, 3).is_none(), "target not erased");
        let p = ErasurePattern::from_indices(6, &[0, 1, 2]);
        assert!(rs_recovery_plan(&p, 4, 0).is_none(), "unrecoverable");
    }

    #[test]
    fn decode_error_display() {
        let e = DecodeError::TooFewShards {
            needed: 3,
            available: 1,
        };
        assert!(e.to_string().contains("need 3"));
    }
}
