//! `erasure` — the erasure-coding substrate ERMS applies to cold data.
//!
//! The paper encodes cold HDFS data with Reed–Solomon, keeping **one**
//! data replica and **four** coding parities (Section IV.B), which cuts
//! the 3× replication overhead while preserving reliability. This crate
//! implements that substrate from scratch:
//!
//! * [`gf256`] — arithmetic in GF(2^8) with log/exp tables,
//! * [`matrix`] — dense matrices over GF(2^8) with inversion,
//! * [`rs`] — a systematic Reed–Solomon coder `RS(k, m)` built from an
//!   extended-Vandermonde generator (any `k` of the `k+m` shards recover
//!   the data),
//! * [`xor`] — a RAID-5-style single-parity code used as the ablation
//!   baseline, plus Khan-style minimal-read recovery planning,
//! * [`recovery`] — erasure patterns, recovery plans and degraded reads,
//! * [`striping`] — mapping HDFS block groups onto code stripes and
//!   computing the storage overhead ERMS reports in Figure 5.
//!
//! Encoding parallelises across shards with Rayon when inputs are large;
//! everything stays deterministic.
//!
//! ```
//! use erasure::ReedSolomon;
//!
//! // the paper's cold tier: RS(10, 4) — any 4 losses recover
//! let rs = ReedSolomon::paper_cold_code();
//! let data: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; 1024]).collect();
//! let parity = rs.encode(&data).unwrap();
//!
//! let mut shards: Vec<Option<Vec<u8>>> =
//!     data.iter().cloned().chain(parity).map(Some).collect();
//! shards[0] = None; // lose a data shard
//! shards[12] = None; // and a parity shard
//! rs.reconstruct(&mut shards).unwrap();
//! assert_eq!(shards[0].as_deref(), Some(&data[0][..]));
//! ```

pub mod gf256;
pub mod matrix;
pub mod recovery;
pub mod rs;
pub mod striping;
pub mod xor;

pub use recovery::{DecodeError, ErasurePattern};
pub use rs::ReedSolomon;
pub use striping::{StripeLayout, StripePlan};
pub use xor::XorCode;
