//! Dense matrices over GF(2^8).
//!
//! Reed–Solomon needs three matrix operations: building a generator,
//! selecting rows for surviving shards, and inverting the selection to
//! recover data. Matrices here are tiny (`(k+m) × k`, k+m ≤ 256), so a
//! straightforward row-major `Vec<u8>` with Gauss–Jordan inversion is
//! both simple and fast.

use crate::gf256;
use std::fmt;

#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    pub fn from_rows(rows: Vec<Vec<u8>>) -> Self {
        assert!(!rows.is_empty());
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        let data = rows.into_iter().flatten().collect();
        Matrix {
            rows: 0,
            cols,
            data,
        }
        .with_fixed_rows()
    }

    fn with_fixed_rows(mut self) -> Self {
        self.rows = self.data.len() / self.cols;
        self
    }

    /// Vandermonde matrix `V[i][j] = (i+1)^j` over GF(256) — used as the
    /// raw material for the systematic RS generator. Using `i+1` (not
    /// `i`) keeps every evaluation point non-zero so the matrix has no
    /// zero rows.
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        assert!(rows <= 255, "GF(256) Vandermonde supports at most 255 rows");
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = gf256::pow((i + 1) as u8, j as u32);
            }
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }
    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn row(&self, i: usize) -> &[u8] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }
    pub fn row_mut(&mut self, i: usize) -> &mut [u8] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A new matrix consisting of the given rows of `self`, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut m = Matrix::zero(indices.len(), self.cols);
        for (out, &i) in indices.iter().enumerate() {
            let src = self.row(i).to_vec();
            m.row_mut(out).copy_from_slice(&src);
        }
        m
    }

    /// Matrix product `self * rhs`.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    let prod = gf256::mul(a, rhs[(k, j)]);
                    out[(i, j)] = gf256::add(out[(i, j)], prod);
                }
            }
        }
        out
    }

    /// Gauss–Jordan inversion. Returns `None` for singular matrices.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // find a pivot
            let pivot = (col..n).find(|&r| a[(r, col)] != 0)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // normalise pivot row
            let p = a[(col, col)];
            let pinv = gf256::inv(p);
            scale_row(a.row_mut(col), pinv);
            scale_row(inv.row_mut(col), pinv);
            // eliminate the column everywhere else
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a[(r, col)];
                if factor == 0 {
                    continue;
                }
                let (arow, apiv) = two_rows(&mut a, r, col);
                gf256::mul_acc_slice(arow, apiv, factor);
                let (irow, ipiv) = two_rows(&mut inv, r, col);
                gf256::mul_acc_slice(irow, ipiv, factor);
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let cols = self.cols;
        let (lo, hi) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(hi * cols);
        head[lo * cols..(lo + 1) * cols].swap_with_slice(&mut tail[..cols]);
    }
}

fn scale_row(row: &mut [u8], c: u8) {
    for x in row.iter_mut() {
        *x = gf256::mul(*x, c);
    }
}

/// Borrow two distinct rows, one mutably and one shared.
fn two_rows(m: &mut Matrix, target: usize, source: usize) -> (&mut [u8], &[u8]) {
    assert_ne!(target, source);
    let cols = m.cols;
    if target < source {
        let (head, tail) = m.data.split_at_mut(source * cols);
        (&mut head[target * cols..(target + 1) * cols], &tail[..cols])
    } else {
        let (head, tail) = m.data.split_at_mut(target * cols);
        (&mut tail[..cols], &head[source * cols..(source + 1) * cols])
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = u8;
    fn index(&self, (r, c): (usize, usize)) -> &u8 {
        &self.data[r * self.cols + c]
    }
}
impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut u8 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:02X?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_times_anything() {
        let m = Matrix::from_rows(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        let i3 = Matrix::identity(3);
        assert_eq!(m.mul(&i3), m);
        let i2 = Matrix::identity(2);
        assert_eq!(i2.mul(&m), m);
    }

    #[test]
    fn inverse_round_trip() {
        let m = Matrix::from_rows(vec![
            vec![56, 23, 98],
            vec![3, 100, 200],
            vec![45, 201, 123],
        ]);
        let inv = m.inverse().expect("invertible");
        assert_eq!(m.mul(&inv), Matrix::identity(3));
        assert_eq!(inv.mul(&m), Matrix::identity(3));
    }

    #[test]
    fn singular_matrix_returns_none() {
        // two identical rows
        let m = Matrix::from_rows(vec![vec![1, 2], vec![1, 2]]);
        assert!(m.inverse().is_none());
        let z = Matrix::zero(2, 2);
        assert!(z.inverse().is_none());
    }

    #[test]
    fn vandermonde_square_is_invertible() {
        for n in 1..=12 {
            let v = Matrix::vandermonde(n, n);
            assert!(v.inverse().is_some(), "n={n}");
        }
    }

    #[test]
    fn select_rows_picks_in_order() {
        let m = Matrix::from_rows(vec![vec![1], vec![2], vec![3], vec![4]]);
        let s = m.select_rows(&[3, 0]);
        assert_eq!(s.row(0), &[4]);
        assert_eq!(s.row(1), &[1]);
    }

    #[test]
    fn swap_rows_works_both_directions() {
        let mut m = Matrix::from_rows(vec![vec![1, 1], vec![2, 2], vec![3, 3]]);
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[3, 3]);
        assert_eq!(m.row(2), &[1, 1]);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m.row(1), &[2, 2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn random_vandermonde_submatrices_invert(
            seed in 0u64..10_000,
        ) {
            // Select any k rows of an extended Vandermonde-derived systematic
            // generator; the classic Vandermonde property guarantees
            // invertibility for the plain Vandermonde itself.
            let k = 4usize;
            let v = Matrix::vandermonde(8, k);
            // pick 4 distinct rows deterministically from seed
            let mut idx: Vec<usize> = (0..8).collect();
            let mut s = seed;
            for i in (1..idx.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = (s >> 33) as usize % (i + 1);
                idx.swap(i, j);
            }
            idx.truncate(k);
            let sub = v.select_rows(&idx);
            prop_assert!(sub.inverse().is_some(), "rows {idx:?} must invert");
        }
    }
}
