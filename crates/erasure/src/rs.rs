//! Systematic Reed–Solomon coding, `RS(k, m)`.
//!
//! A stripe holds `k` data shards and `m` parity shards; **any** `k` of
//! the `k + m` shards reconstruct the stripe, i.e. the code tolerates any
//! `m` erasures. The generator is an extended Vandermonde matrix
//! normalised so its top `k × k` block is the identity (systematic form:
//! data shards are stored verbatim, which is what lets ERMS keep one
//! plain HDFS replica readable without decoding).
//!
//! The paper's cold-data configuration — "a replication factor of one and
//! four coding parities" — is the HDFS-RAID layout: each block of a
//! stripe keeps a single replica and the stripe gains four parity blocks,
//! i.e. `RS(k, 4)` with the HDFS-RAID default stripe width `k = 10`
//! (overhead 1.4× instead of triplication's 3×). Available here as
//! [`ReedSolomon::paper_cold_code`].

use crate::gf256;
use crate::matrix::Matrix;
use crate::recovery::DecodeError;

/// Errors constructing a code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// `k` must be ≥ 1.
    NoDataShards,
    /// `m` must be ≥ 1.
    NoParityShards,
    /// GF(256) Vandermonde construction supports at most 255 total shards.
    TooManyShards { total: usize },
}

impl std::fmt::Display for CodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodeError::NoDataShards => write!(f, "k must be at least 1"),
            CodeError::NoParityShards => write!(f, "m must be at least 1"),
            CodeError::TooManyShards { total } => {
                write!(f, "k+m = {total} exceeds the GF(256) limit of 255")
            }
        }
    }
}
impl std::error::Error for CodeError {}

/// A systematic Reed–Solomon coder.
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    k: usize,
    m: usize,
    /// `(k+m) × k` generator; top block is I_k, bottom `m` rows make parity.
    gen: Matrix,
}

impl ReedSolomon {
    pub fn new(k: usize, m: usize) -> Result<Self, CodeError> {
        if k == 0 {
            return Err(CodeError::NoDataShards);
        }
        if m == 0 {
            return Err(CodeError::NoParityShards);
        }
        if k + m > 255 {
            return Err(CodeError::TooManyShards { total: k + m });
        }
        // Normalise a Vandermonde so the top k×k block becomes identity.
        // Row-selection invertibility survives the column transform, so
        // any k rows of `gen` still invert.
        let v = Matrix::vandermonde(k + m, k);
        let top = v.select_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top.inverse().expect("square Vandermonde is invertible");
        let gen = v.mul(&top_inv);
        debug_assert_eq!(
            gen.select_rows(&(0..k).collect::<Vec<_>>()),
            Matrix::identity(k),
            "generator must be systematic"
        );
        Ok(ReedSolomon { k, m, gen })
    }

    /// The configuration the paper evaluates for cold data: blocks kept
    /// at replication one, four parities per stripe of ten (HDFS-RAID's
    /// default stripe width).
    pub fn paper_cold_code() -> Self {
        ReedSolomon::new(10, 4).expect("RS(10,4) is always valid")
    }

    pub fn data_shards(&self) -> usize {
        self.k
    }
    pub fn parity_shards(&self) -> usize {
        self.m
    }
    pub fn total_shards(&self) -> usize {
        self.k + self.m
    }

    /// Storage overhead factor of the code: total bytes stored per byte
    /// of data (e.g. RS(1,4) → 5.0, RS(10,4) → 1.4, 3× replication → 3.0).
    pub fn overhead_factor(&self) -> f64 {
        (self.k + self.m) as f64 / self.k as f64
    }

    /// Compute the `m` parity shards for `k` equal-length data shards.
    pub fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, DecodeError> {
        self.check_data(data)?;
        let len = data[0].len();
        let rows: Vec<usize> = (self.k..self.k + self.m).collect();
        let encode_row = |&r: &usize| -> Vec<u8> {
            let mut parity = vec![0u8; len];
            for (j, shard) in data.iter().enumerate() {
                gf256::mul_acc_slice(&mut parity, shard, self.gen[(r, j)]);
            }
            parity
        };
        let parities = rows.iter().map(encode_row).collect();
        Ok(parities)
    }

    /// Verify that `shards` (all `k+m`, in order) are a consistent stripe.
    pub fn verify(&self, shards: &[Vec<u8>]) -> Result<bool, DecodeError> {
        if shards.len() != self.total_shards() {
            return Err(DecodeError::WrongShardCount {
                expected: self.total_shards(),
                actual: shards.len(),
            });
        }
        let expected = self.encode(&shards[..self.k])?;
        Ok(expected.iter().zip(&shards[self.k..]).all(|(e, s)| e == s))
    }

    /// Reconstruct every missing shard in place. `shards` has `k+m`
    /// slots; `None` marks an erasure. Fails when fewer than `k` shards
    /// survive.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), DecodeError> {
        if shards.len() != self.total_shards() {
            return Err(DecodeError::WrongShardCount {
                expected: self.total_shards(),
                actual: shards.len(),
            });
        }
        let present: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_some()).collect();
        if present.len() < self.k {
            return Err(DecodeError::TooFewShards {
                needed: self.k,
                available: present.len(),
            });
        }
        let missing: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_none()).collect();
        if missing.is_empty() {
            return Ok(());
        }
        let len = shards[present[0]].as_ref().expect("present shard").len();
        for &i in &present {
            let l = shards[i].as_ref().expect("present shard").len();
            if l != len {
                return Err(DecodeError::ShardLengthMismatch);
            }
        }

        // Decode matrix: rows of the generator for the first k surviving
        // shards, inverted, gives data = D * survivors.
        let use_rows: Vec<usize> = present.iter().copied().take(self.k).collect();
        let sub = self.gen.select_rows(&use_rows);
        let dec = sub.inverse().ok_or(DecodeError::SingularDecodeMatrix)?;

        // Recover missing *data* shards first.
        let survivors: Vec<&Vec<u8>> = use_rows
            .iter()
            .map(|&i| shards[i].as_ref().expect("survivor"))
            .collect();
        let mut recovered_data: Vec<(usize, Vec<u8>)> = Vec::new();
        for &mi in missing.iter().filter(|&&i| i < self.k) {
            let mut out = vec![0u8; len];
            for (c, surv) in survivors.iter().enumerate() {
                gf256::mul_acc_slice(&mut out, surv, dec[(mi, c)]);
            }
            recovered_data.push((mi, out));
        }
        for (i, shard) in recovered_data {
            shards[i] = Some(shard);
        }

        // With all data shards live, re-encode any missing parity rows.
        let data: Vec<Vec<u8>> = (0..self.k)
            .map(|i| shards[i].as_ref().expect("data shard present").clone())
            .collect();
        for &mi in missing.iter().filter(|&&i| i >= self.k) {
            let mut parity = vec![0u8; len];
            for (j, shard) in data.iter().enumerate() {
                gf256::mul_acc_slice(&mut parity, shard, self.gen[(mi, j)]);
            }
            shards[mi] = Some(parity);
        }
        Ok(())
    }

    /// Incrementally update the parity shards after data shard
    /// `shard_index` changed from `old` to `new`, without touching the
    /// other `k-1` data shards.
    ///
    /// Linear-code identity: `parity_j += g[j][i]·(old ⊕ new)`. This is
    /// what lets a cold-tier update rewrite one block plus `m` parities
    /// instead of re-reading the whole stripe.
    pub fn update_parity(
        &self,
        parities: &mut [Vec<u8>],
        shard_index: usize,
        old: &[u8],
        new: &[u8],
    ) -> Result<(), DecodeError> {
        if parities.len() != self.m {
            return Err(DecodeError::WrongShardCount {
                expected: self.m,
                actual: parities.len(),
            });
        }
        if shard_index >= self.k {
            return Err(DecodeError::WrongShardCount {
                expected: self.k,
                actual: shard_index,
            });
        }
        let len = old.len();
        if new.len() != len || parities.iter().any(|p| p.len() != len) {
            return Err(DecodeError::ShardLengthMismatch);
        }
        let delta: Vec<u8> = old.iter().zip(new).map(|(&a, &b)| a ^ b).collect();
        for (j, parity) in parities.iter_mut().enumerate() {
            let coeff = self.gen[(self.k + j, shard_index)];
            gf256::mul_acc_slice(parity, &delta, coeff);
        }
        Ok(())
    }

    /// Split a byte payload into `k` zero-padded equal shards.
    pub fn split(&self, payload: &[u8]) -> Vec<Vec<u8>> {
        let shard_len = payload.len().div_ceil(self.k).max(1);
        (0..self.k)
            .map(|i| {
                let start = (i * shard_len).min(payload.len());
                let end = ((i + 1) * shard_len).min(payload.len());
                let mut shard = payload[start..end].to_vec();
                shard.resize(shard_len, 0);
                shard
            })
            .collect()
    }

    /// Reassemble the payload from data shards, trimming padding to
    /// `payload_len`.
    pub fn join(&self, data: &[Vec<u8>], payload_len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(payload_len);
        for shard in data {
            out.extend_from_slice(shard);
        }
        out.truncate(payload_len);
        out
    }

    fn check_data(&self, data: &[Vec<u8>]) -> Result<(), DecodeError> {
        if data.len() != self.k {
            return Err(DecodeError::WrongShardCount {
                expected: self.k,
                actual: data.len(),
            });
        }
        let len = data[0].len();
        if data.iter().any(|s| s.len() != len) {
            return Err(DecodeError::ShardLengthMismatch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| {
                        let x = seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add((i * len + j) as u64);
                        (x >> 32) as u8
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn construction_validates_params() {
        assert_eq!(ReedSolomon::new(0, 4).unwrap_err(), CodeError::NoDataShards);
        assert_eq!(
            ReedSolomon::new(4, 0).unwrap_err(),
            CodeError::NoParityShards
        );
        assert!(matches!(
            ReedSolomon::new(200, 100),
            Err(CodeError::TooManyShards { total: 300 })
        ));
        assert!(ReedSolomon::new(10, 4).is_ok());
    }

    #[test]
    fn paper_cold_code_shape() {
        let rs = ReedSolomon::paper_cold_code();
        assert_eq!(rs.data_shards(), 10);
        assert_eq!(rs.parity_shards(), 4);
        assert!((rs.overhead_factor() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn encode_verify_round_trip() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 512, 1);
        let parity = rs.encode(&data).unwrap();
        assert_eq!(parity.len(), 2);
        let mut all = data.clone();
        all.extend(parity);
        assert!(rs.verify(&all).unwrap());
        // corrupt one byte → verification fails
        all[5][100] ^= 0xFF;
        assert!(!rs.verify(&all).unwrap());
    }

    #[test]
    fn reconstruct_all_single_erasures() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let data = sample_data(5, 256, 2);
        let parity = rs.encode(&data).unwrap();
        let mut full: Vec<Vec<u8>> = data.clone();
        full.extend(parity);
        for victim in 0..8 {
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            shards[victim] = None;
            rs.reconstruct(&mut shards).unwrap();
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.as_ref().unwrap(), &full[i], "victim {victim} shard {i}");
            }
        }
    }

    #[test]
    fn reconstruct_max_erasures() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        let data = sample_data(4, 128, 3);
        let parity = rs.encode(&data).unwrap();
        let mut full = data.clone();
        full.extend(parity);
        // lose 3 shards: two data + one parity
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        shards[0] = None;
        shards[2] = None;
        shards[5] = None;
        rs.reconstruct(&mut shards).unwrap();
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.as_ref().unwrap(), &full[i]);
        }
    }

    #[test]
    fn too_many_erasures_fails() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = sample_data(3, 64, 4);
        let parity = rs.encode(&data).unwrap();
        let mut full = data;
        full.extend(parity);
        let mut shards: Vec<Option<Vec<u8>>> = full.into_iter().map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        shards[3] = None;
        assert!(matches!(
            rs.reconstruct(&mut shards),
            Err(DecodeError::TooFewShards {
                needed: 3,
                available: 2
            })
        ));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        let data = vec![vec![1, 2, 3], vec![4, 5]];
        assert!(matches!(
            rs.encode(&data),
            Err(DecodeError::ShardLengthMismatch)
        ));
    }

    #[test]
    fn split_join_round_trip() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        for len in [0usize, 1, 3, 4, 17, 1024, 1000] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 7 % 251) as u8).collect();
            let shards = rs.split(&payload);
            assert_eq!(shards.len(), 4);
            let l0 = shards[0].len();
            assert!(shards.iter().all(|s| s.len() == l0));
            let back = rs.join(&shards, payload.len());
            assert_eq!(back, payload, "len {len}");
        }
    }

    #[test]
    fn rs_1_4_protects_a_block() {
        // Degenerate single-block stripe: one data replica, four parities;
        // losing the data copy plus up to 3 parities still recovers.
        let rs = ReedSolomon::new(1, 4).unwrap();
        let block = sample_data(1, 4096, 5);
        let parity = rs.encode(&block).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = std::iter::once(block[0].clone())
            .chain(parity)
            .map(Some)
            .collect();
        shards[0] = None; // lose the only data replica
        shards[1] = None;
        shards[3] = None;
        rs.reconstruct(&mut shards).unwrap();
        assert_eq!(shards[0].as_ref().unwrap(), &block[0]);
    }

    #[test]
    fn incremental_parity_update_matches_reencode() {
        let rs = ReedSolomon::new(6, 3).unwrap();
        let mut data = sample_data(6, 512, 9);
        let mut parity = rs.encode(&data).unwrap();
        // mutate shard 2
        let old = data[2].clone();
        let new: Vec<u8> = old.iter().map(|&b| b.wrapping_add(13)).collect();
        rs.update_parity(&mut parity, 2, &old, &new).unwrap();
        data[2] = new;
        let fresh = rs.encode(&data).unwrap();
        assert_eq!(parity, fresh, "incremental update must equal re-encode");
    }

    #[test]
    fn incremental_update_validates_inputs() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = sample_data(3, 16, 1);
        let mut parity = rs.encode(&data).unwrap();
        assert!(matches!(
            rs.update_parity(&mut parity[..1].to_vec(), 0, &data[0], &data[0]),
            Err(DecodeError::WrongShardCount { .. })
        ));
        assert!(matches!(
            rs.update_parity(&mut parity, 9, &data[0], &data[0]),
            Err(DecodeError::WrongShardCount { .. })
        ));
        let short = vec![0u8; 8];
        assert!(matches!(
            rs.update_parity(&mut parity, 0, &data[0], &short),
            Err(DecodeError::ShardLengthMismatch)
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn incremental_updates_compose(
            seed in 0u64..10_000,
            k in 2usize..7,
            m in 1usize..4,
            len in 1usize..128,
        ) {
            // several successive single-shard updates stay consistent
            let rs = ReedSolomon::new(k, m).unwrap();
            let mut data = sample_data(k, len, seed);
            let mut parity = rs.encode(&data).unwrap();
            let mut s = seed;
            for step in 0..4u64 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(step);
                let idx = (s >> 33) as usize % k;
                let old = data[idx].clone();
                let new: Vec<u8> = old.iter().map(|&b| b ^ (s as u8 | 1)).collect();
                rs.update_parity(&mut parity, idx, &old, &new).unwrap();
                data[idx] = new;
            }
            let fresh = rs.encode(&data).unwrap();
            prop_assert_eq!(parity, fresh);
        }

        #[test]
        fn any_k_of_n_reconstructs(
            seed in 0u64..1_000_000,
            k in 1usize..8,
            m in 1usize..5,
            len in 1usize..300,
        ) {
            let rs = ReedSolomon::new(k, m).unwrap();
            let data = sample_data(k, len, seed);
            let parity = rs.encode(&data).unwrap();
            let mut full = data.clone();
            full.extend(parity);

            // knock out m shards chosen pseudo-randomly
            let mut idx: Vec<usize> = (0..k + m).collect();
            let mut s = seed;
            for i in (1..idx.len()).rev() {
                s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                let j = (s >> 33) as usize % (i + 1);
                idx.swap(i, j);
            }
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            for &victim in idx.iter().take(m) {
                shards[victim] = None;
            }
            rs.reconstruct(&mut shards).unwrap();
            for (i, sh) in shards.iter().enumerate() {
                prop_assert_eq!(sh.as_ref().unwrap(), &full[i]);
            }
        }

        #[test]
        fn corrupt_shards_are_detected_then_verified_repair_round_trips(
            seed in 0u64..1_000_000,
            k in 1usize..8,
            m in 1usize..5,
            len in 1usize..300,
            corruptions in 1usize..5,
        ) {
            // the silent-corruption pipeline in miniature: up to m shards
            // rot in place, verify() catches the stripe, and dropping the
            // rotten shards reconstructs the original bytes exactly
            let rs = ReedSolomon::new(k, m).unwrap();
            let data = sample_data(k, len, seed);
            let parity = rs.encode(&data).unwrap();
            let mut full = data.clone();
            full.extend(parity);

            let mut idx: Vec<usize> = (0..k + m).collect();
            let mut s = seed ^ 0x9e3779b97f4a7c15;
            for i in (1..idx.len()).rev() {
                s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                let j = (s >> 33) as usize % (i + 1);
                idx.swap(i, j);
            }
            let rot: Vec<usize> = idx.iter().copied().take(corruptions.min(m)).collect();
            let mut stored = full.clone();
            for &victim in &rot {
                s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                let byte = (s >> 33) as usize % len;
                stored[victim][byte] ^= 0xA5; // silent bit rot
            }

            prop_assert!(!rs.verify(&stored).unwrap(), "corruption must be detected");

            let mut shards: Vec<Option<Vec<u8>>> = stored.into_iter().map(Some).collect();
            for &victim in &rot {
                shards[victim] = None; // quarantine what the scrub flagged
            }
            rs.reconstruct(&mut shards).unwrap();
            let repaired: Vec<Vec<u8>> = shards.into_iter().map(Option::unwrap).collect();
            prop_assert_eq!(&repaired, &full, "repair must be byte-identical");
            prop_assert!(rs.verify(&repaired).unwrap(), "repaired stripe re-verifies");
        }
    }
}
