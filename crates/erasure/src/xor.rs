//! XOR (RAID-5-style) single-parity coding and minimal-read recovery.
//!
//! DiskReduce (the paper's reference \[9\]) applied "RAID-class" redundancy
//! to HDFS; the simplest instance is one XOR parity per stripe, tolerating
//! a single erasure. ERMS uses Reed–Solomon in production, but the XOR
//! code serves as (a) the ablation baseline for the storage/reliability
//! trade-off and (b) the host for Khan-style recovery planning
//! (reference \[10\]): for XOR-based codes the set of symbols read during
//! recovery can be minimised; with a single parity the optimal plan is
//! forced, but the planner interface mirrors the general algorithm —
//! enumerate decoding equations, pick the one touching the fewest unread
//! symbols.

use crate::recovery::{DecodeError, ErasurePattern, RecoveryPlan};

/// A `k + 1` single-parity XOR code.
#[derive(Clone, Debug)]
pub struct XorCode {
    k: usize,
}

impl XorCode {
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one data shard");
        XorCode { k }
    }

    pub fn data_shards(&self) -> usize {
        self.k
    }
    pub fn total_shards(&self) -> usize {
        self.k + 1
    }
    pub fn overhead_factor(&self) -> f64 {
        (self.k + 1) as f64 / self.k as f64
    }

    /// Compute the parity shard.
    pub fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<u8>, DecodeError> {
        if data.len() != self.k {
            return Err(DecodeError::WrongShardCount {
                expected: self.k,
                actual: data.len(),
            });
        }
        let len = data[0].len();
        if data.iter().any(|s| s.len() != len) {
            return Err(DecodeError::ShardLengthMismatch);
        }
        let mut parity = vec![0u8; len];
        for shard in data {
            for (p, &b) in parity.iter_mut().zip(shard) {
                *p ^= b;
            }
        }
        Ok(parity)
    }

    /// Rebuild the single missing shard (data or parity) in place.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), DecodeError> {
        if shards.len() != self.total_shards() {
            return Err(DecodeError::WrongShardCount {
                expected: self.total_shards(),
                actual: shards.len(),
            });
        }
        let missing: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_none()).collect();
        match missing.len() {
            0 => Ok(()),
            1 => {
                let target = missing[0];
                let len = shards
                    .iter()
                    .flatten()
                    .map(|s| s.len())
                    .next()
                    .expect("at least one survivor");
                if shards.iter().flatten().any(|s| s.len() != len) {
                    return Err(DecodeError::ShardLengthMismatch);
                }
                let mut out = vec![0u8; len];
                for s in shards.iter().flatten() {
                    for (o, &b) in out.iter_mut().zip(s) {
                        *o ^= b;
                    }
                }
                shards[target] = Some(out);
                Ok(())
            }
            n => Err(DecodeError::TooFewShards {
                needed: self.k,
                available: self.total_shards() - n,
            }),
        }
    }

    /// Khan-style minimal-read recovery plan for one erased shard.
    ///
    /// Every decoding equation of a single-parity code is the full XOR of
    /// the other `k` shards, so the minimum read set is exactly the
    /// survivors — the planner's value is the shared shape with RS plans
    /// plus the *degraded-read* optimisation below.
    pub fn recovery_plan(&self, pattern: &ErasurePattern, target: usize) -> Option<RecoveryPlan> {
        if pattern.total() != self.total_shards()
            || !pattern.is_erased(target)
            || pattern.erased_count() > 1
        {
            return None;
        }
        Some(RecoveryPlan {
            target,
            read_from: pattern.surviving_indices(),
        })
    }

    /// Plan a *degraded read* of data shard `want`: if it survives, read
    /// just it (1 shard of I/O); if erased, fall back to full recovery.
    /// Returns the shard indices to read.
    pub fn degraded_read_plan(&self, pattern: &ErasurePattern, want: usize) -> Option<Vec<usize>> {
        assert!(want < self.k, "degraded reads target data shards");
        if !pattern.is_erased(want) {
            return Some(vec![want]);
        }
        self.recovery_plan(pattern, want).map(|p| p.read_from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| ((i * 31 + j * 7) % 256) as u8).collect())
            .collect()
    }

    #[test]
    fn parity_is_xor_of_data() {
        let code = XorCode::new(3);
        let d = data(3, 16);
        let p = code.encode(&d).unwrap();
        for j in 0..16 {
            assert_eq!(p[j], d[0][j] ^ d[1][j] ^ d[2][j]);
        }
    }

    #[test]
    fn single_erasure_recovers_anywhere() {
        let code = XorCode::new(4);
        let d = data(4, 64);
        let p = code.encode(&d).unwrap();
        let mut full: Vec<Vec<u8>> = d.clone();
        full.push(p);
        for victim in 0..5 {
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            shards[victim] = None;
            code.reconstruct(&mut shards).unwrap();
            assert_eq!(shards[victim].as_ref().unwrap(), &full[victim]);
        }
    }

    #[test]
    fn double_erasure_fails() {
        let code = XorCode::new(3);
        let d = data(3, 8);
        let p = code.encode(&d).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> =
            d.into_iter().chain(std::iter::once(p)).map(Some).collect();
        shards[0] = None;
        shards[2] = None;
        assert!(matches!(
            code.reconstruct(&mut shards),
            Err(DecodeError::TooFewShards { .. })
        ));
    }

    #[test]
    fn overhead_vs_replication() {
        // RAID-5 over 8 shards costs 1.125x; triplication costs 3x.
        assert!((XorCode::new(8).overhead_factor() - 1.125).abs() < 1e-12);
    }

    #[test]
    fn recovery_plan_reads_all_survivors() {
        let code = XorCode::new(4);
        let p = ErasurePattern::from_indices(5, &[2]);
        let plan = code.recovery_plan(&p, 2).unwrap();
        assert_eq!(plan.read_from, vec![0, 1, 3, 4]);
        assert!(code.recovery_plan(&p, 1).is_none());
    }

    #[test]
    fn degraded_read_prefers_direct() {
        let code = XorCode::new(4);
        let healthy = ErasurePattern::none(5);
        assert_eq!(code.degraded_read_plan(&healthy, 1), Some(vec![1]));
        let degraded = ErasurePattern::from_indices(5, &[1]);
        let reads = code.degraded_read_plan(&degraded, 1).unwrap();
        assert_eq!(reads.len(), 4, "must touch every survivor");
        let dead = ErasurePattern::from_indices(5, &[1, 3]);
        assert_eq!(code.degraded_read_plan(&dead, 1), None);
    }

    proptest! {
        #[test]
        fn xor_round_trip(k in 1usize..8, len in 1usize..128, victim_seed: u64) {
            let code = XorCode::new(k);
            let d = data(k, len);
            let p = code.encode(&d).unwrap();
            let mut full = d;
            full.push(p);
            let victim = (victim_seed % (k as u64 + 1)) as usize;
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            shards[victim] = None;
            code.reconstruct(&mut shards).unwrap();
            prop_assert_eq!(shards[victim].as_ref().unwrap(), &full[victim]);
        }
    }
}
