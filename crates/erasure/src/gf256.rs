//! Arithmetic in GF(2^8).
//!
//! The field is constructed over the AES polynomial
//! `x^8 + x^4 + x^3 + x + 1` (0x11B) with generator 3. Multiplication and
//! division go through 256-entry log/exp tables built once at startup;
//! the tables make shard-sized multiply-accumulate loops a table lookup
//! plus an add, which is what keeps software Reed–Solomon fast.

use std::sync::OnceLock;

/// Reduction polynomial (without the x^8 term) — AES's 0x1B.
const POLY: u16 = 0x11B;
/// A generator of the multiplicative group.
const GENERATOR: u8 = 3;

struct Tables {
    /// exp[i] = g^i for i in 0..255, extended to 510 entries so
    /// `exp[log a + log b]` needs no modular reduction.
    exp: [u8; 512],
    /// log[a] for a in 1..=255; log[0] is unused (set to 0).
    log: [u16; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u16; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u16;
            // multiply x by the generator in GF(2^8)
            let mut next = 0u16;
            let mut a = x;
            let mut b = GENERATOR as u16;
            while b != 0 {
                if b & 1 != 0 {
                    next ^= a;
                }
                a <<= 1;
                if a & 0x100 != 0 {
                    a ^= POLY;
                }
                b >>= 1;
            }
            x = next;
        }
        debug_assert_eq!(x, 1, "generator must have order 255");
        for i in 255..512usize {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Field addition (= subtraction = XOR).
#[inline(always)]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication.
#[inline(always)]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Multiplicative inverse. Panics on zero.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(256)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Field division `a / b`. Panics when `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// Exponentiation `a^n`.
pub fn pow(a: u8, mut n: u32) -> u8 {
    if a == 0 {
        return if n == 0 { 1 } else { 0 };
    }
    n %= 255;
    let t = tables();
    t.exp[(t.log[a as usize] as u32 * n % 255) as usize]
}

/// `dst[i] ^= c * src[i]` — the inner loop of every encode/decode.
///
/// Specialises `c == 1` to plain XOR: that case dominates systematic
/// encodes and parity checks.
pub fn mul_acc_slice(dst: &mut [u8], src: &[u8], c: u8) {
    debug_assert_eq!(dst.len(), src.len());
    match c {
        0 => {}
        1 => {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d ^= s;
            }
        }
        _ => {
            let t = tables();
            let logc = t.log[c as usize] as usize;
            for (d, &s) in dst.iter_mut().zip(src) {
                if s != 0 {
                    *d ^= t.exp[logc + t.log[s as usize] as usize];
                }
            }
        }
    }
}

/// `dst[i] = c * src[i]`.
pub fn mul_slice(dst: &mut [u8], src: &[u8], c: u8) {
    debug_assert_eq!(dst.len(), src.len());
    dst.fill(0);
    mul_acc_slice(dst, src, c);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_is_xor() {
        assert_eq!(add(0x53, 0xCA), 0x99);
        assert_eq!(add(7, 7), 0);
    }

    #[test]
    fn known_products() {
        // 0x53 * 0xCA = 0x01 in the AES field — classic test vector.
        assert_eq!(mul(0x53, 0xCA), 0x01);
        assert_eq!(mul(2, 3), 6);
        assert_eq!(mul(0, 0xFF), 0);
        assert_eq!(mul(1, 0xAB), 0xAB);
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
        }
    }

    #[test]
    #[should_panic(expected = "zero has no inverse")]
    fn zero_has_no_inverse() {
        inv(0);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in [1u8, 2, 3, 0x1D, 0xFF] {
            let mut acc = 1u8;
            for n in 0..20u32 {
                assert_eq!(pow(a, n), acc, "a={a} n={n}");
                acc = mul(acc, a);
            }
        }
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
    }

    #[test]
    fn generator_has_full_order() {
        let mut seen = [false; 256];
        let mut x = 1u8;
        for _ in 0..255 {
            assert!(!seen[x as usize], "generator order < 255");
            seen[x as usize] = true;
            x = mul(x, GENERATOR);
        }
        assert_eq!(x, 1);
    }

    #[test]
    fn slice_kernels() {
        let src = [1u8, 2, 3, 250];
        let mut dst = [0u8; 4];
        mul_slice(&mut dst, &src, 2);
        for i in 0..4 {
            assert_eq!(dst[i], mul(src[i], 2));
        }
        mul_acc_slice(&mut dst, &src, 1);
        for i in 0..4 {
            assert_eq!(dst[i], mul(src[i], 2) ^ src[i]);
        }
        // c = 0 leaves dst untouched
        let before = dst;
        mul_acc_slice(&mut dst, &src, 0);
        assert_eq!(dst, before);
    }

    proptest! {
        #[test]
        fn mul_commutative_associative(a: u8, b: u8, c: u8) {
            prop_assert_eq!(mul(a, b), mul(b, a));
            prop_assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
        }

        #[test]
        fn distributive(a: u8, b: u8, c: u8) {
            prop_assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        }

        #[test]
        fn div_inverts_mul(a: u8, b in 1u8..=255) {
            prop_assert_eq!(div(mul(a, b), b), a);
        }
    }
}
