//! Mapping HDFS block groups onto code stripes.
//!
//! When ERMS demotes a cold file, its blocks stop being triplicated:
//! they are grouped into stripes of `k` blocks, `m` parity blocks are
//! generated per stripe, and every block's replication factor drops to
//! one. This module computes that layout and the storage deltas that the
//! Figure 5 harness plots. It is deliberately byte-free — the simulator
//! accounts sizes, while [`crate::rs`] does real byte-level coding in
//! tests and benches.

use serde::{Deserialize, Serialize};

/// Static shape of a stripe code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeLayout {
    /// Data blocks per stripe.
    pub k: usize,
    /// Parity blocks per stripe.
    pub m: usize,
}

impl StripeLayout {
    pub fn new(k: usize, m: usize) -> Self {
        assert!(k >= 1 && m >= 1);
        StripeLayout { k, m }
    }

    /// The paper's cold-data layout (HDFS-RAID defaults).
    pub fn paper_default() -> Self {
        StripeLayout::new(10, 4)
    }

    /// Storage multiplier relative to raw data size.
    pub fn overhead_factor(self) -> f64 {
        (self.k + self.m) as f64 / self.k as f64
    }

    /// Erasures tolerated per stripe.
    pub fn fault_tolerance(self) -> usize {
        self.m
    }
}

/// One stripe of a file: which block indices it covers and how many
/// parity blocks it adds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stripe {
    /// Index of this stripe within the file.
    pub index: usize,
    /// File-relative block indices covered (the final stripe may be short).
    pub blocks: Vec<usize>,
    /// Parity blocks generated for this stripe.
    pub parity_count: usize,
}

/// The complete striping of a file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripePlan {
    pub layout: StripeLayout,
    pub stripes: Vec<Stripe>,
    pub block_size: u64,
}

impl StripePlan {
    /// Plan the striping of a file with `num_blocks` blocks.
    ///
    /// Short final stripes keep the full `m` parities (as HDFS-RAID
    /// does), so small files pay proportionally more overhead — the
    /// effect is visible in the Figure 5 tail and must not be hidden.
    pub fn for_file(num_blocks: usize, block_size: u64, layout: StripeLayout) -> Self {
        let mut stripes = Vec::with_capacity(num_blocks.div_ceil(layout.k));
        let mut start = 0usize;
        let mut index = 0usize;
        while start < num_blocks {
            let end = (start + layout.k).min(num_blocks);
            stripes.push(Stripe {
                index,
                blocks: (start..end).collect(),
                parity_count: layout.m,
            });
            start = end;
            index += 1;
        }
        StripePlan {
            layout,
            stripes,
            block_size,
        }
    }

    pub fn num_stripes(&self) -> usize {
        self.stripes.len()
    }

    pub fn total_parity_blocks(&self) -> usize {
        self.stripes.iter().map(|s| s.parity_count).sum()
    }

    /// Bytes stored once the file is encoded: one replica per data block
    /// plus all parity blocks.
    pub fn encoded_bytes(&self, num_blocks: usize) -> u64 {
        (num_blocks as u64 + self.total_parity_blocks() as u64) * self.block_size
    }

    /// Bytes stored under plain `r`-way replication.
    pub fn replicated_bytes(&self, num_blocks: usize, r: usize) -> u64 {
        num_blocks as u64 * r as u64 * self.block_size
    }

    /// Storage saved by encoding relative to `r`-way replication
    /// (positive = encoding is smaller).
    pub fn savings_vs_replication(&self, num_blocks: usize, r: usize) -> i64 {
        self.replicated_bytes(num_blocks, r) as i64 - self.encoded_bytes(num_blocks) as i64
    }

    /// The stripe covering file-relative block index `b`, if any.
    pub fn stripe_of_block(&self, b: usize) -> Option<&Stripe> {
        let idx = b / self.layout.k;
        self.stripes.get(idx).filter(|s| s.blocks.contains(&b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_multiple_of_k() {
        let plan = StripePlan::for_file(20, 64, StripeLayout::new(10, 4));
        assert_eq!(plan.num_stripes(), 2);
        assert_eq!(plan.total_parity_blocks(), 8);
        assert_eq!(plan.stripes[0].blocks, (0..10).collect::<Vec<_>>());
        assert_eq!(plan.stripes[1].blocks, (10..20).collect::<Vec<_>>());
    }

    #[test]
    fn short_final_stripe() {
        let plan = StripePlan::for_file(13, 64, StripeLayout::new(10, 4));
        assert_eq!(plan.num_stripes(), 2);
        assert_eq!(plan.stripes[1].blocks.len(), 3);
        assert_eq!(plan.stripes[1].parity_count, 4);
    }

    #[test]
    fn empty_file_has_no_stripes() {
        let plan = StripePlan::for_file(0, 64, StripeLayout::paper_default());
        assert_eq!(plan.num_stripes(), 0);
        assert_eq!(plan.encoded_bytes(0), 0);
    }

    #[test]
    fn paper_layout_saves_storage_vs_triplication() {
        let layout = StripeLayout::paper_default();
        let plan = StripePlan::for_file(100, 64 << 20, layout);
        let encoded = plan.encoded_bytes(100);
        let replicated = plan.replicated_bytes(100, 3);
        assert!(encoded < replicated);
        // 100 blocks → 10 stripes → 40 parities → 140 blocks vs 300.
        assert_eq!(encoded, 140 * (64 << 20));
        assert_eq!(
            plan.savings_vs_replication(100, 3),
            (300 - 140) * (64 << 20)
        );
        assert!((layout.overhead_factor() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn tiny_files_pay_more_overhead() {
        // one block → 1 stripe → 4 parities → 5x, worse than 3x; the
        // model must expose this, ERMS policy decides per-file.
        let plan = StripePlan::for_file(1, 64, StripeLayout::paper_default());
        assert!(plan.encoded_bytes(1) > plan.replicated_bytes(1, 3));
        assert!(plan.savings_vs_replication(1, 3) < 0);
    }

    #[test]
    fn stripe_of_block_lookup() {
        let plan = StripePlan::for_file(25, 64, StripeLayout::new(10, 4));
        assert_eq!(plan.stripe_of_block(0).unwrap().index, 0);
        assert_eq!(plan.stripe_of_block(9).unwrap().index, 0);
        assert_eq!(plan.stripe_of_block(10).unwrap().index, 1);
        assert_eq!(plan.stripe_of_block(24).unwrap().index, 2);
        assert!(plan.stripe_of_block(25).is_none());
    }

    proptest! {
        #[test]
        fn every_block_in_exactly_one_stripe(
            blocks in 1usize..500,
            k in 1usize..20,
            m in 1usize..6,
        ) {
            let plan = StripePlan::for_file(blocks, 64, StripeLayout::new(k, m));
            let mut seen = vec![0u32; blocks];
            for s in &plan.stripes {
                prop_assert!(s.blocks.len() <= k);
                for &b in &s.blocks {
                    seen[b] += 1;
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1));
            // stripe count is ceil(blocks/k)
            prop_assert_eq!(plan.num_stripes(), blocks.div_ceil(k));
        }
    }
}
