//! Quickstart: stand up a simulated HDFS cluster, attach ERMS, make a
//! file hot, and watch the replication factor follow demand.
//!
//! ```text
//! cargo run -p erms --example quickstart
//! ```

use erms::prelude::*;
use hdfs_sim::topology::{ClientId, Endpoint};
use simcore::units::MB;

fn main() {
    // the paper's testbed shape: 18 datanodes, 3 racks, 64 MB blocks
    let mut cluster = ClusterSim::new(
        ClusterConfig::paper_testbed(),
        Box::new(ErmsPlacement::new()), // Algorithm 1 placement
    );

    // ERMS with the paper's deployment: nodes 10..18 standby, τ_M = 8
    let mut thresholds = Thresholds::calibrate(8.0);
    thresholds.window = SimDuration::from_secs(120);
    let cfg = ErmsConfig::builder()
        .thresholds(thresholds)
        .standby((10..18).map(NodeId))
        .build()
        .expect("valid config");
    let mut erms = ErmsManager::new(cfg, &mut cluster).expect("valid manager");
    println!(
        "cluster up: {} serving nodes, {} standby (powered off)",
        cluster.serving_nodes(),
        erms.model().standby_nodes().count()
    );

    // a normal file: default triplication
    let file = cluster
        .create_file("/data/report.parquet", 64 * MB, 3, None)
        .expect("fresh namespace");
    let block = cluster.namespace().file(file).expect("created").blocks[0];
    println!(
        "created /data/report.parquet with {} replicas",
        cluster.blockmap().replica_count(block)
    );

    // flash crowds keep hitting the file while the control loop runs:
    // judge -> condor -> cluster, once per round
    let mut peak = 3usize;
    let mut peak_on_standby = 0usize;
    for round in 0..6 {
        for i in 0..30 {
            cluster
                .open_read(
                    Endpoint::Client(ClientId(round * 100 + i)),
                    "/data/report.parquet",
                )
                .expect("file exists");
        }
        cluster.run_until_quiescent();
        let now = cluster.now();
        let report = erms.tick(&mut cluster, now);
        cluster.run_until(cluster.now() + SimDuration::from_secs(45));
        cluster.run_until_quiescent();
        let r = cluster.blockmap().replica_count(block);
        if r > peak {
            peak = r;
            peak_on_standby = (10..18)
                .map(NodeId)
                .filter(|&n| cluster.node_holds(n, block))
                .count();
        }
        println!(
            "round {round}: hot={} tasks={} commissioned={:?} replicas={r}",
            report.hot, report.tasks_submitted, report.commissioned
        );
    }
    println!(
        "peak under load: {peak} replicas ({peak_on_standby} parked on commissioned standby nodes)"
    );

    // traffic stops: the file cools, extras are shed when idle, drained
    // standby nodes power back off
    for _ in 0..10 {
        let now = cluster.now();
        erms.tick(&mut cluster, now);
        cluster.run_until(cluster.now() + SimDuration::from_secs(60));
        cluster.run_until_quiescent();
    }
    let settled = cluster.blockmap().replica_count(block);
    println!(
        "after cooling: {settled} replicas, {} serving nodes, journal has {} task events",
        cluster.serving_nodes(),
        erms.condor().journal().len()
    );
    assert!(peak > 3, "demo expects the file to be boosted under load");
    assert_eq!(settled, 3, "extras are shed once the file cools");
}
