//! Trace replay: synthesise a SWIM-like MapReduce workload and replay it
//! under the Fair scheduler with ERMS managing replication live.
//!
//! This is a miniature of the paper's Figure 3 experiment, runnable in a
//! few seconds:
//!
//! ```text
//! cargo run -p erms --example trace_replay --release
//! ```

use erms::prelude::*;
use mapred::{FairScheduler, JobSpec, MapReduceRunner, RunnerConfig};
use simcore::units::GB;
use std::cell::RefCell;
use std::rc::Rc;
use workload::{Trace, TraceConfig};

fn main() {
    let trace_cfg = TraceConfig {
        num_files: 12,
        num_jobs: 120,
        creation_window_secs: 600.0,
        mean_interarrival_secs: 4.0,
        compute_per_block_secs: 0.5,
        max_file_mb: 1024,
        zipf_exponent: 1.3,
        ..TraceConfig::default()
    };
    let trace = Trace::synthesize(&trace_cfg, 7);
    println!(
        "trace: {} files, {} jobs over {:.0}s; top file gets {} accesses",
        trace.files.len(),
        trace.jobs.len(),
        trace.span_secs(),
        trace.access_counts().values().max().copied().unwrap_or(0),
    );

    // cluster + ERMS (all-active deployment, τ_M = 4 → aggressive)
    let mut cluster = ClusterSim::new(
        ClusterConfig::paper_testbed(),
        Box::new(ErmsPlacement::new()),
    );
    for f in &trace.files {
        cluster
            .create_file(&f.path, f.size, 3, None)
            .expect("unique trace paths");
    }
    let cfg = ErmsConfig::builder()
        .thresholds(Thresholds::default().with_tau_hot(4.0))
        .standby([])
        .build()
        .expect("valid config");
    let erms = Rc::new(RefCell::new(
        ErmsManager::new(cfg, &mut cluster).expect("valid manager"),
    ));

    // MapReduce runner with the ERMS control loop as its controller
    let mut runner = MapReduceRunner::new(
        cluster,
        Box::new(FairScheduler::default()),
        RunnerConfig {
            controller_interval: SimDuration::from_secs(60),
            ..RunnerConfig::default()
        },
    );
    {
        let erms = erms.clone();
        runner.set_controller(Box::new(move |cluster, now| {
            let report = erms.borrow_mut().tick(cluster, now);
            if report.tasks_submitted > 0 {
                println!(
                    "[{now}] judge: hot={} cooled={} cold={} -> {} condor tasks",
                    report.hot, report.cooled, report.cold, report.tasks_submitted
                );
            }
        }));
    }
    for j in &trace.jobs {
        runner.submit(JobSpec {
            name: j.name.clone(),
            input: j.input.clone(),
            submit_at: SimTime::from_secs_f64(j.submit_at_secs),
            compute_per_block: SimDuration::from_secs_f64(j.compute_per_block_secs),
            reduce_duration: SimDuration::from_secs_f64(j.reduce_secs),
        });
    }
    let (stats, cluster) = runner.run();

    // summarise like Figure 3 does
    let mut tput = 0.0;
    let mut local = 0u32;
    let mut tasks = 0u32;
    let mut counted = 0usize;
    for s in &stats {
        if s.map_tasks == 0 {
            continue;
        }
        tput += s.read_throughput_mb_s();
        local += s.node_local_tasks;
        tasks += s.map_tasks;
        counted += 1;
    }
    let erms = erms.borrow();
    println!("---");
    println!("jobs completed:        {}", stats.len());
    println!(
        "avg read throughput:   {:.1} MB/s",
        tput / counted.max(1) as f64
    );
    println!(
        "node-local map tasks:  {local}/{tasks} ({:.0}%)",
        100.0 * local as f64 / tasks.max(1) as f64
    );
    println!("ERMS tasks completed:  {}", erms.total_completed);
    println!(
        "storage in use:        {:.2} GB",
        cluster.storage_used() as f64 / GB as f64
    );
    assert_eq!(stats.len(), trace.jobs.len());
    assert!(
        erms.total_completed > 0,
        "ERMS should have acted on this trace"
    );
}
