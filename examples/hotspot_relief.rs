//! Hotspot relief: measure what elastic replication buys under a flash
//! crowd, vanilla triplication vs ERMS.
//!
//! The scenario is the paper's motivating one — "the hot data could be
//! requested by many distributed clients concurrently. Putting the hot
//! data only on three different nodes is not enough to avoid contention."
//!
//! ```text
//! cargo run -p erms --example hotspot_relief --release
//! ```

use erms::prelude::*;
use hdfs_sim::topology::{ClientId, Endpoint};
use hdfs_sim::DefaultRackAware;
use simcore::stats::OnlineStats;
use simcore::units::MB;

const CROWD: usize = 60;
const FILE: &str = "/datasets/dictionary.bin";

fn crowd_round(cluster: &mut ClusterSim, offset: u32) -> OnlineStats {
    for i in 0..CROWD {
        cluster
            .open_read(Endpoint::Client(ClientId(offset + i as u32)), FILE)
            .expect("file exists");
    }
    cluster.run_until_quiescent();
    let mut stats = OnlineStats::new();
    for r in cluster.drain_completed_reads() {
        if !r.failed {
            stats.push(r.throughput_mb_s());
        }
    }
    stats
}

fn main() {
    // --- vanilla: fixed triplication -------------------------------
    let mut vanilla = ClusterSim::new(ClusterConfig::paper_testbed(), Box::new(DefaultRackAware));
    vanilla.create_file(FILE, 128 * MB, 3, None).expect("fresh");
    let v1 = crowd_round(&mut vanilla, 0);
    let v2 = crowd_round(&mut vanilla, 1000);
    println!("vanilla triplication:");
    println!("  crowd 1: mean {:6.2} MB/s per reader", v1.mean());
    println!(
        "  crowd 2: mean {:6.2} MB/s per reader (nothing changed)",
        v2.mean()
    );

    // --- ERMS: elastic replication ---------------------------------
    let mut cluster = ClusterSim::new(
        ClusterConfig::paper_testbed(),
        Box::new(ErmsPlacement::new()),
    );
    let mut thresholds = Thresholds::calibrate(8.0);
    thresholds.window = SimDuration::from_secs(300);
    let cfg = ErmsConfig::builder()
        .thresholds(thresholds)
        .standby((10..18).map(NodeId))
        .build()
        .expect("valid config");
    let mut erms = ErmsManager::new(cfg, &mut cluster).expect("valid manager");
    cluster.create_file(FILE, 128 * MB, 3, None).expect("fresh");

    let e1 = crowd_round(&mut cluster, 0);
    // the control loop reacts between crowds
    for _ in 0..6 {
        let now = cluster.now();
        erms.tick(&mut cluster, now);
        cluster.run_until(cluster.now() + SimDuration::from_secs(45));
        cluster.run_until_quiescent();
    }
    let e2 = crowd_round(&mut cluster, 1000);

    let file = cluster.namespace().resolve(FILE).expect("exists");
    let r = cluster
        .namespace()
        .file(file)
        .map(|m| m.replication())
        .unwrap_or(0);
    println!("ERMS elastic replication:");
    println!(
        "  crowd 1: mean {:6.2} MB/s per reader (still 3 replicas)",
        e1.mean()
    );
    println!(
        "  crowd 2: mean {:6.2} MB/s per reader (boosted to r={r})",
        e2.mean()
    );
    println!(
        "  relief: {:.1}x the per-reader throughput of the first crowd",
        e2.mean() / e1.mean().max(1e-9)
    );
    assert!(r > 3, "demo expects a boost");
    assert!(
        e2.mean() > e1.mean() * 1.3,
        "boosted crowd should be much faster: {} vs {}",
        e2.mean(),
        e1.mean()
    );
}
