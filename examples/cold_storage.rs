//! Cold storage: watch ERMS erasure-encode aged data, then verify with
//! real Reed–Solomon bytes that the encoded layout survives node loss.
//!
//! Two layers cooperate here: the cluster simulator accounts placement
//! and storage, while the `erasure` crate does byte-level RS(10,4)
//! coding over synthetic block payloads to prove the redundancy claim.
//!
//! ```text
//! cargo run -p erms --example cold_storage --release
//! ```

use erasure::{ReedSolomon, StripeLayout};
use erms::prelude::*;
use simcore::units::{fmt_bytes, MB};

fn main() {
    let mut cluster = ClusterSim::new(
        ClusterConfig::paper_testbed(),
        Box::new(ErmsPlacement::new()),
    );
    let mut thresholds = Thresholds::calibrate(8.0);
    thresholds.cold_age = SimDuration::from_secs(600);
    let cfg = ErmsConfig::builder()
        .thresholds(thresholds)
        .standby([])
        .build()
        .expect("valid config");
    let mut erms = ErmsManager::new(cfg, &mut cluster).expect("valid manager");

    // a 20-block archive nobody reads any more
    let file = cluster
        .create_file("/archive/2011-logs", 1280 * MB, 3, None)
        .expect("fresh namespace");
    let before = cluster.storage_used();
    println!("archived file stored at 3x: {}", fmt_bytes(before));

    // age it past the cold threshold and run the control loop (encode
    // is a when-idle Condor task, so it runs now — the cluster is quiet)
    cluster.run_until(cluster.now() + SimDuration::from_secs(1200));
    for _ in 0..3 {
        let now = cluster.now();
        erms.tick(&mut cluster, now);
    }
    let meta = cluster.namespace().file(file).expect("still present");
    assert!(meta.is_encoded(), "file should be cold-encoded by now");
    let after = cluster.storage_used();
    println!(
        "after RS({},{}) encoding: {} ({:.0}% saved)",
        10,
        4,
        fmt_bytes(after),
        100.0 * (1.0 - after as f64 / before as f64)
    );

    // --- byte-level proof of the same layout ------------------------
    let layout = StripeLayout::paper_default();
    let rs = ReedSolomon::new(layout.k, layout.m).expect("valid code");
    // one stripe of 10 blocks (scaled down to 64 KiB shards for the demo)
    let shard = 64 * 1024;
    let data: Vec<Vec<u8>> = (0..layout.k)
        .map(|i| (0..shard).map(|j| ((i * 31 + j * 7) % 251) as u8).collect())
        .collect();
    let parity = rs.encode(&data).expect("encode");
    println!(
        "encoded one stripe: {} data shards + {} parity shards",
        data.len(),
        parity.len()
    );

    // lose any 4 shards — the tolerance ERMS's cold tier promises
    let mut shards: Vec<Option<Vec<u8>>> = data
        .iter()
        .cloned()
        .chain(parity.iter().cloned())
        .map(Some)
        .collect();
    for victim in [0usize, 3, 9, 12] {
        shards[victim] = None;
    }
    rs.reconstruct(&mut shards).expect("any 4 erasures recover");
    for (i, original) in data.iter().enumerate() {
        assert_eq!(shards[i].as_ref().expect("recovered"), original);
    }
    println!("lost 4 shards (3 data + 1 parity) -> fully reconstructed");
    println!(
        "storage overhead: RS = {:.2}x vs triplication = 3.00x",
        layout.overhead_factor()
    );
}
