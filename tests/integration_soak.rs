//! Soak-equivalence guard: the PR-5 single-split resume contract,
//! generalised to the segmented long-horizon runner.
//!
//! A soak executed in K checkpointed segments — every hand-off snapshot
//! pushed through its JSON wire format, exactly what CI shards exchange
//! as artifacts — must produce a telemetry trace byte-identical to the
//! straight-through run, an equal final snapshot, and a trace the
//! invariant oracle passes clean. The guard runs the production-traffic
//! scenarios (workload-driven creates/reads over the tick grid), so it
//! also proves the ops schedule regenerates identically on resume.

use bench::checkpointing::Scenario;
use bench::soak::{boundaries, run_segment, run_segmented, run_straight};
use trace_tools::{check, OracleConfig};

fn assert_soak_equivalent(scenario: fn() -> Scenario, seed: u64, segments: u64) -> String {
    let (straight, final_a) = run_straight(scenario(), seed);
    let (segmented, final_b) = run_segmented(scenario(), seed, segments);
    assert!(!straight.is_empty(), "soak traced events");
    assert_eq!(
        straight, segmented,
        "{segments} segment chunks must concatenate into the straight-through trace"
    );
    assert_eq!(
        final_a.to_json(),
        final_b.to_json(),
        "final snapshots must compare equal"
    );
    let (text, violations) = check(&straight, OracleConfig::default()).expect("trace parses");
    assert!(violations.is_empty(), "oracle violations:\n{text}");
    straight
}

#[test]
fn production_soak_in_three_segments_matches_straight_through() {
    let trace = assert_soak_equivalent(Scenario::prod_flashcrowd, 42, 3);
    // the production traffic actually drove the cluster across segments
    assert!(
        trace.contains("/prod/crowd/"),
        "trace shows no workload traffic"
    );
    assert!(trace.contains("\"ev\":\"read_started\""));
}

#[test]
fn corruption_soak_in_two_segments_matches_straight_through() {
    let trace = assert_soak_equivalent(Scenario::churn_corrupt, 42, 2);
    assert!(
        trace.contains("\"ev\":\"corruption_injected\""),
        "storm injected rot"
    );
}

#[test]
fn segment_count_one_degenerates_to_straight_through() {
    let (straight, final_a) = run_straight(Scenario::churn_tiny(), 9);
    let (one, final_b) = run_segmented(Scenario::churn_tiny(), 9, 1);
    assert_eq!(straight, one);
    assert_eq!(final_a.to_json(), final_b.to_json());
}

#[test]
fn uneven_segment_boundaries_still_reach_the_horizon() {
    let s = Scenario::churn_tiny();
    let bounds = boundaries(s.total_ticks, 4);
    assert_eq!(*bounds.last().unwrap(), s.total_ticks);
    // a mid-run segment reports its boundary tick in the snapshot it
    // hands to the next shard
    let out = run_segment(s.clone(), 3, 4, 0, None).expect("segment 0 runs");
    assert_eq!(out.snapshot.meta.tick, bounds[0]);
    assert!(!out.is_last);
    let out1 = run_segment(s, 3, 4, 1, Some(&out.snapshot)).expect("segment 1 resumes");
    assert_eq!(out1.snapshot.meta.tick, bounds[1]);
}
