//! Equivalence guard for the incremental control loop.
//!
//! `ErmsManager::tick` normally judges only the dirty/active visit set;
//! `full_rescan` forces the old exhaustive namespace walk. The two modes
//! must be *action-for-action* identical: same verdict counts, same
//! tasks at the same ticks, same commissioning and healing decisions,
//! and the same final cluster state — the only permitted difference is
//! `files_judged`, which measures the work the incremental mode skipped.
//! Both modes' traces must also satisfy every causal invariant the
//! trace oracle knows.

use erms::{ErmsConfig, ErmsManager, ErmsPlacement, Thresholds, TickReport};
use hdfs_sim::topology::{ClientId, Endpoint};
use hdfs_sim::{ClusterConfig, ClusterSim, NodeId};
use simcore::telemetry::TelemetrySink;
use simcore::units::MB;
use simcore::SimDuration;
use trace_tools::{check, OracleConfig};

fn thresholds() -> Thresholds {
    let mut t = Thresholds::calibrate(4.0);
    t.window = SimDuration::from_secs(600);
    t.cold_age = SimDuration::from_secs(1800);
    t
}

struct Run {
    reports: Vec<TickReport>,
    /// (path, replication, encoded) per surviving file, in id order.
    files: Vec<(String, usize, bool)>,
    storage: u64,
    trace: String,
}

/// One scripted workload — flash crowd, background traffic, a delete, a
/// node kill, then a long cool-down — driven tick-for-tick identically
/// regardless of the manager's visit-set mode.
fn run(full_rescan: bool) -> Run {
    let mut c = ClusterSim::new(
        ClusterConfig::paper_testbed(),
        Box::new(ErmsPlacement::new()),
    );
    let cfg = ErmsConfig::builder()
        .thresholds(thresholds())
        .standby((10..18).map(NodeId))
        .self_healing(true)
        .full_rescan(full_rescan)
        .build()
        .unwrap();
    let mut m = ErmsManager::new(cfg, &mut c).unwrap();
    let sink = TelemetrySink::recording();
    c.set_telemetry(sink.clone());
    m.set_telemetry(sink.clone());

    for i in 0..12 {
        c.create_file(&format!("/f{i}"), 64 * MB, 3, None).unwrap();
    }
    c.run_until_quiescent();

    let mut reports: Vec<TickReport> = Vec::new();
    let settle = |c: &mut ClusterSim,
                  m: &mut ErmsManager,
                  reports: &mut Vec<TickReport>,
                  rounds: usize,
                  step: u64| {
        for _ in 0..rounds {
            let now = c.now();
            reports.push(m.tick(c, now));
            c.run_until(c.now() + SimDuration::from_secs(step));
            c.run_until_quiescent();
        }
    };

    // flash crowd on /f0 → hot boost with standby commissioning
    for i in 0..40u32 {
        c.open_read(Endpoint::Client(ClientId(i)), "/f0").unwrap();
    }
    c.run_until_quiescent();
    settle(&mut c, &mut m, &mut reports, 6, 45);

    // mild traffic on /f1, a deletion, and a replica-holder kill
    for i in 0..3u32 {
        c.open_read(Endpoint::Client(ClientId(100 + i)), "/f1")
            .unwrap();
    }
    c.run_until_quiescent();
    assert!(c.delete_file("/f2"));
    c.kill_node(NodeId(5));
    settle(&mut c, &mut m, &mut reports, 8, 45);

    // long silence: /f0 cools and sheds, old files age toward cold.
    // The first post-silence tick encodes the cold files, and those ERMS
    // actions are themselves audit traffic — the tail must outlast the
    // CEP window past that wave for the fleet to go quiet and stable.
    c.run_until(c.now() + SimDuration::from_secs(2400));
    settle(&mut c, &mut m, &mut reports, 14, 90);

    let files = c
        .namespace()
        .files()
        .map(|f| (f.path.clone(), f.replication(), f.is_encoded()))
        .collect();
    Run {
        reports,
        files,
        storage: c.storage_used(),
        trace: sink.drain_jsonl(),
    }
}

/// Everything in a tick report except `files_judged`.
#[derive(Debug, PartialEq, Eq)]
struct Actions {
    hot: usize,
    cooled: usize,
    cold: usize,
    tasks_submitted: usize,
    tasks_completed: usize,
    tasks_failed: usize,
    commissioned: Vec<NodeId>,
    shut_down: Vec<NodeId>,
    repairs_started: usize,
    replicas_trimmed: usize,
    reconstructions: usize,
    tasks_timed_out: usize,
    standby_evicted: Vec<NodeId>,
}

fn actions(r: &TickReport) -> Actions {
    Actions {
        hot: r.hot,
        cooled: r.cooled,
        cold: r.cold,
        tasks_submitted: r.tasks_submitted,
        tasks_completed: r.tasks_completed,
        tasks_failed: r.tasks_failed,
        commissioned: r.commissioned.clone(),
        shut_down: r.shut_down.clone(),
        repairs_started: r.repairs_started,
        replicas_trimmed: r.replicas_trimmed,
        reconstructions: r.reconstructions,
        tasks_timed_out: r.tasks_timed_out,
        standby_evicted: r.standby_evicted.clone(),
    }
}

#[test]
fn incremental_and_full_rescan_take_identical_actions() {
    let inc = run(false);
    let full = run(true);

    assert_eq!(inc.reports.len(), full.reports.len());
    for (i, (a, b)) in inc.reports.iter().zip(&full.reports).enumerate() {
        assert_eq!(actions(a), actions(b), "tick {i} diverged");
        assert!(
            a.files_judged <= b.files_judged,
            "tick {i}: incremental judged more files ({} > {})",
            a.files_judged,
            b.files_judged
        );
    }
    assert_eq!(inc.files, full.files, "final namespace state diverged");
    assert_eq!(inc.storage, full.storage, "final storage diverged");

    // the point of the exercise: strictly less judging work overall
    let judged_inc: usize = inc.reports.iter().map(|r| r.files_judged).sum();
    let judged_full: usize = full.reports.iter().map(|r| r.files_judged).sum();
    assert!(
        judged_inc < judged_full,
        "incremental mode saved nothing: {judged_inc} vs {judged_full}"
    );

    // both modes' traces satisfy every causal invariant
    for (label, trace) in [("incremental", &inc.trace), ("full", &full.trace)] {
        let (text, violations) = check(trace, OracleConfig::default()).expect("trace parses");
        assert!(violations.is_empty(), "{label} trace dirty:\n{text}");
    }
}

#[test]
fn incremental_runs_are_deterministic() {
    let a = run(false);
    let b = run(false);
    assert_eq!(a.trace, b.trace, "same-seed traces must be byte-identical");
    assert_eq!(a.files, b.files);
}
