//! Equivalence guard for the sharded control loop.
//!
//! `ErmsManager::tick` partitions the judge pass by `FileId % shards`
//! and merges verdicts back in FileId order, replaying each file's
//! captured window emissions in place. The contract is strict: for any
//! shard count and any telemetry batch size, a run must be
//! **byte-identical in its trace** and identical in every action to the
//! unsharded, unbatched baseline. A property test drives randomized
//! workloads through the same gauntlet, and a second suite pins the
//! arena handle semantics the columnar state relies on.

use erms::prelude::*;
use hdfs_sim::topology::{ClientId, Endpoint};
use proptest::prelude::*;
use simcore::units::MB;

fn thresholds() -> Thresholds {
    let mut t = Thresholds::calibrate(4.0);
    t.window = SimDuration::from_secs(600);
    t.cold_age = SimDuration::from_secs(1800);
    t
}

struct Run {
    /// (hot, cooled, cold, submitted) per tick.
    actions: Vec<(usize, usize, usize, usize)>,
    /// (path, replication, encoded) per surviving file, in id order.
    files: Vec<(String, usize, bool)>,
    trace: String,
}

/// The scripted workload from the incremental-equivalence guard — flash
/// crowd, background traffic, a delete, a node kill, then a cool-down —
/// run under a given shard count and telemetry batch size.
fn run_scripted(shards: usize, batch: usize) -> Run {
    let mut c = ClusterSim::new(
        ClusterConfig::paper_testbed(),
        Box::new(ErmsPlacement::new()),
    );
    let cfg = ErmsConfig::builder()
        .thresholds(thresholds())
        .standby((10..18).map(NodeId))
        .self_healing(true)
        .shards(shards)
        .telemetry_batch(batch)
        .build()
        .unwrap();
    let mut m = ErmsManager::new(cfg, &mut c).unwrap();
    let sink = TelemetrySink::recording();
    c.set_telemetry(sink.clone());
    m.set_telemetry(sink.clone());

    for i in 0..12 {
        c.create_file(&format!("/f{i}"), 64 * MB, 3, None).unwrap();
    }
    c.run_until_quiescent();

    let mut actions = Vec::new();
    let mut settle = |c: &mut ClusterSim, m: &mut ErmsManager, rounds: usize, step: u64| {
        for _ in 0..rounds {
            let now = c.now();
            let r = m.tick(c, now);
            actions.push((r.hot, r.cooled, r.cold, r.tasks_submitted));
            c.run_until(c.now() + SimDuration::from_secs(step));
            c.run_until_quiescent();
        }
    };

    for i in 0..40u32 {
        c.open_read(Endpoint::Client(ClientId(i)), "/f0").unwrap();
    }
    c.run_until_quiescent();
    settle(&mut c, &mut m, 6, 45);

    for i in 0..3u32 {
        c.open_read(Endpoint::Client(ClientId(100 + i)), "/f1")
            .unwrap();
    }
    c.run_until_quiescent();
    assert!(c.delete_file("/f2"));
    c.kill_node(NodeId(5));
    settle(&mut c, &mut m, 8, 45);

    c.run_until(c.now() + SimDuration::from_secs(2400));
    settle(&mut c, &mut m, 14, 90);

    let files = c
        .namespace()
        .files()
        .map(|f| (f.path.clone(), f.replication(), f.is_encoded()))
        .collect();
    Run {
        actions,
        files,
        trace: sink.drain_jsonl(),
    }
}

#[test]
fn sharded_runs_match_baseline_byte_for_byte() {
    let baseline = run_scripted(1, 1);
    assert!(
        !baseline.trace.is_empty(),
        "baseline produced an empty trace; the guard would be vacuous"
    );
    for shards in [2, 3, 7, 16] {
        let sharded = run_scripted(shards, 1);
        assert_eq!(
            baseline.actions, sharded.actions,
            "shards={shards}: per-tick actions diverged"
        );
        assert_eq!(
            baseline.files, sharded.files,
            "shards={shards}: final namespace diverged"
        );
        assert_eq!(
            baseline.trace, sharded.trace,
            "shards={shards}: trace is not byte-identical"
        );
    }
}

#[test]
fn telemetry_batching_does_not_reorder_the_trace() {
    let baseline = run_scripted(1, 1);
    for (shards, batch) in [(1, 8), (1, 256), (4, 32), (16, 1024)] {
        let batched = run_scripted(shards, batch);
        assert_eq!(
            baseline.trace, batched.trace,
            "shards={shards} batch={batch}: batching changed the trace"
        );
        assert_eq!(baseline.actions, batched.actions);
    }
}

// ---------------------------------------------------------------------
// Property test: randomized workloads, random shard counts and batch
// sizes — sharded and unsharded ticks must agree action-for-action and
// byte-for-byte.

/// One step of a randomized ERMS workload.
#[derive(Debug, Clone)]
enum Op {
    Create {
        size_mb: u64,
        replication: usize,
    },
    Delete {
        idx: usize,
    },
    Read {
        idx: usize,
        client: u32,
        fanout: u32,
    },
    Advance {
        secs: u64,
    },
    Tick,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..200, 1usize..4).prop_map(|(size_mb, replication)| Op::Create {
            size_mb,
            replication
        }),
        (0usize..8).prop_map(|idx| Op::Delete { idx }),
        (0usize..8, 0u32..40, 1u32..24).prop_map(|(idx, client, fanout)| Op::Read {
            idx,
            client,
            fanout
        }),
        (30u64..900).prop_map(|secs| Op::Advance { secs }),
        Just(Op::Tick),
    ]
}

/// Drive one op sequence with the given shard/batch settings; return the
/// per-tick action tuples and the full JSONL trace.
fn run_random(
    ops: &[Op],
    shards: usize,
    batch: usize,
) -> (Vec<(usize, usize, usize, usize)>, String) {
    let mut c = ClusterSim::new(
        ClusterConfig::paper_testbed(),
        Box::new(ErmsPlacement::new()),
    );
    let cfg = ErmsConfig::builder()
        .thresholds(thresholds())
        .self_healing(true)
        .shards(shards)
        .telemetry_batch(batch)
        .build()
        .unwrap();
    let mut m = ErmsManager::new(cfg, &mut c).unwrap();
    let sink = TelemetrySink::recording();
    c.set_telemetry(sink.clone());
    m.set_telemetry(sink.clone());

    let mut created = 0u64;
    let mut paths: Vec<String> = Vec::new();
    let mut actions = Vec::new();
    for op in ops {
        match op {
            Op::Create {
                size_mb,
                replication,
            } => {
                let path = format!("/shard/f{created}");
                created += 1;
                if c.create_file(&path, size_mb * MB, *replication, None)
                    .is_some()
                {
                    paths.push(path);
                }
            }
            Op::Delete { idx } => {
                if !paths.is_empty() {
                    let path = paths.remove(idx % paths.len());
                    c.delete_file(&path);
                }
            }
            Op::Read {
                idx,
                client,
                fanout,
            } => {
                if !paths.is_empty() {
                    let path = paths[idx % paths.len()].clone();
                    for k in 0..*fanout {
                        let _ = c.open_read(Endpoint::Client(ClientId(client + k)), &path);
                    }
                }
            }
            Op::Advance { secs } => {
                c.run_until(c.now() + SimDuration::from_secs(*secs));
            }
            Op::Tick => {
                c.run_until_quiescent();
                let now = c.now();
                let r = m.tick(&mut c, now);
                actions.push((r.hot, r.cooled, r.cold, r.tasks_submitted));
            }
        }
    }
    c.run_until_quiescent();
    let now = c.now();
    let r = m.tick(&mut c, now);
    actions.push((r.hot, r.cooled, r.cold, r.tasks_submitted));
    (actions, sink.drain_jsonl())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn random_workloads_shard_equivalently(
        ops in prop::collection::vec(op_strategy(), 4..28),
        shards in 2usize..12,
        batch in prop_oneof![Just(1usize), 2usize..128],
    ) {
        let (base_actions, base_trace) = run_random(&ops, 1, 1);
        let (shard_actions, shard_trace) = run_random(&ops, shards, batch);
        prop_assert_eq!(base_actions, shard_actions, "actions diverged");
        prop_assert_eq!(base_trace, shard_trace, "trace not byte-identical");
    }
}

// ---------------------------------------------------------------------
// Arena handle semantics the columnar state depends on, exercised
// through the prelude re-exports.

#[test]
fn arena_handles_are_generation_checked() {
    let mut arena: Arena<String> = Arena::new();
    let a = arena.insert("alpha".into());
    let b = arena.insert("beta".into());
    assert_eq!(arena.get(a).map(String::as_str), Some("alpha"));

    // deleting invalidates the handle...
    assert_eq!(arena.remove(a), Some("alpha".into()));
    assert!(arena.get(a).is_none(), "stale handle must miss");

    // ...and the recycled slot gets a new generation, so the old handle
    // can never alias the new occupant
    let c = arena.insert("gamma".into());
    assert_eq!(c.index(), a.index(), "slot is reused");
    assert_ne!(c.generation(), a.generation(), "generation advanced");
    assert!(arena.get(a).is_none());
    assert_eq!(arena.get(c).map(String::as_str), Some("gamma"));
    assert_eq!(arena.get(b).map(String::as_str), Some("beta"));
}

#[test]
fn forged_handles_do_not_resolve() {
    let mut arena: Arena<u32> = Arena::new();
    let h = arena.insert(7);
    // wrong generation
    let forged: Handle<u32> = Handle::from_raw(h.index(), h.generation() + 1);
    assert!(arena.get(forged).is_none());
    // out-of-bounds index
    let oob: Handle<u32> = Handle::from_raw(h.index() + 100, 0);
    assert!(arena.get(oob).is_none());
}
