//! Fault-interleaving properties: arbitrary crash/restart/kill/repair/
//! boost sequences, with the self-healing manager in the loop, must
//! preserve three guarantees however they interleave:
//!
//! 1. no block that kept at least one live replica throughout is ever
//!    unreadable — a block can only end up dark if the durability log
//!    recorded the moment it lost its last replica;
//! 2. the blockmap, per-node byte accounting and crash-retained stashes
//!    stay mutually consistent (and no dead node serves replicas);
//! 3. the Condor journal replayed mid-failure agrees with the
//!    scheduler's live job states — the recovery story the paper's user
//!    log promises.

use condor::journal::ReplayState;
use condor::JobState;
use erms::{ErmsConfig, ErmsManager, ErmsPlacement, Thresholds};
use hdfs_sim::datanode::NodeState;
use hdfs_sim::topology::{ClientId, Endpoint};
use hdfs_sim::{ClusterConfig, ClusterSim, NodeId};
use proptest::prelude::*;
use simcore::units::MB;
use simcore::SimDuration;

/// The fault and workload moves the fuzzer may interleave.
#[derive(Debug, Clone)]
enum Op {
    Crash { node: u32 },
    Restart { idx: usize },
    Kill { node: u32 },
    RackOut { rack: u16 },
    RackBack { rack: u16 },
    Repair,
    Boost { idx: usize, readers: u32 },
    Tick,
    Advance { secs: u64 },
    Corrupt { node: u32, pick: u64 },
    TornCrash { node: u32 },
    Scrub { budget: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..18).prop_map(|node| Op::Crash { node }),
        (0usize..8).prop_map(|idx| Op::Restart { idx }),
        (0u32..18).prop_map(|node| Op::Kill { node }),
        (0u16..3).prop_map(|rack| Op::RackOut { rack }),
        (0u16..3).prop_map(|rack| Op::RackBack { rack }),
        Just(Op::Repair),
        (0usize..5, 5u32..20).prop_map(|(idx, readers)| Op::Boost { idx, readers }),
        Just(Op::Tick),
        (5u64..300).prop_map(|secs| Op::Advance { secs }),
        (0u32..18, 0u64..64).prop_map(|(node, pick)| Op::Corrupt { node, pick }),
        (0u32..18).prop_map(|node| Op::TornCrash { node }),
        (1usize..32).prop_map(|budget| Op::Scrub { budget }),
    ]
}

fn healing_manager(cluster: &mut ClusterSim) -> ErmsManager {
    let mut thresholds = Thresholds::calibrate(4.0);
    thresholds.window = SimDuration::from_secs(600);
    thresholds.cold_age = SimDuration::from_secs(300);
    let cfg = ErmsConfig::builder()
        .thresholds(thresholds)
        .standby([])
        .encode(false)
        .self_healing(true)
        .scrubber(true)
        .scrub_blocks_per_tick(24)
        .task_timeout(SimDuration::from_secs(120))
        .build()
        .expect("valid config");
    ErmsManager::new(cfg, cluster).expect("valid manager")
}

/// Blockmap ↔ datanode ↔ storage accounting consistency, plus: a dead
/// node never appears as a replica location (its disk contents live in
/// the crash stash, not the map).
fn check_accounting(c: &ClusterSim) {
    let mut expected_storage: u64 = 0;
    let mut total_replicas = 0usize;
    for meta in c.namespace().files() {
        for &b in &meta.blocks {
            let info = c.namespace().block(b).expect("live block has metadata");
            let locs = c.blockmap().replica_nodes(b);
            total_replicas += locs.len();
            let mut dedup = locs.to_vec();
            dedup.dedup();
            assert_eq!(dedup.len(), locs.len(), "duplicate replica records");
            for &n in locs {
                assert_ne!(
                    c.node_state(n),
                    NodeState::Dead,
                    "blockmap lists dead node {n} as holding {b}"
                );
                assert!(
                    c.node_holds(n, b),
                    "blockmap says {n} holds {b} but the node disagrees"
                );
                expected_storage += info.len;
            }
        }
    }
    assert_eq!(
        c.storage_used(),
        expected_storage,
        "crashed disks leave storage accounting (stash is off-book)"
    );
    assert_eq!(c.blockmap().total_replicas(), total_replicas);
}

/// The journal folded from the start must land on each job's live state.
fn check_journal_replay(m: &ErmsManager) {
    let replayed = m.condor().journal().replay();
    for (job, rep) in &replayed {
        let live = m
            .condor()
            .state(condor::JobId(job.0))
            .expect("journalled job is known to the scheduler");
        let ok = match live {
            JobState::Queued => *rep == ReplayState::Queued,
            JobState::Running => *rep == ReplayState::Running,
            JobState::Completed => *rep == ReplayState::Completed,
            // live state collapses rollback-pending and rolled-back
            JobState::Failed => matches!(
                rep,
                ReplayState::FailedAwaitingRollback | ReplayState::RolledBack
            ),
        };
        assert!(
            ok,
            "job {job}: journal replays {rep:?} but live state is {live:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn fault_interleavings_preserve_invariants(ops in prop::collection::vec(op_strategy(), 1..50)) {
        let mut c = ClusterSim::new(
            ClusterConfig::paper_testbed(),
            Box::new(ErmsPlacement::new()),
        );
        let mut m = healing_manager(&mut c);
        let paths: Vec<String> = (0..5).map(|i| format!("/fuzz/f{i}")).collect();
        for (i, p) in paths.iter().enumerate() {
            // mixed replication, including an r=1 file that any single
            // failure may legitimately lose (the log must say so)
            let r = [3, 2, 3, 1, 2][i];
            c.create_file(p, 200 * MB, r, None).unwrap();
        }
        c.run_until_quiescent();

        let mut crashed: Vec<NodeId> = Vec::new();
        for op in ops {
            match op {
                Op::Crash { node } => {
                    // keep a quorum of serving nodes so placement works
                    if c.serving_nodes() > 12 && c.crash_node(NodeId(node)) {
                        crashed.push(NodeId(node));
                    }
                }
                Op::Restart { idx } => {
                    if !crashed.is_empty() {
                        let n = crashed.remove(idx % crashed.len());
                        c.restart_node(n);
                    }
                }
                Op::Kill { node } => {
                    if c.serving_nodes() > 12 {
                        crashed.retain(|&n| n != NodeId(node));
                        c.kill_node(NodeId(node));
                    }
                }
                Op::RackOut { rack } => {
                    c.fail_rack_uplink(hdfs_sim::RackId(rack));
                }
                Op::RackBack { rack } => {
                    c.restore_rack_uplink(hdfs_sim::RackId(rack));
                }
                Op::Repair => {
                    c.repair_under_replicated();
                }
                Op::Boost { idx, readers } => {
                    let path = &paths[idx % paths.len()];
                    for r in 0..readers {
                        let _ = c.open_read(Endpoint::Client(ClientId(100 + r)), path);
                    }
                }
                Op::Tick => {
                    let now = c.now();
                    m.tick(&mut c, now);
                    // guarantee 3 holds in the thick of the failures, not
                    // just after the dust settles
                    check_journal_replay(&m);
                }
                Op::Advance { secs } => {
                    c.run_until(c.now() + SimDuration::from_secs(secs));
                }
                Op::Corrupt { node, pick } => {
                    c.corrupt_replica(NodeId(node), pick, false);
                }
                Op::TornCrash { node } => {
                    if c.serving_nodes() > 12 && c.crash_node_torn(NodeId(node)) {
                        crashed.push(NodeId(node));
                    }
                }
                Op::Scrub { budget } => {
                    c.scrub(budget, &[]);
                }
            }
        }

        // drain in-flight work and give the healer a few rounds; the
        // first full-coverage sweep surfaces any rot the per-tick scrub
        // budget had not reached yet
        c.run_until_quiescent();
        let total_blocks: usize = c.namespace().files().map(|f| f.blocks.len()).sum();
        c.scrub(total_blocks + 1, &[]);
        for _ in 0..6 {
            let now = c.now();
            m.tick(&mut c, now);
            c.run_until_quiescent();
        }
        check_accounting(&c);
        check_journal_replay(&m);

        // a full sweep has seen every live replica, so any replica still
        // in the blockmap is checksum-clean — corruption may outlive the
        // run only inside crash stashes, never in serving state
        c.scrub(total_blocks + 1, &[]);
        for meta in c.namespace().files() {
            for &b in &meta.blocks {
                for &n in c.blockmap().replica_nodes(b) {
                    prop_assert!(
                        !c.is_replica_corrupt(b, n),
                        "{b} of {} still served by corrupt replica on {n}",
                        meta.path
                    );
                }
            }
        }

        // guarantee 1: a block may only be dark if the durability log
        // recorded it going dark — nothing becomes unreadable silently
        let now = c.now();
        c.durability_mut().finalize(now);
        let mut recorded: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        recorded.extend(c.durability().windows().iter().map(|w| w.key));
        recorded.extend(c.durability().loss_events().iter().map(|l| l.key));
        for meta in c.namespace().files() {
            for &b in &meta.blocks {
                if c.blockmap().replica_count(b) == 0 {
                    prop_assert!(
                        recorded.contains(&b.0),
                        "{b} of {} is unreadable but the log never saw it lose \
                         its last replica",
                        meta.path
                    );
                }
            }
        }
    }
}
