//! Integration: causal spans and the trace-invariant oracle against
//! traces from the real simulator, not hand-built fixtures.
//!
//! 1. the seeded-churn scenario's captured trace parses, reconstructs
//!    every span kind (read sessions, copy streams, Condor tasks,
//!    elastic episodes) and passes the oracle with zero violations;
//! 2. `trace-tools summary` output is a pure function of the seed —
//!    byte-identical across same-seed runs, loud under `diff` across
//!    different seeds;
//! 3. arbitrary fault schedules run through the self-healing manager
//!    never produce a trace the oracle rejects — the invariants hold
//!    under fuzzing, not just on the blessed scenario.

use bench::faults::{self, FaultsConfig};
use erms::{ErmsConfig, ErmsManager, ErmsPlacement, Thresholds};
use hdfs_sim::topology::{ClientId, Endpoint};
use hdfs_sim::{ClusterConfig, ClusterSim, NodeId};
use proptest::prelude::*;
use simcore::spans::{SpanCollector, SpanKind};
use simcore::telemetry::TelemetrySink;
use simcore::units::MB;
use simcore::SimDuration;
use trace_tools::{check, diff, parse_jsonl, summarize, OracleConfig};

fn quick_cfg() -> FaultsConfig {
    let mut cfg = FaultsConfig::small();
    cfg.num_files = 6;
    cfg.fault.horizon = SimDuration::from_hours(2);
    cfg.settle_ticks = 20;
    cfg
}

#[test]
fn captured_faults_trace_is_oracle_clean_with_every_span_kind() {
    let (_, t) = faults::run_captured(&quick_cfg(), true);
    let (text, violations) = check(&t.trace_jsonl, OracleConfig::default()).expect("trace parses");
    assert!(
        violations.is_empty(),
        "scenario trace must be clean:\n{text}"
    );
    assert!(text.contains("OK (0 violations)"), "{text}");

    let report = SpanCollector::collect(&parse_jsonl(&t.trace_jsonl).unwrap());
    // the warm-up flash crowd, churn repairs and the boost/shed cycle
    // together light up every span kind the collector knows
    for kind in [
        SpanKind::Read,
        SpanKind::Copy,
        SpanKind::Task,
        SpanKind::Episode,
    ] {
        assert!(
            report.count(kind) > 0,
            "no completed {} spans in scenario trace",
            kind.label()
        );
    }
    // copy spans pair dispatch with completion by copy id — exactly one
    // of each, even though churn retries repairs under fresh ids
    for s in report.spans.iter().filter(|s| s.kind == SpanKind::Copy) {
        assert_eq!(s.events, 2, "copy span {} events", s.key);
        assert!(s.end >= s.start, "copy span {} runs backwards", s.key);
    }
    // copies dispatched to nodes that died mid-stream never complete:
    // they stay open rather than being mis-paired with a later retry
    for s in report.open.iter().filter(|s| s.kind == SpanKind::Copy) {
        assert_eq!(s.events, 1, "open copy {} saw a completion", s.key);
        assert!(!s.ok);
    }
}

#[test]
fn summary_is_byte_identical_across_same_seed_runs() {
    let (_, a) = faults::run_captured(&quick_cfg(), true);
    let (_, b) = faults::run_captured(&quick_cfg(), true);
    let sa = summarize(&a.trace_jsonl).expect("trace parses");
    let sb = summarize(&b.trace_jsonl).expect("trace parses");
    assert_eq!(sa, sb, "summary must be a pure function of the seed");
    for row in ["read", "copy", "task", "episode"] {
        let line = sa
            .lines()
            .find(|l| l.split_whitespace().next() == Some(row))
            .unwrap_or_else(|| panic!("no {row} row in summary:\n{sa}"));
        let count: u64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(count > 0, "{row} span count missing from summary:\n{sa}");
    }
}

#[test]
fn diff_separates_seeds_and_is_quiet_on_itself() {
    let (_, a) = faults::run_captured(&quick_cfg(), true);
    let mut other = quick_cfg();
    other.seed = 1007;
    let (_, b) = faults::run_captured(&other, true);

    let (text, differs) = diff(&a.trace_jsonl, &a.trace_jsonl).expect("traces parse");
    assert!(!differs, "same trace must diff clean:\n{text}");
    assert!(text.contains("structurally identical"), "{text}");

    let (text, differs) = diff(&a.trace_jsonl, &b.trace_jsonl).expect("traces parse");
    assert!(differs, "different seeds must differ:\n{text}");
    assert!(text.contains("DIFFERENT"), "{text}");
}

/// The fault and workload moves the fuzzer may interleave.
#[derive(Debug, Clone)]
enum Op {
    Crash { node: u32 },
    Restart { idx: usize },
    Kill { node: u32 },
    RackOut { rack: u16 },
    RackBack { rack: u16 },
    Read { idx: usize, readers: u32 },
    Tick,
    Advance { secs: u64 },
    Corrupt { node: u32, pick: u64 },
    TornCrash { node: u32 },
    Scrub { budget: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..18).prop_map(|node| Op::Crash { node }),
        (0usize..8).prop_map(|idx| Op::Restart { idx }),
        (0u32..18).prop_map(|node| Op::Kill { node }),
        (0u16..3).prop_map(|rack| Op::RackOut { rack }),
        (0u16..3).prop_map(|rack| Op::RackBack { rack }),
        (0usize..4, 5u32..25).prop_map(|(idx, readers)| Op::Read { idx, readers }),
        Just(Op::Tick),
        (5u64..300).prop_map(|secs| Op::Advance { secs }),
        (0u32..18, 0u64..64).prop_map(|(node, pick)| Op::Corrupt { node, pick }),
        (0u32..18).prop_map(|node| Op::TornCrash { node }),
        (1usize..32).prop_map(|budget| Op::Scrub { budget }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Whatever the schedule — crashes mid-copy, kills during boosts,
    /// rack outages over repairs — the recorded trace satisfies every
    /// oracle invariant. The oracle is the same one `trace-tools check`
    /// runs in CI, so a regression here is a regression there.
    #[test]
    fn random_fault_schedules_yield_oracle_clean_traces(
        ops in prop::collection::vec(op_strategy(), 1..40)
    ) {
        let mut c = ClusterSim::new(
            ClusterConfig::paper_testbed(),
            Box::new(ErmsPlacement::new()),
        );
        let sink = TelemetrySink::recording();
        c.set_telemetry(sink.clone());
        let mut thresholds = Thresholds::calibrate(4.0);
        thresholds.window = SimDuration::from_secs(600);
        thresholds.cold_age = SimDuration::from_secs(300);
        let ecfg = ErmsConfig::builder()
            .thresholds(thresholds)
            .standby([])
            .encode(false)
            .self_healing(true)
            .scrubber(true)
            .scrub_blocks_per_tick(24)
            .task_timeout(SimDuration::from_secs(120))
            .build()
            .expect("valid config");
        let mut m = ErmsManager::new(ecfg, &mut c).expect("valid manager");
        m.set_telemetry(sink.clone());

        let paths: Vec<String> = (0..4).map(|i| format!("/fuzz/f{i}")).collect();
        for p in &paths {
            c.create_file(p, 128 * MB, 3, None).unwrap();
        }
        c.run_until_quiescent();

        let mut crashed: Vec<NodeId> = Vec::new();
        for op in ops {
            match op {
                Op::Crash { node } => {
                    // keep a quorum of serving nodes so placement works
                    if c.serving_nodes() > 12 && c.crash_node(NodeId(node)) {
                        crashed.push(NodeId(node));
                    }
                }
                Op::Restart { idx } => {
                    if !crashed.is_empty() {
                        let n = crashed.remove(idx % crashed.len());
                        c.restart_node(n);
                    }
                }
                Op::Kill { node } => {
                    if c.serving_nodes() > 12 {
                        crashed.retain(|&n| n != NodeId(node));
                        c.kill_node(NodeId(node));
                    }
                }
                Op::RackOut { rack } => {
                    c.fail_rack_uplink(hdfs_sim::RackId(rack));
                }
                Op::RackBack { rack } => {
                    c.restore_rack_uplink(hdfs_sim::RackId(rack));
                }
                Op::Read { idx, readers } => {
                    let path = &paths[idx % paths.len()];
                    for r in 0..readers {
                        let _ = c.open_read(Endpoint::Client(ClientId(100 + r)), path);
                    }
                }
                Op::Tick => {
                    let now = c.now();
                    m.tick(&mut c, now);
                }
                Op::Advance { secs } => {
                    c.run_until(c.now() + SimDuration::from_secs(secs));
                }
                Op::Corrupt { node, pick } => {
                    c.corrupt_replica(NodeId(node), pick, false);
                }
                Op::TornCrash { node } => {
                    if c.serving_nodes() > 12 && c.crash_node_torn(NodeId(node)) {
                        crashed.push(NodeId(node));
                    }
                }
                Op::Scrub { budget } => {
                    c.scrub(budget, &[]);
                }
            }
        }
        // drain in-flight work and give the healer a few rounds
        c.run_until_quiescent();
        for _ in 0..4 {
            let now = c.now();
            m.tick(&mut c, now);
            c.run_until_quiescent();
        }

        let trace = sink.drain_jsonl();
        let (text, violations) =
            check(&trace, OracleConfig::default()).expect("fuzzed trace parses");
        prop_assert!(violations.is_empty(), "oracle violations:\n{}", text);
    }
}
