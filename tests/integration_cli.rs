//! The `trace-tools` binary's exit-code contract.
//!
//! CI gates builds on these codes, so they are part of the public
//! interface: `0` clean / identical / success, `1` invariant violations
//! or differing traces, `2` usage, I/O or parse errors — including a
//! snapshot whose format version this build does not speak, which must
//! surface as a typed error, never a panic.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_trace-tools"))
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("binary runs")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("no signal death")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("trace-tools-cli-{}-{name}", std::process::id()))
}

struct Cleanup(Vec<PathBuf>);
impl Drop for Cleanup {
    fn drop(&mut self) {
        for p in &self.0 {
            std::fs::remove_file(p).ok();
        }
    }
}

#[test]
fn help_documents_the_exit_codes_and_exits_zero() {
    let out = run(&["--help"]);
    assert_eq!(code(&out), 0);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("exit codes:"),
        "help lists exit codes: {text}"
    );
    for line in ["0  clean", "1  invariant violations", "2  usage"] {
        assert!(text.contains(line), "help documents {line:?}: {text}");
    }
    for mode in [
        "summary",
        "check",
        "diff",
        "checkpoint save",
        "checkpoint resume",
    ] {
        assert!(text.contains(mode), "help documents {mode:?}: {text}");
    }
    // `help` and `-h` spellings behave the same
    assert_eq!(code(&run(&["help"])), 0);
    assert_eq!(code(&run(&["-h"])), 0);
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(code(&run(&[])), 2, "no mode");
    assert_eq!(code(&run(&["transmogrify"])), 2, "unknown mode");
    assert_eq!(
        code(&run(&["diff", "only-one.jsonl"])),
        2,
        "missing operand"
    );
    assert_eq!(code(&run(&["checkpoint"])), 2, "missing subcommand");
    assert_eq!(code(&run(&["checkpoint", "save"])), 2, "missing flags");
    assert_eq!(
        code(&run(&[
            "summary",
            tmp("nonexistent.jsonl").to_str().unwrap()
        ])),
        2,
        "unreadable file"
    );
}

#[test]
fn clean_trace_exits_zero_and_tampered_diff_exits_one() {
    let snap = tmp("snap.json");
    let trace = tmp("trace.jsonl");
    let tampered = tmp("tampered.jsonl");
    let _cleanup = Cleanup(vec![snap.clone(), trace.clone(), tampered.clone()]);

    // produce a real trace the cheap way: checkpoint an early tick
    let out = run(&[
        "checkpoint",
        "save",
        "--scenario",
        "churn-tiny",
        "--seed",
        "3",
        "--at-tick",
        "2",
        "--out",
        snap.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "save succeeds");

    let jsonl = std::fs::read_to_string(&trace).unwrap();
    assert!(!jsonl.is_empty(), "prefix trace recorded events");
    assert_eq!(code(&run(&["check", trace.to_str().unwrap()])), 0);
    assert_eq!(
        code(&run(&[
            "diff",
            trace.to_str().unwrap(),
            trace.to_str().unwrap()
        ])),
        0,
        "a trace is identical to itself"
    );

    let shorter: String = jsonl
        .lines()
        .take(jsonl.lines().count() - 1)
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&tampered, shorter).unwrap();
    assert_eq!(
        code(&run(&[
            "diff",
            trace.to_str().unwrap(),
            tampered.to_str().unwrap()
        ])),
        1,
        "differing traces exit 1"
    );
}

#[test]
fn strict_mode_flags_skipped_lines_and_is_quiet_on_clean_traces() {
    let clean = tmp("strict-clean.jsonl");
    let dirty = tmp("strict-dirty.jsonl");
    let snap = tmp("strict-snap.json");
    let _cleanup = Cleanup(vec![clean.clone(), dirty.clone(), snap.clone()]);

    let out = run(&[
        "checkpoint",
        "save",
        "--scenario",
        "churn-tiny",
        "--seed",
        "3",
        "--at-tick",
        "2",
        "--out",
        snap.to_str().unwrap(),
        "--trace",
        clean.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "save succeeds");

    // a fully parseable trace passes strict summary and strict check
    assert_eq!(
        code(&run(&["summary", clean.to_str().unwrap(), "--strict"])),
        0
    );
    assert_eq!(
        code(&run(&["check", clean.to_str().unwrap(), "--strict"])),
        0
    );

    // splice in a line from a foreign tool: lenient modes shrug, strict
    // modes exit 1 and say how many lines they dropped
    let jsonl = std::fs::read_to_string(&clean).unwrap();
    std::fs::write(
        &dirty,
        format!("{jsonl}{{\"ev\":\"from_the_future\",\"t_ns\":1,\"seq\":999999999}}\n"),
    )
    .unwrap();
    for mode in ["summary", "check"] {
        let lenient = run(&[mode, dirty.to_str().unwrap()]);
        assert_eq!(code(&lenient), 0, "{mode} stays lenient without --strict");
        let text = String::from_utf8(lenient.stdout).unwrap();
        assert!(text.contains("skipped"), "{mode} reports the skip: {text}");

        let strict = run(&[mode, dirty.to_str().unwrap(), "--strict"]);
        assert_eq!(code(&strict), 1, "{mode} --strict turns skips into failure");
        let err = String::from_utf8(strict.stderr).unwrap();
        assert!(
            err.contains("1 skipped line"),
            "{mode} --strict counts the skips: {err}"
        );
    }
}

#[test]
fn regress_gates_pass_fail_and_garbage_with_distinct_codes() {
    let baseline = tmp("regress-base.json");
    let same = tmp("regress-same.json");
    let worse = tmp("regress-worse.json");
    let garbage = tmp("regress-garbage.json");
    let _cleanup = Cleanup(vec![
        baseline.clone(),
        same.clone(),
        worse.clone(),
        garbage.clone(),
    ]);

    std::fs::write(
        &baseline,
        r#"{"format":1,"wallclock_tolerance_pct":100,"scenarios":[
            {"name":"churn-x",
             "budgets":[{"metric":"oracle_violations","max":0}],
             "deterministic":{"read_p99_s":2.5,"oracle_violations":0},
             "wallclock":{"mean_tick_ms":1.0}}]}"#,
    )
    .unwrap();
    std::fs::write(
        &same,
        r#"{"format":1,"scenarios":[
            {"name":"churn-x",
             "deterministic":{"read_p99_s":2.5,"oracle_violations":0},
             "wallclock":{"mean_tick_ms":1.5}}]}"#,
    )
    .unwrap();
    // a seeded regression: deterministic drift plus a blown budget
    std::fs::write(
        &worse,
        r#"{"format":1,"scenarios":[
            {"name":"churn-x",
             "deterministic":{"read_p99_s":9.9,"oracle_violations":3},
             "wallclock":{"mean_tick_ms":1.5}}]}"#,
    )
    .unwrap();
    std::fs::write(&garbage, "not json at all").unwrap();

    let pass = run(&[
        "regress",
        baseline.to_str().unwrap(),
        same.to_str().unwrap(),
    ]);
    assert_eq!(code(&pass), 0, "identical deterministic metrics pass");
    let text = String::from_utf8(pass.stdout).unwrap();
    assert!(text.contains("verdict: PASS"), "report verdicts: {text}");

    let fail = run(&[
        "regress",
        baseline.to_str().unwrap(),
        worse.to_str().unwrap(),
    ]);
    assert_eq!(code(&fail), 1, "a regression exits 1");
    let text = String::from_utf8(fail.stdout).unwrap();
    assert!(text.contains("verdict: FAIL"), "report verdicts: {text}");
    assert!(text.contains("read_p99_s"), "names the metric: {text}");

    // tolerance is a flag: a huge wall-clock swing passes at 10000%
    let wide = run(&[
        "regress",
        baseline.to_str().unwrap(),
        same.to_str().unwrap(),
        "--tolerance-pct",
        "10000",
    ]);
    assert_eq!(code(&wide), 0);

    assert_eq!(
        code(&run(&[
            "regress",
            baseline.to_str().unwrap(),
            garbage.to_str().unwrap()
        ])),
        2,
        "unparseable candidate is a usage-class error"
    );
    assert_eq!(code(&run(&["regress", baseline.to_str().unwrap()])), 2);
}

#[test]
fn profile_renders_the_flame_tree_and_rejects_garbage() {
    let profile = tmp("profile.json");
    let garbage = tmp("profile-garbage.json");
    let _cleanup = Cleanup(vec![profile.clone(), garbage.clone()]);

    std::fs::write(
        &profile,
        r#"{"name":"","calls":0,"wall_ns":0,"max_ns":0,"alloc":0,"children":[
            {"name":"tick","calls":10,"wall_ns":5000000,"max_ns":900000,"alloc":42,
             "children":[{"name":"judge","calls":10,"wall_ns":4000000,"max_ns":800000,
                          "alloc":40,"children":[]}]}]}"#,
    )
    .unwrap();
    let out = run(&["profile", profile.to_str().unwrap()]);
    assert_eq!(code(&out), 0);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("tick"), "tree lists the phase: {text}");
    assert!(text.contains("judge"), "tree nests children: {text}");
    assert!(text.contains("parent%"), "tree shows shares: {text}");

    std::fs::write(&garbage, "[]").unwrap();
    assert_eq!(code(&run(&["profile", garbage.to_str().unwrap()])), 2);
    assert_eq!(
        code(&run(&[
            "profile",
            tmp("missing-profile.json").to_str().unwrap()
        ])),
        2
    );
}

#[test]
fn unsupported_snapshot_version_is_a_typed_error_not_a_panic() {
    let snap = tmp("future.json");
    let _cleanup = Cleanup(vec![snap.clone()]);
    std::fs::write(
        &snap,
        r#"{"version":99,"meta":{"scenario":"churn-tiny","seed":1,"tick":0},"sections":{}}"#,
    )
    .unwrap();
    for sub in ["info", "resume"] {
        let out = run(&["checkpoint", sub, "--snapshot", snap.to_str().unwrap()]);
        assert_eq!(code(&out), 2, "{sub} rejects the future version");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("version"), "{sub} names the problem: {err}");
    }
}

#[test]
fn checkpoint_rejects_unknown_scenario_listing_the_known_ones() {
    let out = run(&[
        "checkpoint",
        "save",
        "--scenario",
        "churn-galactic",
        "--at-tick",
        "1",
        "--out",
        tmp("never.json").to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 2);
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("churn-small"), "lists known scenarios: {err}");
}
