//! The `trace-tools` binary's exit-code contract.
//!
//! CI gates builds on these codes, so they are part of the public
//! interface: `0` clean / identical / success, `1` invariant violations
//! or differing traces, `2` usage, I/O or parse errors — including a
//! snapshot whose format version this build does not speak, which must
//! surface as a typed error, never a panic.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_trace-tools"))
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("binary runs")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("no signal death")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("trace-tools-cli-{}-{name}", std::process::id()))
}

struct Cleanup(Vec<PathBuf>);
impl Drop for Cleanup {
    fn drop(&mut self) {
        for p in &self.0 {
            std::fs::remove_file(p).ok();
        }
    }
}

#[test]
fn help_documents_the_exit_codes_and_exits_zero() {
    let out = run(&["--help"]);
    assert_eq!(code(&out), 0);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("exit codes:"),
        "help lists exit codes: {text}"
    );
    for line in ["0  clean", "1  invariant violations", "2  usage"] {
        assert!(text.contains(line), "help documents {line:?}: {text}");
    }
    for mode in [
        "summary",
        "check",
        "diff",
        "checkpoint save",
        "checkpoint resume",
    ] {
        assert!(text.contains(mode), "help documents {mode:?}: {text}");
    }
    // `help` and `-h` spellings behave the same
    assert_eq!(code(&run(&["help"])), 0);
    assert_eq!(code(&run(&["-h"])), 0);
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(code(&run(&[])), 2, "no mode");
    assert_eq!(code(&run(&["transmogrify"])), 2, "unknown mode");
    assert_eq!(
        code(&run(&["diff", "only-one.jsonl"])),
        2,
        "missing operand"
    );
    assert_eq!(code(&run(&["checkpoint"])), 2, "missing subcommand");
    assert_eq!(code(&run(&["checkpoint", "save"])), 2, "missing flags");
    assert_eq!(
        code(&run(&[
            "summary",
            tmp("nonexistent.jsonl").to_str().unwrap()
        ])),
        2,
        "unreadable file"
    );
}

#[test]
fn clean_trace_exits_zero_and_tampered_diff_exits_one() {
    let snap = tmp("snap.json");
    let trace = tmp("trace.jsonl");
    let tampered = tmp("tampered.jsonl");
    let _cleanup = Cleanup(vec![snap.clone(), trace.clone(), tampered.clone()]);

    // produce a real trace the cheap way: checkpoint an early tick
    let out = run(&[
        "checkpoint",
        "save",
        "--scenario",
        "churn-tiny",
        "--seed",
        "3",
        "--at-tick",
        "2",
        "--out",
        snap.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "save succeeds");

    let jsonl = std::fs::read_to_string(&trace).unwrap();
    assert!(!jsonl.is_empty(), "prefix trace recorded events");
    assert_eq!(code(&run(&["check", trace.to_str().unwrap()])), 0);
    assert_eq!(
        code(&run(&[
            "diff",
            trace.to_str().unwrap(),
            trace.to_str().unwrap()
        ])),
        0,
        "a trace is identical to itself"
    );

    let shorter: String = jsonl
        .lines()
        .take(jsonl.lines().count() - 1)
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&tampered, shorter).unwrap();
    assert_eq!(
        code(&run(&[
            "diff",
            trace.to_str().unwrap(),
            tampered.to_str().unwrap()
        ])),
        1,
        "differing traces exit 1"
    );
}

#[test]
fn unsupported_snapshot_version_is_a_typed_error_not_a_panic() {
    let snap = tmp("future.json");
    let _cleanup = Cleanup(vec![snap.clone()]);
    std::fs::write(
        &snap,
        r#"{"version":99,"meta":{"scenario":"churn-tiny","seed":1,"tick":0},"sections":{}}"#,
    )
    .unwrap();
    for sub in ["info", "resume"] {
        let out = run(&["checkpoint", sub, "--snapshot", snap.to_str().unwrap()]);
        assert_eq!(code(&out), 2, "{sub} rejects the future version");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("version"), "{sub} names the problem: {err}");
    }
}

#[test]
fn checkpoint_rejects_unknown_scenario_listing_the_known_ones() {
    let out = run(&[
        "checkpoint",
        "save",
        "--scenario",
        "churn-galactic",
        "--at-tick",
        "1",
        "--out",
        tmp("never.json").to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 2);
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("churn-small"), "lists known scenarios: {err}");
}
