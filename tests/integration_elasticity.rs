//! Integration: trace replay with the MapReduce runner, ERMS in the
//! controller seat — the Figure 3/5 pipeline end to end, at test scale.

use erms::{ErmsConfig, ErmsManager, ErmsPlacement, Thresholds};
use hdfs_sim::{ClusterConfig, ClusterSim, DefaultRackAware};
use mapred::{FairScheduler, FifoScheduler, JobSpec, MapReduceRunner, RunnerConfig, TaskScheduler};
use simcore::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;
use workload::{Trace, TraceConfig};

fn trace() -> Trace {
    Trace::synthesize(
        &TraceConfig {
            num_files: 10,
            num_jobs: 80,
            creation_window_secs: 400.0,
            mean_interarrival_secs: 4.0,
            compute_per_block_secs: 0.5,
            max_file_mb: 512,
            zipf_exponent: 1.3,
            ..TraceConfig::default()
        },
        11,
    )
}

fn replay(erms: bool, fair: bool) -> (Vec<mapred::JobStats>, ClusterSim, u64) {
    let trace = trace();
    let mut cluster = if erms {
        ClusterSim::new(
            ClusterConfig::paper_testbed(),
            Box::new(ErmsPlacement::new()),
        )
    } else {
        ClusterSim::new(ClusterConfig::paper_testbed(), Box::new(DefaultRackAware))
    };
    for f in &trace.files {
        cluster.create_file(&f.path, f.size, 3, None).unwrap();
    }
    let manager = if erms {
        let cfg = ErmsConfig::builder()
            .thresholds(Thresholds::default().with_tau_hot(4.0))
            .standby([])
            .build()
            .expect("valid config");
        Some(Rc::new(RefCell::new(
            ErmsManager::new(cfg, &mut cluster).expect("valid manager"),
        )))
    } else {
        None
    };
    let sched: Box<dyn TaskScheduler> = if fair {
        Box::new(FairScheduler::default())
    } else {
        Box::new(FifoScheduler)
    };
    let mut runner = MapReduceRunner::new(
        cluster,
        sched,
        RunnerConfig {
            controller_interval: SimDuration::from_secs(60),
            ..RunnerConfig::default()
        },
    );
    if let Some(m) = &manager {
        let m = m.clone();
        runner.set_controller(Box::new(move |c, t| {
            m.borrow_mut().tick(c, t);
        }));
    }
    for j in &trace.jobs {
        runner.submit(JobSpec {
            name: j.name.clone(),
            input: j.input.clone(),
            submit_at: SimTime::from_secs_f64(j.submit_at_secs),
            compute_per_block: SimDuration::from_secs_f64(j.compute_per_block_secs),
            reduce_duration: SimDuration::from_secs_f64(j.reduce_secs),
        });
    }
    let (stats, cluster) = runner.run();
    let actions = manager.map(|m| m.borrow().total_completed).unwrap_or(0);
    (stats, cluster, actions)
}

fn locality(stats: &[mapred::JobStats]) -> f64 {
    let local: u32 = stats.iter().map(|s| s.node_local_tasks).sum();
    let total: u32 = stats.iter().map(|s| s.map_tasks).sum();
    local as f64 / total.max(1) as f64
}

#[test]
fn every_job_completes_under_all_variants() {
    for erms in [false, true] {
        for fair in [false, true] {
            let (stats, cluster, _) = replay(erms, fair);
            assert_eq!(stats.len(), 80, "erms={erms} fair={fair}");
            assert!(stats.iter().all(|s| s.map_tasks > 0));
            assert!(cluster.is_idle());
        }
    }
}

#[test]
fn erms_acts_and_improves_fifo_locality() {
    let (vanilla, _, a0) = replay(false, false);
    let (managed, _, a1) = replay(true, false);
    assert_eq!(a0, 0);
    assert!(a1 > 0, "ERMS must complete replication tasks");
    let (lv, le) = (locality(&vanilla), locality(&managed));
    assert!(
        le > lv,
        "ERMS should raise FIFO locality: {le:.3} vs {lv:.3}"
    );
}

#[test]
fn fair_scheduler_beats_fifo_on_locality_without_erms() {
    let (fifo, _, _) = replay(false, false);
    let (fair, _, _) = replay(false, true);
    assert!(
        locality(&fair) > locality(&fifo),
        "delay scheduling should raise locality: {:.3} vs {:.3}",
        locality(&fair),
        locality(&fifo)
    );
}

#[test]
fn replay_is_deterministic() {
    let (a, _, acts_a) = replay(true, true);
    let (b, _, acts_b) = replay(true, true);
    assert_eq!(acts_a, acts_b);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.finished, y.finished);
        assert_eq!(x.node_local_tasks, y.node_local_tasks);
    }
}
