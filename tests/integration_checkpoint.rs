//! Resume-equivalence guard for the checkpoint subsystem.
//!
//! The contract under test: checkpointing a seeded churn run at tick T,
//! serialising the snapshot through its JSON wire format, resuming, and
//! running to the horizon is *indistinguishable* from never having
//! stopped — the telemetry JSONL prefix (drained before the snapshot)
//! plus the resumed suffix concatenate into the byte-identical
//! straight-through trace, and the final snapshots (cluster, manager,
//! runner — the entire deterministic state) compare equal. The guard
//! runs under both judge modes (incremental and forced full rescan),
//! the trace-invariant oracle vets every trace it sees, and a property
//! test moves the checkpoint tick and fault schedule around.

use bench::checkpointing::{ResumableRun, Scenario};
use checkpoint::Snapshot;
use proptest::prelude::*;
use trace_tools::{check, OracleConfig};

/// Straight-through run: full trace plus the final-state snapshot JSON.
fn straight(scenario: Scenario, seed: u64) -> (String, String) {
    let mut run = ResumableRun::new(scenario, seed);
    run.finish();
    let trace = run.drain_trace();
    (trace, run.save().to_json())
}

/// Checkpoint at `at_tick`, push the snapshot through JSON, resume and
/// finish. Returns (prefix + suffix trace, final-state snapshot JSON).
fn split(scenario: Scenario, seed: u64, at_tick: u64) -> (String, String) {
    let mut run = ResumableRun::new(scenario, seed);
    run.run_to_tick(at_tick);
    let prefix = run.drain_trace();
    let wire = run.save().to_json();
    drop(run); // the "process" ends here

    let snap = Snapshot::from_json(&wire).expect("snapshot round-trips");
    assert_eq!(snap.meta.tick, at_tick);
    let mut resumed = ResumableRun::resume(&snap).expect("snapshot resumes");
    resumed.finish();
    let suffix = resumed.drain_trace();
    (format!("{prefix}{suffix}"), resumed.save().to_json())
}

fn assert_oracle_clean(trace: &str) {
    let (text, violations) = check(trace, OracleConfig::default()).expect("trace parses");
    assert!(violations.is_empty(), "oracle violations:\n{text}");
}

fn assert_equivalent(scenario: fn() -> Scenario, seed: u64, at_tick: u64) {
    let (trace_a, state_a) = straight(scenario(), seed);
    let (trace_b, state_b) = split(scenario(), seed, at_tick);
    assert!(!trace_a.is_empty(), "run traced events");
    assert_eq!(
        trace_a, trace_b,
        "prefix+suffix must be the byte-identical straight-through trace"
    );
    assert_eq!(state_a, state_b, "final snapshots must compare equal");
    assert_oracle_clean(&trace_a);
}

#[test]
fn resume_is_equivalent_incremental() {
    assert_equivalent(Scenario::churn_small, 42, 40);
}

#[test]
fn resume_is_equivalent_full_rescan() {
    assert_equivalent(Scenario::churn_small_full, 42, 40);
}

#[test]
fn resume_at_the_first_and_last_tick_boundaries() {
    // degenerate checkpoints: before any tick ran, and after the horizon
    let s = Scenario::churn_tiny;
    let (trace_a, state_a) = straight(s(), 11);
    for at in [0, s().total_ticks] {
        let (trace_b, state_b) = split(s(), 11, at);
        assert_eq!(trace_a, trace_b, "checkpoint at tick {at}");
        assert_eq!(state_a, state_b, "checkpoint at tick {at}");
    }
}

#[test]
fn resume_is_equivalent_with_the_qlearning_judge() {
    // Mid-run state now includes the Q-table (sparse diffs against the
    // warm-start init), visit counts and the pending reward map; the
    // byte-identical guard must hold with ε-greedy exploration and
    // batched end-of-pass updates in flight.
    assert_equivalent(Scenario::churn_learned_q, 42, 25);
}

#[test]
fn resume_is_equivalent_with_the_hmm_judge() {
    // Per-path posterior beliefs (raw f64 bits) must survive the
    // snapshot so the forward filter continues from the exact state.
    assert_equivalent(Scenario::churn_learned_hmm, 42, 25);
}

#[test]
fn learned_backends_are_deterministic_per_seed() {
    for s in [Scenario::churn_learned_q, Scenario::churn_learned_hmm] {
        let (trace_a, state_a) = straight(s(), 7);
        let (trace_b, state_b) = straight(s(), 7);
        assert_eq!(trace_a, trace_b, "{}: same seed, same trace", s().name);
        assert_eq!(state_a, state_b, "{}: same seed, same state", s().name);
    }
}

#[test]
fn resume_is_equivalent_with_production_traffic_and_encoding() {
    // The tiered scenario drives wave-structured workload traffic
    // (creates + reads regenerated from the seed on resume, never
    // serialized) with cold-data erasure coding on — the checkpoint now
    // lands mid-trace with stripes, EC state and the ops schedule all
    // in play.
    assert_equivalent(Scenario::prod_tiered, 42, 100);
}

#[test]
fn resume_is_equivalent_with_corruption_and_scrubbing() {
    // Mid-run state now includes latent-corruption maps, quarantine
    // sets and the scrub cursor; the byte-identical guard must still
    // hold with the storm active and the scrubber mid-sweep, and the
    // combined trace must show the corruption pipeline actually ran.
    let (trace_a, state_a) = straight(Scenario::churn_corrupt(), 42);
    let (trace_b, state_b) = split(Scenario::churn_corrupt(), 42, 25);
    assert!(
        trace_a.contains("\"ev\":\"corruption_injected\""),
        "storm injected rot"
    );
    assert!(
        trace_a.contains("\"ev\":\"scrub_progress\""),
        "scrubber swept"
    );
    assert_eq!(
        trace_a, trace_b,
        "prefix+suffix must be the byte-identical straight-through trace"
    );
    assert_eq!(state_a, state_b, "final snapshots must compare equal");
    assert_oracle_clean(&trace_a);
}

#[test]
fn resumed_run_restores_the_metric_registry() {
    // The metric registry is part of the snapshot ("metrics" section):
    // counters, gauges and histograms resume from their saved values,
    // so the final metric snapshot — percentile estimates, bucket
    // vectors, float bits and all — is byte-identical to the
    // straight-through run's. (This was a known deviation before the
    // registry became Checkpointable.)
    let mut a = ResumableRun::new(Scenario::churn_small(), 42);
    a.finish();
    let metrics_a = a.metrics_snapshot().expect("recording sink");
    assert!(
        metrics_a.contains("erms.hot_verdicts"),
        "run accumulated manager counters: {metrics_a}"
    );

    let mut b = ResumableRun::new(Scenario::churn_small(), 42);
    b.run_to_tick(40);
    let wire = b.save().to_json();
    drop(b);
    let snap = Snapshot::from_json(&wire).expect("snapshot round-trips");
    let mut resumed = ResumableRun::resume(&snap).expect("snapshot resumes");
    resumed.finish();
    let metrics_b = resumed.metrics_snapshot().expect("recording sink");

    assert_eq!(
        metrics_a, metrics_b,
        "metric snapshots must be byte-identical straight-through vs resumed"
    );
}

#[test]
fn resume_equivalence_holds_with_the_profiler_enabled() {
    // The profiler records wall-clock state outside the sim-time world;
    // enabling it must not perturb traces, metrics or snapshots.
    simcore::profiler::reset();
    simcore::profiler::set_enabled(true);
    let (trace_a, state_a) = straight(Scenario::churn_tiny(), 42);
    let (trace_b, state_b) = split(Scenario::churn_tiny(), 42, 20);
    simcore::profiler::set_enabled(false);
    let profile = simcore::profiler::snapshot();
    simcore::profiler::reset();
    assert_eq!(trace_a, trace_b, "profiler must not perturb the trace");
    assert_eq!(state_a, state_b, "profiler must not perturb snapshots");
    assert_oracle_clean(&trace_a);
    // ...and it actually profiled the runs it watched.
    let tick = profile.find("tick").expect("tick phase recorded");
    assert!(tick.calls > 0);
    assert!(profile.find("tick/judge/shard0").is_some());
}

#[test]
fn snapshot_survives_the_file_round_trip() {
    let mut run = ResumableRun::new(Scenario::churn_tiny(), 5);
    run.run_to_tick(10);
    let snap = run.save();
    let path = std::env::temp_dir().join(format!("erms-ckpt-test-{}.json", std::process::id()));
    snap.write_file(&path).expect("snapshot writes");
    let back = Snapshot::read_file(&path).expect("snapshot reads");
    std::fs::remove_file(&path).ok();
    assert_eq!(back.to_json(), snap.to_json());
    assert!(ResumableRun::resume(&back).is_ok());
}

#[test]
fn crash_restart_trace_stays_oracle_clean() {
    // A restart is *not* an exact resume: in-flight tasks are failed and
    // compensated via the journal's rollback plan. The combined trace
    // must still satisfy every invariant the oracle checks, and the run
    // must still reach the horizon with a clean journal.
    let mut run = ResumableRun::new(Scenario::churn_small(), 42);
    run.run_to_tick(40);
    let prefix = run.drain_trace();
    let wire = run.save().to_json();
    drop(run);

    let snap = Snapshot::from_json(&wire).expect("snapshot round-trips");
    let (mut restarted, _recovered) =
        ResumableRun::crash_restart(&snap).expect("snapshot restarts");
    restarted.finish();
    let suffix = restarted.drain_trace();
    assert_oracle_clean(&format!("{prefix}{suffix}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Wherever the checkpoint lands in whatever fault schedule, the
    /// resumed run is byte-equivalent to the straight-through one.
    #[test]
    fn resume_equivalence_holds_anywhere(seed in 1u64..500, at_tick in 1u64..70) {
        let (trace_a, state_a) = straight(Scenario::churn_tiny(), seed);
        let (trace_b, state_b) = split(Scenario::churn_tiny(), seed, at_tick);
        prop_assert_eq!(trace_a, trace_b);
        prop_assert_eq!(state_a, state_b);
    }
}
