//! Integration: the simulator's cold-storage layout backed by real
//! Reed–Solomon bytes — the placement decided by the cluster and the
//! redundancy math of the `erasure` crate must agree about survivability.

use erasure::{ErasurePattern, ReedSolomon, StripeLayout, StripePlan};
use erms::{ErmsConfig, ErmsManager, ErmsPlacement, Thresholds};
use hdfs_sim::{ClusterConfig, ClusterSim, NodeId};
use simcore::units::MB;
use simcore::SimDuration;

fn encoded_cluster(blocks: u64) -> (ClusterSim, ErmsManager, hdfs_sim::FileId) {
    let mut cluster = ClusterSim::new(
        ClusterConfig::paper_testbed(),
        Box::new(ErmsPlacement::new()),
    );
    let mut thresholds = Thresholds::calibrate(8.0);
    thresholds.cold_age = SimDuration::from_secs(300);
    let cfg = ErmsConfig::builder()
        .thresholds(thresholds)
        .standby([])
        .build()
        .expect("valid config");
    let mut manager = ErmsManager::new(cfg, &mut cluster).expect("valid manager");
    let file = cluster
        .create_file("/cold/archive", blocks * 64 * MB, 3, None)
        .expect("fresh cluster");
    cluster.run_until(cluster.now() + SimDuration::from_secs(600));
    for _ in 0..3 {
        let now = cluster.now();
        manager.tick(&mut cluster, now);
    }
    assert!(cluster.namespace().file(file).expect("exists").is_encoded());
    (cluster, manager, file)
}

#[test]
fn encoded_layout_matches_stripe_plan() {
    let (cluster, _m, file) = encoded_cluster(25);
    let meta = cluster.namespace().file(file).unwrap();
    let plan = StripePlan::for_file(25, 64 * MB, StripeLayout::paper_default());
    // 25 blocks -> 3 stripes -> 12 parity blocks
    let parities = match &meta.mode {
        hdfs_sim::namespace::StorageMode::Encoded { parity_blocks } => parity_blocks.clone(),
        other => panic!("expected encoded mode, got {other:?}"),
    };
    assert_eq!(parities.len(), plan.total_parity_blocks());
    // data blocks are at replication 1; parity blocks stored once each
    for &b in &meta.blocks {
        assert_eq!(cluster.blockmap().replica_count(b), 1);
    }
    for &p in &parities {
        assert_eq!(cluster.blockmap().replica_count(p), 1);
        assert!(cluster.namespace().block(p).unwrap().is_parity);
    }
    // storage equals the plan's accounting
    assert_eq!(cluster.storage_used(), plan.encoded_bytes(25));
}

#[test]
fn single_node_loss_is_recoverable_per_stripe() {
    let (mut cluster, _m, file) = encoded_cluster(10);
    let meta = cluster.namespace().file(file).unwrap();
    let data_blocks = meta.blocks.clone();
    let parities = match &meta.mode {
        hdfs_sim::namespace::StorageMode::Encoded { parity_blocks } => parity_blocks.clone(),
        _ => unreachable!(),
    };
    // the stripe is 10 data + 4 parity = 14 shards; record each shard's node
    let stripe: Vec<hdfs_sim::BlockId> = data_blocks.iter().chain(&parities).copied().collect();
    assert_eq!(stripe.len(), 14);
    let holders: Vec<NodeId> = stripe
        .iter()
        .map(|&b| cluster.blockmap().replica_nodes(b)[0])
        .collect();

    // kill the node holding the most shards of this stripe
    let mut counts = std::collections::BTreeMap::new();
    for &h in &holders {
        *counts.entry(h).or_insert(0u32) += 1;
    }
    let (&victim, &lost_shards) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
    cluster.kill_node(victim);

    // survivability per the erasure math: the stripe must still decode
    let erased: Vec<usize> = holders
        .iter()
        .enumerate()
        .filter(|(_, &h)| h == victim)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(erased.len() as u32, lost_shards);
    let pattern = ErasurePattern::from_indices(14, &erased);
    assert!(
        pattern.recoverable_with(10),
        "losing one node ({lost_shards} shards) must stay within RS(10,4) tolerance \
         — Algorithm 1 spreads stripe shards across nodes"
    );

    // and prove it with bytes: build the stripe, erase, reconstruct
    let rs = ReedSolomon::new(10, 4).unwrap();
    let payloads: Vec<Vec<u8>> = (0..10)
        .map(|i| (0..4096).map(|j| ((i * 37 + j) % 251) as u8).collect())
        .collect();
    let parity = rs.encode(&payloads).unwrap();
    let mut shards: Vec<Option<Vec<u8>>> =
        payloads.iter().cloned().chain(parity).map(Some).collect();
    for &i in &erased {
        shards[i] = None;
    }
    rs.reconstruct(&mut shards).expect("byte-level recovery");
    for (i, original) in payloads.iter().enumerate() {
        assert_eq!(shards[i].as_ref().unwrap(), original);
    }
}

#[test]
fn parity_placement_avoids_data_heavy_nodes() {
    let (cluster, _m, file) = encoded_cluster(10);
    let meta = cluster.namespace().file(file).unwrap();
    let parities = match &meta.mode {
        hdfs_sim::namespace::StorageMode::Encoded { parity_blocks } => parity_blocks.clone(),
        _ => unreachable!(),
    };
    // Algorithm 1: parity goes to the node with the fewest blocks of the
    // file. With 10 data blocks on ≤10 distinct nodes and 18 nodes total,
    // no node should end up with a disproportionate share of the stripe.
    let stripe: Vec<hdfs_sim::BlockId> = meta.blocks.iter().chain(&parities).copied().collect();
    let mut per_node = std::collections::BTreeMap::new();
    for &b in &stripe {
        for &n in cluster.blockmap().replica_nodes(b) {
            *per_node.entry(n).or_insert(0u32) += 1;
        }
    }
    let max_share = per_node.values().max().copied().unwrap_or(0);
    assert!(
        max_share <= 4,
        "stripe shards must stay spread (max {max_share} on one node) so node loss is recoverable"
    );
}

#[test]
fn decode_restores_full_replication_and_frees_parity() {
    let (mut cluster, mut manager, file) = encoded_cluster(10);
    let before = cluster.storage_used();
    // demand returns
    for i in 0..40 {
        cluster
            .open_read(
                hdfs_sim::topology::Endpoint::Client(hdfs_sim::topology::ClientId(i)),
                "/cold/archive",
            )
            .unwrap();
    }
    cluster.run_until_quiescent();
    for _ in 0..6 {
        let now = cluster.now();
        manager.tick(&mut cluster, now);
        cluster.run_until(cluster.now() + SimDuration::from_secs(30));
        cluster.run_until_quiescent();
    }
    let meta = cluster.namespace().file(file).unwrap();
    assert!(!meta.is_encoded());
    for &b in &meta.blocks {
        assert!(cluster.blockmap().replica_count(b) >= 3);
    }
    // parity metadata gone from the namespace
    assert_eq!(cluster.namespace().num_blocks(), meta.blocks.len());
    assert!(cluster.storage_used() > before, "replicas rebuilt");
}
