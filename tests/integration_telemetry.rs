//! Integration: the telemetry subsystem end to end — one recording sink
//! shared by the cluster, the CEP engine, the Condor scheduler and the
//! ERMS manager must capture the whole control loop as a deterministic
//! JSONL trace: two runs of the same seeded scenario produce
//! byte-identical bytes, and a disabled sink records nothing.

use erms::prelude::*;
use hdfs_sim::topology::{ClientId, Endpoint};
use simcore::units::MB;

/// One seeded scenario: hot file boosted, faults injected, self-healing
/// repairs — exercising every telemetry emission site. Returns the full
/// JSONL trace and the final metrics snapshot.
fn traced_run() -> (String, String) {
    let mut cluster = ClusterSim::new(
        ClusterConfig::paper_testbed(),
        Box::new(ErmsPlacement::new()),
    );
    let sink = TelemetrySink::recording();
    cluster.set_telemetry(sink.clone());

    let mut thresholds = Thresholds::calibrate(4.0);
    thresholds.window = SimDuration::from_secs(600);
    thresholds.cold_age = SimDuration::from_secs(300);
    let cfg = ErmsConfig::builder()
        .thresholds(thresholds)
        .standby([])
        .encode(false)
        .self_healing(true)
        .task_timeout(SimDuration::from_secs(120))
        .build()
        .expect("valid config");
    let mut erms = ErmsManager::new(cfg, &mut cluster).expect("valid manager");
    erms.set_telemetry(sink.clone());

    cluster.create_file("/hot", 256 * MB, 3, None).unwrap();
    // one streamed write so the trace includes the write pipeline too
    cluster
        .write_file(Endpoint::Client(ClientId(900)), "/quiet", 128 * MB, 3)
        .unwrap();
    cluster.run_until_quiescent();

    // flash crowd → boost
    for i in 0..40u32 {
        cluster
            .open_read(Endpoint::Client(ClientId(i)), "/hot")
            .unwrap();
    }
    cluster.run_until_quiescent();
    for _ in 0..4 {
        let now = cluster.now();
        erms.tick(&mut cluster, now);
        cluster.run_until_quiescent();
    }

    // a kill → repair scan re-replicates
    let b = cluster.namespace().files().next().unwrap().blocks[0];
    let victim = cluster.blockmap().replica_nodes(b)[0];
    cluster.kill_node(victim);
    for _ in 0..4 {
        let now = cluster.now();
        erms.tick(&mut cluster, now);
        cluster.run_until_quiescent();
    }

    let now = cluster.now();
    let metrics = sink.snapshot_json(now).expect("recording sink");
    (sink.drain_jsonl(), metrics)
}

#[test]
fn same_seed_runs_emit_byte_identical_traces() {
    let (trace_a, metrics_a) = traced_run();
    let (trace_b, metrics_b) = traced_run();
    assert!(!trace_a.is_empty(), "scenario produced events");
    assert_eq!(trace_a, trace_b, "JSONL trace must be byte-identical");
    assert_eq!(metrics_a, metrics_b, "metrics snapshot must match");
}

#[test]
fn trace_covers_every_layer_of_the_stack() {
    let (trace, metrics) = traced_run();
    // cluster I/O, CEP, manager decisions, condor, self-healing all
    // appear in a single merged stream
    for kind in [
        "\"ev\":\"read_started\"",
        "\"ev\":\"write_finished\"",
        "\"ev\":\"window_emit\"",
        "\"ev\":\"verdict\"",
        "\"ev\":\"replication_boost\"",
        "\"ev\":\"task_queued\"",
        "\"ev\":\"task_dispatched\"",
        "\"ev\":\"copy_completed\"",
        "\"ev\":\"repair_scan\"",
    ] {
        assert!(trace.contains(kind), "missing {kind}");
    }
    // event order carries monotone sequence numbers
    let seqs: Vec<u64> = trace
        .lines()
        .map(|l| {
            let tail = l.split("\"seq\":").nth(1).expect("seq field");
            tail.split(&[',', '}'][..])
                .next()
                .unwrap()
                .parse()
                .expect("seq is u64")
        })
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seq strictly rises");
    // the registry aggregated the same story
    assert!(metrics.contains("\"hdfs.reads_finished\":"), "{metrics}");
    assert!(metrics.contains("\"erms.hot_verdicts\":"), "{metrics}");
}

#[test]
fn disabled_sink_leaves_no_trace() {
    let mut cluster = ClusterSim::new(
        ClusterConfig::paper_testbed(),
        Box::new(ErmsPlacement::new()),
    );
    // never call set_telemetry: both cluster and manager default to the
    // disabled sink
    let cfg = ErmsConfig::builder().standby([]).build().unwrap();
    let mut erms = ErmsManager::new(cfg, &mut cluster).unwrap();
    cluster.create_file("/f", 64 * MB, 3, None).unwrap();
    for i in 0..20u32 {
        cluster
            .open_read(Endpoint::Client(ClientId(i)), "/f")
            .unwrap();
    }
    cluster.run_until_quiescent();
    let now = cluster.now();
    erms.tick(&mut cluster, now);
    assert!(!cluster.telemetry().enabled());
    assert_eq!(cluster.telemetry().event_count(), 0);
    assert!(cluster.telemetry().snapshot_json(now).is_none());
}
