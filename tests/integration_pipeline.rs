//! Cross-crate integration: the full audit → CEP → judge → Condor →
//! cluster pipeline, including failure injection and rollback.

use erms::{ErmsConfig, ErmsManager, ErmsPlacement, Thresholds};
use hdfs_sim::topology::{ClientId, Endpoint};
use hdfs_sim::{ClusterConfig, ClusterSim, NodeId};
use simcore::units::MB;
use simcore::SimDuration;

fn fast_thresholds() -> Thresholds {
    let mut t = Thresholds::calibrate(4.0);
    t.window = SimDuration::from_secs(600);
    t.cold_age = SimDuration::from_secs(600);
    t
}

fn erms_cluster(standby: Vec<NodeId>) -> (ClusterSim, ErmsManager) {
    let mut cluster = ClusterSim::new(
        ClusterConfig::paper_testbed(),
        Box::new(ErmsPlacement::new()),
    );
    let cfg = ErmsConfig::builder()
        .thresholds(fast_thresholds())
        .standby(standby)
        .build()
        .expect("valid config");
    let manager = ErmsManager::new(cfg, &mut cluster).expect("valid manager");
    (cluster, manager)
}

fn hammer(cluster: &mut ClusterSim, path: &str, n: u32, base: u32) {
    for i in 0..n {
        cluster
            .open_read(Endpoint::Client(ClientId(base + i)), path)
            .expect("path exists");
    }
    cluster.run_until_quiescent();
}

fn settle(cluster: &mut ClusterSim, manager: &mut ErmsManager, rounds: usize) {
    for _ in 0..rounds {
        let now = cluster.now();
        manager.tick(cluster, now);
        cluster.run_until(cluster.now() + SimDuration::from_secs(45));
        cluster.run_until_quiescent();
    }
}

#[test]
fn audit_text_is_the_only_channel_between_cluster_and_judge() {
    // The judge must learn about demand exclusively through parsed audit
    // lines: feed it a manually formatted log and check classification.
    let (mut cluster, mut manager) = erms_cluster(Vec::new());
    cluster.create_file("/hot", 64 * MB, 3, None).unwrap();
    hammer(&mut cluster, "/hot", 40, 0);

    // intercept the audit stream before the manager sees it
    let lines = cluster.drain_audit();
    assert!(lines.iter().any(|l| l.contains("cmd=open")));
    assert!(lines.iter().any(|l| l.contains("cmd=read_block")));
    let (events, bad) = cep::audit::parse_log(&lines.join("\n"));
    assert_eq!(bad, 0, "simulator emits parseable HDFS log lines");
    assert!(events.len() >= 80, "one open + one clienttrace per read");

    // hand the same lines to the judge manually
    manager
        .judge()
        .observe_lines(lines.iter().map(String::as_str));
    let now = cluster.now();
    let snap = erms::FileSnapshot {
        id: hdfs_sim::FileId(0),
        path: "/hot".into(),
        replication: 3,
        blocks: vec![hdfs_sim::BlockId(0)],
        last_access: now,
        boosted: false,
        encoded: false,
    };
    let verdict = manager.judge().classify(now, &snap);
    assert_eq!(verdict.class, erms::DataClass::Hot);
    assert_eq!(verdict.rule, erms::JudgeRule::FilePressure);
    assert_eq!(
        verdict.rule.code(),
        1,
        "wire code for Formula (1) is stable"
    );
}

#[test]
fn boost_survives_node_failure_with_retry() {
    let (mut cluster, mut manager) = erms_cluster(Vec::new());
    let file = cluster.create_file("/hot", 128 * MB, 3, None).unwrap();
    hammer(&mut cluster, "/hot", 40, 0);

    // first tick submits the increase; kill a replica holder while the
    // copies are in flight
    let now = cluster.now();
    manager.tick(&mut cluster, now);
    let block = cluster.namespace().file(file).unwrap().blocks[0];
    let victim = cluster.blockmap().replica_nodes(block)[0];
    cluster.run_until(cluster.now() + SimDuration::from_secs(4));
    cluster.kill_node(victim);
    cluster.repair_under_replicated();
    settle(&mut cluster, &mut manager, 6);

    // the boost must eventually land despite the failure
    let r = cluster.blockmap().replica_count(block);
    assert!(r > 3, "boost should survive a node death, got r={r}");
    assert!(!cluster.blockmap().holds(block, victim));
    // journal shows the story: at least one submit and one completion
    let journal = manager.condor().journal();
    let replay = journal.replay();
    assert!(replay
        .values()
        .any(|s| *s == condor::journal::ReplayState::Completed));
}

#[test]
fn standby_commissioning_goes_through_classads() {
    let (mut cluster, mut manager) = erms_cluster((10..18).map(NodeId).collect());
    assert_eq!(cluster.serving_nodes(), 10);
    cluster.create_file("/hot", 64 * MB, 3, None).unwrap();
    hammer(&mut cluster, "/hot", 60, 0);

    let now = cluster.now();
    let report = manager.tick(&mut cluster, now);
    assert!(
        !report.commissioned.is_empty(),
        "matchmaker should commission standby nodes"
    );
    for n in &report.commissioned {
        assert!(manager.model().is_standby(*n));
    }
    settle(&mut cluster, &mut manager, 6);
    assert!(
        cluster.serving_nodes() > 10,
        "commissioned nodes must be serving"
    );
}

#[test]
fn whole_lifecycle_ends_where_it_began() {
    // hot → boosted → cooled → shed → cold → encoded → hot → decoded
    let (mut cluster, mut manager) = erms_cluster(Vec::new());
    let file = cluster.create_file("/cycle", 64 * MB, 3, None).unwrap();
    let block = cluster.namespace().file(file).unwrap().blocks[0];

    // phase 1: hot
    hammer(&mut cluster, "/cycle", 40, 0);
    settle(&mut cluster, &mut manager, 5);
    assert!(cluster.blockmap().replica_count(block) > 3, "boosted");

    // phase 2: silence → cooled → shed (needs patience + window expiry)
    cluster.run_until(cluster.now() + SimDuration::from_secs(700));
    settle(&mut cluster, &mut manager, 6);
    assert_eq!(cluster.blockmap().replica_count(block), 3, "shed");

    // phase 3: long silence → cold → encoded
    cluster.run_until(cluster.now() + SimDuration::from_secs(700));
    settle(&mut cluster, &mut manager, 3);
    assert!(
        cluster.namespace().file(file).unwrap().is_encoded(),
        "encoded"
    );
    assert_eq!(cluster.blockmap().replica_count(block), 1);

    // phase 4: demand returns → decoded and re-replicated
    hammer(&mut cluster, "/cycle", 40, 1000);
    settle(&mut cluster, &mut manager, 6);
    let meta = cluster.namespace().file(file).unwrap();
    assert!(!meta.is_encoded(), "decoded on reheat");
    assert!(cluster.blockmap().replica_count(block) >= 3);
}
