//! Property-based integration: random operation sequences against the
//! cluster simulator must preserve its global invariants, with ERMS
//! placement plugged in.

use erms::ErmsPlacement;
use hdfs_sim::topology::{ClientId, Endpoint};
use hdfs_sim::{ClusterConfig, ClusterSim, NodeId};
use proptest::prelude::*;
use simcore::units::MB;
use simcore::SimDuration;

/// The operations the fuzzer may perform.
#[derive(Debug, Clone)]
enum Op {
    Create { size_mb: u64, replication: usize },
    Delete { idx: usize },
    Read { idx: usize, client: u32 },
    SetReplication { idx: usize, r: usize },
    KillNode { node: u32 },
    Repair,
    Advance { secs: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..400, 1usize..4).prop_map(|(size_mb, replication)| Op::Create {
            size_mb,
            replication
        }),
        (0usize..8).prop_map(|idx| Op::Delete { idx }),
        (0usize..8, 0u32..50).prop_map(|(idx, client)| Op::Read { idx, client }),
        (0usize..8, 1usize..7).prop_map(|(idx, r)| Op::SetReplication { idx, r }),
        (0u32..18).prop_map(|node| Op::KillNode { node }),
        Just(Op::Repair),
        (1u64..120).prop_map(|secs| Op::Advance { secs }),
    ]
}

/// Check every global invariant of the simulator.
fn check_invariants(c: &ClusterSim) {
    // 1. blockmap ↔ datanode agreement, and storage adds up
    let mut expected_storage: u64 = 0;
    let mut total_replicas = 0usize;
    for n in c.topology().nodes() {
        let _ = n;
    }
    for meta in c.namespace().files() {
        let mut blocks = meta.blocks.clone();
        if let hdfs_sim::namespace::StorageMode::Encoded { parity_blocks } = &meta.mode {
            blocks.extend_from_slice(parity_blocks);
        }
        for b in blocks {
            let info = c
                .namespace()
                .block(b)
                .expect("live file block has metadata");
            let locs = c.blockmap().replica_nodes(b);
            total_replicas += locs.len();
            // no duplicate holders
            let mut dedup = locs.to_vec();
            dedup.dedup();
            assert_eq!(dedup.len(), locs.len(), "duplicate replica records");
            for &n in locs {
                assert!(
                    c.node_holds(n, b),
                    "blockmap says {n} holds {b} but the node disagrees"
                );
                expected_storage += info.len;
            }
        }
    }
    assert_eq!(
        c.storage_used(),
        expected_storage,
        "node byte accounting must equal Σ replica lengths"
    );
    assert_eq!(
        c.blockmap().total_replicas(),
        total_replicas,
        "blockmap has no replicas for deleted files"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn random_operations_preserve_invariants(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let mut c = ClusterSim::new(
            ClusterConfig::paper_testbed(),
            Box::new(ErmsPlacement::new()),
        );
        let mut created = 0u64;
        let mut paths: Vec<String> = Vec::new();
        for op in ops {
            match op {
                Op::Create { size_mb, replication } => {
                    let path = format!("/fuzz/f{created}");
                    created += 1;
                    if c.create_file(&path, size_mb * MB, replication, None).is_some() {
                        paths.push(path);
                    }
                }
                Op::Delete { idx } => {
                    if !paths.is_empty() {
                        let path = paths.remove(idx % paths.len());
                        c.delete_file(&path);
                    }
                }
                Op::Read { idx, client } => {
                    if !paths.is_empty() {
                        let path = &paths[idx % paths.len()];
                        let _ = c.open_read(Endpoint::Client(ClientId(client)), path);
                    }
                }
                Op::SetReplication { idx, r } => {
                    if !paths.is_empty() {
                        let path = paths[idx % paths.len()].clone();
                        if let Some(f) = c.namespace().resolve(&path) {
                            c.set_file_replication(f, r);
                        }
                    }
                }
                Op::KillNode { node } => {
                    // keep at least 12 nodes alive so placement can work
                    let alive = c.serving_nodes();
                    if alive > 12 {
                        c.kill_node(NodeId(node));
                    }
                }
                Op::Repair => {
                    c.repair_under_replicated();
                }
                Op::Advance { secs } => {
                    c.run_until(c.now() + SimDuration::from_secs(secs));
                }
            }
        }
        // drain all in-flight work, then check the world is consistent
        c.run_until_quiescent();
        check_invariants(&c);
        // all reads eventually completed (successfully or failed), none lost
        let reads = c.drain_completed_reads();
        for r in &reads {
            prop_assert!(r.finished >= r.started);
        }
        prop_assert_eq!(c.inflight_reads(), 0);
    }
}

#[test]
fn quiescent_cluster_stays_quiescent() {
    let mut c = ClusterSim::new(
        ClusterConfig::paper_testbed(),
        Box::new(ErmsPlacement::new()),
    );
    c.create_file("/a", 100 * MB, 3, None).unwrap();
    c.run_until_quiescent();
    let t0 = c.now();
    c.run_until(t0 + SimDuration::from_secs(3600));
    assert!(c.is_idle());
    check_invariants(&c);
}
